//! Keyword search over a synthetic DBLP-scale bibliography.
//!
//! ```text
//! cargo run --release --example dblp_search
//! ```
//!
//! Generates a DBLP-like dataset (authors, papers, conferences, citations),
//! computes biased-PageRank node prestige, and answers a mixed-frequency
//! query (two rare author names plus the ubiquitous `database` term) with
//! all three engines, printing the paper's metrics for each.

use banks::prelude::*;

fn main() {
    let config = DblpConfig {
        num_authors: 2_000,
        num_papers: 4_000,
        seed: 2026,
        ..DblpConfig::default()
    };
    println!(
        "generating synthetic DBLP dataset ({} papers)...",
        config.num_papers
    );
    let data = DblpDataset::generate(config);
    let graph = data.dataset.graph();
    let stats = GraphStats::compute(graph);
    print!("{}", stats.report(graph));

    println!("computing node prestige (biased PageRank)...");
    let (prestige, pr_stats) = compute_pagerank(graph, PageRankConfig::default());
    println!(
        "  converged after {} iterations (delta {:.2e})",
        pr_stats.iterations, pr_stats.final_delta
    );

    // Build a query the way the paper does: two author names from a
    // co-authored paper plus the most frequent title word.
    let mut workload = WorkloadGenerator::new(&data, 99);
    let config = WorkloadConfig {
        num_queries: 1,
        num_keywords: 3,
        origin_bias: banks::datagen::workload::OriginBias::Frequent,
        ..WorkloadConfig::default()
    };
    let case = workload
        .generate(&config)
        .into_iter()
        .next()
        .expect("workload query");
    println!("\nquery: {}", case.query());
    println!("origin sizes: {:?}", case.origin_sizes);

    // The facade owns keyword resolution (against the dataset's index) and
    // prestige; engines are selected by registry name.
    let banks = Banks::open(graph)
        .with_prestige(prestige)
        .with_index(data.dataset.index().clone());

    println!(
        "\n{:<16} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "engine", "explored", "touched", "answers", "recall", "time"
    );
    let ground_truth = GroundTruth::from_sets(case.relevant.clone());
    for engine in ["bidirectional", "si-backward", "mi-backward"] {
        let outcome = banks
            .query_parsed(&case.query())
            .engine(engine)
            .top_k(10)
            .run();
        let rp = ground_truth.evaluate(&outcome);
        println!(
            "{:<16} {:>9} {:>9} {:>9} {:>9.0}% {:>7.1?}",
            engine,
            outcome.stats.nodes_explored,
            outcome.stats.nodes_touched,
            outcome.answers.len(),
            rp.recall * 100.0,
            outcome.stats.duration
        );
    }

    // Stream the winning engine: answers surface incrementally, long before
    // the search would have finished.
    println!("\ntop answers (Bidirectional, streamed):");
    let session = banks.query_parsed(&case.query()).top_k(10);
    let mut stream = session.stream();
    while let Some(answer) = stream.next() {
        println!(
            "  #{} score {:.5} root [{}] {} (explored {} so far)",
            answer.rank + 1,
            answer.tree.score,
            graph.node_kind_name(answer.tree.root),
            graph.node_label(answer.tree.root),
            stream.stats().nodes_explored
        );
        if answer.rank + 1 >= 3 {
            break; // early termination: the rest of the search never runs
        }
    }
}
