//! Keyword search over a synthetic DBLP-scale bibliography.
//!
//! ```text
//! cargo run --release --example dblp_search
//! ```
//!
//! Generates a DBLP-like dataset (authors, papers, conferences, citations),
//! computes biased-PageRank node prestige, and answers a mixed-frequency
//! query (two rare author names plus the ubiquitous `database` term) with
//! all three engines, printing the paper's metrics for each.

use banks::prelude::*;

fn main() {
    let config = DblpConfig { num_authors: 2_000, num_papers: 4_000, seed: 2026, ..DblpConfig::default() };
    println!("generating synthetic DBLP dataset ({} papers)...", config.num_papers);
    let data = DblpDataset::generate(config);
    let graph = data.dataset.graph();
    let stats = GraphStats::compute(graph);
    print!("{}", stats.report(graph));

    println!("computing node prestige (biased PageRank)...");
    let (prestige, pr_stats) = compute_pagerank(graph, PageRankConfig::default());
    println!("  converged after {} iterations (delta {:.2e})", pr_stats.iterations, pr_stats.final_delta);

    // Build a query the way the paper does: two author names from a
    // co-authored paper plus the most frequent title word.
    let mut workload = WorkloadGenerator::new(&data, 99);
    let config = WorkloadConfig {
        num_queries: 1,
        num_keywords: 3,
        origin_bias: banks::datagen::workload::OriginBias::Frequent,
        ..WorkloadConfig::default()
    };
    let case = workload.generate(&config).into_iter().next().expect("workload query");
    println!("\nquery: {}", case.query());
    println!("origin sizes: {:?}", case.origin_sizes);

    let matches = KeywordMatches::resolve(graph, data.dataset.index(), &case.query());
    let params = SearchParams::with_top_k(10);
    let engines: Vec<Box<dyn SearchEngine>> = vec![
        Box::new(BidirectionalSearch::new()),
        Box::new(SingleIteratorBackwardSearch::new()),
        Box::new(BackwardExpandingSearch::new()),
    ];

    println!(
        "\n{:<16} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "engine", "explored", "touched", "answers", "recall", "time"
    );
    let ground_truth = GroundTruth::from_sets(case.relevant.clone());
    for engine in engines {
        let outcome = engine.search(graph, &prestige, &matches, &params);
        let rp = ground_truth.evaluate(&outcome);
        println!(
            "{:<16} {:>9} {:>9} {:>9} {:>9.0}% {:>7.1?}",
            engine.name(),
            outcome.stats.nodes_explored,
            outcome.stats.nodes_touched,
            outcome.answers.len(),
            rp.recall * 100.0,
            outcome.stats.duration
        );
    }

    println!("\ntop answers (Bidirectional):");
    let outcome = BidirectionalSearch::new().search(graph, &prestige, &matches, &params);
    for answer in outcome.answers.iter().take(3) {
        println!(
            "  #{} score {:.5} root [{}] {}",
            answer.rank + 1,
            answer.tree.score,
            graph.node_kind_name(answer.tree.root),
            graph.node_label(answer.tree.root)
        );
    }
}
