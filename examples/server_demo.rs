//! HTTP serving demo: the full front-end over a synthetic DBLP corpus.
//!
//! ```text
//! cargo run --release --example server_demo            # workload demo
//! cargo run --release --example server_demo -- --serve 127.0.0.1:7878
//! cargo run --release --example server_demo -- --serve 127.0.0.1:7878 --data-dir ./banks-data
//! cargo run --release --example server_demo -- --serve 127.0.0.1:7878 --shards 4
//! cargo run --release --example server_demo -- --serve 127.0.0.1:7879 \
//!     --data-dir ./replica-data --replicate-from http://127.0.0.1:7878
//! ```
//!
//! The default mode boots a [`Server`] on a loopback port, fires a
//! multi-tenant HTTP workload at it (three tenants with different priority
//! classes, plus a scraper that blows through its admission quota), swaps
//! the served graph mid-workload via `POST /admin/swap`, and prints QPS,
//! the cache hit rate, client-observed TTFA percentiles and the per-tenant
//! metrics rows.
//!
//! `--serve [addr]` just serves until killed — the mode CI's smoke step
//! (and any curl exploration) uses.  Adding `--data-dir <dir>` makes the
//! served graph durable: every accepted `POST /admin/mutate` batch is
//! WAL-logged before it is acknowledged, `POST /admin/checkpoint` forces a
//! snapshot, and a restart (even after `kill -9`) recovers the pre-crash
//! graph from the directory instead of regenerating the corpus.
//! `--shards K` partitions the served graph into `K` shards: the
//! `scatter-gather` engine family fans each query out across per-shard
//! engines and merges the streams, byte-identical to unsharded execution.
//! `--replicate-from <url>` runs this process as a **read replica** of the
//! leader at `<url>`: it bootstraps from the leader's snapshot, tails the
//! leader's mutation WAL over SSE, serves reads at the replicated epoch,
//! and answers `POST /admin/mutate` with `409` + a `Location` header
//! pointing at the leader.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use banks::prelude::*;

fn dblp_service(shards: usize) -> Service {
    let data = DblpDataset::generate(DblpConfig {
        num_authors: 600,
        num_papers: 1200,
        num_conferences: 8,
        seed: 11,
        ..DblpConfig::default()
    });
    Service::builder(data.dataset.graph().clone())
        .workers(4)
        .queue_capacity(1024)
        .cache_capacity(256)
        .tenant_quota(25.0, 40)
        .shards(shards)
        .slos(SloSpec::defaults())
        .index(data.dataset.index().clone())
        .build()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--serve") {
        let addr = args
            .get(2)
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or("127.0.0.1:7878");
        let data_dir = args
            .iter()
            .position(|a| a == "--data-dir")
            .and_then(|i| args.get(i + 1))
            .cloned();
        let shards = args
            .iter()
            .position(|a| a == "--shards")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(1usize);
        let replicate_from = args
            .iter()
            .position(|a| a == "--replicate-from")
            .and_then(|i| args.get(i + 1))
            .cloned();
        serve_forever(addr, data_dir, shards, replicate_from);
        return;
    }
    workload_demo();
}

/// `--serve`: boot and block (CI smoke / manual curl exploration).  With
/// `--data-dir`, the service recovers whatever the directory holds (the
/// generated corpus only seeds an empty directory), uses the default
/// label index so recovery needs nothing beyond the graph, and fsyncs
/// every mutation before acknowledging it.
fn serve_forever(addr: &str, data_dir: Option<String>, shards: usize, leader: Option<String>) {
    let service = match &data_dir {
        Some(dir) => {
            let data = DblpDataset::generate(DblpConfig {
                num_authors: 600,
                num_papers: 1200,
                num_conferences: 8,
                seed: 11,
                ..DblpConfig::default()
            });
            let service = Service::builder(data.dataset.graph().clone())
                .workers(4)
                .queue_capacity(1024)
                .cache_capacity(256)
                .tenant_quota(25.0, 40)
                .shards(shards)
                .persistence(dir, FsyncPolicy::Always)
                .build();
            let durability = service.durability();
            println!(
                "durable mode: data dir {dir}, recovered epoch {}, {} WAL record(s) replayed",
                service.epoch(),
                durability.replayed_records,
            );
            service
        }
        None => dblp_service(shards),
    };
    if shards > 1 {
        println!("sharded mode: {shards} shards, scatter-gather engines registered");
    }
    let service = Arc::new(service);
    // A follower tails the leader's WAL and refuses writes; a durable
    // standalone process declares itself the leader so replicas (and the
    // metrics role gauge) can identify it.
    let _follower = match &leader {
        Some(url) => {
            let follower = Follower::start(Arc::clone(&service), url)
                .unwrap_or_else(|e| panic!("bad --replicate-from: {e}"));
            println!("replica mode: tailing leader at {}", follower.leader());
            Some(follower)
        }
        None => {
            if data_dir.is_some() {
                service.set_replication_role(ReplicationRole::Leader);
            }
            None
        }
    };
    let mut builder = Server::builder(service);
    if let Some(url) = &leader {
        builder = builder.leader_url(url.clone());
    }
    let server = builder
        .addr(addr)
        .graph_source(|| {
            let data = DblpDataset::generate(DblpConfig {
                num_authors: 600,
                num_papers: 1200,
                num_conferences: 8,
                seed: 11,
                ..DblpConfig::default()
            });
            GraphSnapshot::new(
                data.dataset.graph().clone(),
                PrestigeVector::uniform_for(data.dataset.graph()),
                data.dataset.index().clone(),
            )
        })
        .spawn()
        .expect("bind server");
    println!("serving on http://{}", server.local_addr());
    println!("  curl http://{}/healthz", server.local_addr());
    println!(
        "  curl -N -X POST http://{}/query -d '{{\"q\":\"database query\",\"top_k\":5}}'",
        server.local_addr()
    );
    println!("  curl http://{}/debug/slo", server.local_addr());
    println!(
        "  curl 'http://{}/debug/events?since=0'",
        server.local_addr()
    );
    println!("  curl -N http://{}/debug/events/tail", server.local_addr());
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// One HTTP query round-trip: returns (status, answers seen, client TTFA).
fn http_query(
    addr: SocketAddr,
    body: &str,
    tenant: &str,
    priority: &str,
) -> (u16, usize, Option<Duration>) {
    let started = Instant::now();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(
        format!(
            "POST /query HTTP/1.1\r\nHost: demo\r\nX-Banks-Tenant: {tenant}\r\n\
             X-Banks-Priority: {priority}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .expect("send request");

    let mut reader = BufReader::new(conn);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut answers = 0usize;
    let mut ttfa = None;
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap_or(0) > 0 {
        if line.starts_with("event: answer") {
            ttfa.get_or_insert_with(|| started.elapsed());
            answers += 1;
        }
        line.clear();
    }
    (status, answers, ttfa)
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: demo\r\n\r\n").as_bytes())
        .expect("send");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read");
    response
}

fn workload_demo() {
    let data = DblpDataset::generate(DblpConfig {
        num_authors: 600,
        num_papers: 1200,
        num_conferences: 8,
        seed: 11,
        ..DblpConfig::default()
    });
    println!(
        "dblp graph: {} nodes, {} directed edges",
        data.dataset.graph().num_nodes(),
        data.dataset.graph().num_directed_edges()
    );

    let service = Arc::new(
        Service::builder(data.dataset.graph().clone())
            .workers(4)
            .queue_capacity(1024)
            .cache_capacity(256)
            .tenant_quota(25.0, 40)
            .index(data.dataset.index().clone())
            .build(),
    );
    let server = Server::builder(Arc::clone(&service))
        .graph_source(move || {
            // "reindex": rebuild the same corpus — fresh epoch, cold cache
            let data = DblpDataset::generate(DblpConfig {
                num_authors: 600,
                num_papers: 1200,
                num_conferences: 8,
                seed: 11,
                ..DblpConfig::default()
            });
            GraphSnapshot::new(
                data.dataset.graph().clone(),
                PrestigeVector::uniform_for(data.dataset.graph()),
                data.dataset.index().clone(),
            )
        })
        .spawn()
        .expect("bind server");
    let addr = server.local_addr();
    println!("serving on http://{addr}\n");

    // Three tenants, three priority classes, mixed keyword skew; every
    // tenant re-asks half its queries so the cache has something to do.
    let mut generator = WorkloadGenerator::new(&data, 42);
    let tenants: Vec<(&str, &str, banks::datagen::OriginBias)> = vec![
        ("ui", "interactive", banks::datagen::OriginBias::Rare),
        ("dashboard", "normal", banks::datagen::OriginBias::Any),
        ("analytics", "batch", banks::datagen::OriginBias::Frequent),
    ];
    let mut threads = Vec::new();
    let started = Instant::now();
    for (tenant, priority, bias) in tenants {
        let cases = generator.generate(&WorkloadConfig {
            num_queries: 16,
            num_keywords: 2,
            answer_size: 5,
            origin_bias: bias,
            compute_ground_truth: false,
            ..WorkloadConfig::default()
        });
        threads.push(std::thread::spawn(move || {
            let mut ttfa = Vec::new();
            let mut served = 0usize;
            let mut answers = 0usize;
            // two waves: the second re-asks half of the first (cache food)
            let repeats: Vec<_> = cases.iter().step_by(2).cloned().collect();
            for case in cases.iter().chain(&repeats) {
                let keywords: Vec<String> = case
                    .keywords
                    .iter()
                    .map(|k| format!("\"{}\"", k.replace(['\\', '"'], "")))
                    .collect();
                let body = format!("{{\"keywords\":[{}],\"top_k\":5}}", keywords.join(","));
                let (status, n, t) = http_query(addr, &body, tenant, priority);
                assert_eq!(status, 200, "tenant {tenant} query failed");
                served += 1;
                answers += n;
                if let Some(t) = t {
                    ttfa.push(t);
                }
            }
            (tenant, served, answers, ttfa)
        }));
    }

    // Mid-workload: swap the served snapshot while the tenants hammer away.
    std::thread::sleep(Duration::from_millis(80));
    let epoch_before = service.epoch();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(b"POST /admin/swap HTTP/1.1\r\nHost: demo\r\n\r\n")
        .expect("send swap");
    let mut swap_response = String::new();
    conn.read_to_string(&mut swap_response).expect("read swap");
    println!(
        "mid-workload swap: epoch {} -> {} ({})",
        epoch_before,
        service.epoch(),
        swap_response.lines().last().unwrap_or("?")
    );

    // Incremental ingest while the workload runs: POST /admin/mutate lands
    // a fresh author + paper as a delta (no rebuild), the epoch advances,
    // and the new labels are immediately searchable.
    let epoch_before_mutate = service.epoch();
    let base = service.snapshot().graph().num_nodes() as u32;
    let mutate_body = format!(
        "{{\"ops\":[\
         {{\"op\":\"add_node\",\"kind\":\"author\",\"label\":\"Ada Lovelace\"}},\
         {{\"op\":\"add_node\",\"kind\":\"paper\",\"label\":\"Notes on the analytical engine\"}},\
         {{\"op\":\"add_node\",\"kind\":\"writes\",\"label\":\"w-ingest\"}},\
         {{\"op\":\"add_edge\",\"from\":{w},\"to\":{a}}},\
         {{\"op\":\"add_edge\",\"from\":{w},\"to\":{p}}}]}}",
        a = base,
        p = base + 1,
        w = base + 2,
    );
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(
        format!(
            "POST /admin/mutate HTTP/1.1\r\nHost: demo\r\nContent-Length: {}\r\n\r\n{mutate_body}",
            mutate_body.len()
        )
        .as_bytes(),
    )
    .expect("send mutate");
    let mut mutate_response = String::new();
    conn.read_to_string(&mut mutate_response)
        .expect("read mutate");
    assert!(
        mutate_response.contains("\"swapped\":true") && mutate_response.contains("\"accepted\":5"),
        "mutation must apply: {mutate_response}"
    );
    println!(
        "mid-workload mutate: epoch {} -> {} ({})",
        epoch_before_mutate,
        service.epoch(),
        mutate_response.lines().last().unwrap_or("?")
    );
    let (status, answers, _) = http_query(
        addr,
        "{\"q\":\"\\\"analytical engine\\\"\",\"top_k\":3}",
        "ui",
        "interactive",
    );
    assert_eq!(status, 200, "mutated data must be queryable");
    assert!(answers >= 1, "the ingested paper must answer");
    println!("  ingested paper answers queries: {answers} answer(s) streamed");

    // A scraper with no manners: bursts past its 40-token bucket and
    // collects 429s with Retry-After hints.
    let mut scraper_429 = 0usize;
    let mut scraper_ok = 0usize;
    for _ in 0..60 {
        let (status, _, _) =
            http_query(addr, "{\"q\":\"database\",\"top_k\":3}", "scraper", "batch");
        match status {
            200 => scraper_ok += 1,
            429 => scraper_429 += 1,
            other => panic!("unexpected scraper status {other}"),
        }
    }

    let mut all_ttfa = Vec::new();
    let mut total_served = 0usize;
    let mut total_answers = 0usize;
    for thread in threads {
        let (tenant, served, answers, ttfa) = thread.join().expect("tenant thread");
        println!("tenant {tenant:<10} served {served:>3} queries, {answers:>4} answers streamed");
        total_served += served;
        total_answers += answers;
        all_ttfa.extend(ttfa);
    }
    let elapsed = started.elapsed();
    println!("scraper: {scraper_ok} admitted, {scraper_429} rejected with 429 + Retry-After");

    let metrics = service.metrics();
    println!("\nserved {total_served} streamed queries in {elapsed:.2?}");
    println!(
        "  QPS              {:.0}",
        total_served as f64 / elapsed.as_secs_f64()
    );
    println!("  answers          {total_answers}");
    println!(
        "  cache hit rate   {:.1}% ({} of {})",
        100.0 * metrics.cache_hit_rate(),
        metrics.cache_hits,
        metrics.submitted
    );
    println!("  quota rejected   {}", metrics.quota_rejected);
    println!(
        "  swaps            {} (serving epoch {})",
        metrics.swaps, metrics.epoch
    );
    all_ttfa.sort_unstable();
    if !all_ttfa.is_empty() {
        let pct = |p: f64| all_ttfa[((all_ttfa.len() - 1) as f64 * p) as usize];
        println!(
            "  client TTFA      p50 {:?}  p90 {:?}  p99 {:?}",
            pct(0.50),
            pct(0.90),
            pct(0.99)
        );
    }
    println!("\nper-tenant rows (from the service; also at GET /metrics):");
    for row in &metrics.tenants {
        println!(
            "  {:<10} executed {:>3}  quota_rejected {:>3}  mean wait {:?}",
            if row.tenant.is_empty() {
                "<anon>"
            } else {
                &row.tenant
            },
            row.executed,
            row.quota_rejected,
            row.mean_queue_wait
        );
    }

    // the same numbers, over the wire
    let metrics_response = http_get(addr, "/metrics");
    assert!(metrics_response.starts_with("HTTP/1.1 200"));
    server.shutdown();
    println!("\nserver drained and shut down cleanly");
}
