//! Online graph swapping demo: reindex mid-workload, without downtime.
//!
//! ```text
//! cargo run --release --example service_swap
//! ```
//!
//! The service starts on a small synthetic DBLP corpus (v1) and fields a
//! wave of mixed queries with repeats, so the result cache warms up.  Then
//! — while a deliberately slow probe query admitted under v1 is still in
//! flight — a larger corpus (v2) is swapped in with `Service::swap_graph`.
//! The probe finishes on its pinned v1 snapshot; the same wave re-fired
//! against v2 starts with a cold cache and warms it again.  The demo prints
//! the epoch, cache hit rate and time-to-first-answer percentiles before
//! and after the swap.

use std::time::{Duration, Instant};

use banks::prelude::*;

/// A query wave: every case fired twice (interactive traffic repeats), so
/// the cache hit rate has meaning.  Returns (TTFA samples, answers).
fn fire_wave(service: &Service, cases: &[QueryCase]) -> (Vec<Duration>, usize) {
    let mut ttfa = Vec::new();
    let mut answers = 0usize;
    for _ in 0..2 {
        let handles: Vec<_> = cases
            .iter()
            .map(|case| {
                let spec = QuerySpec::new(case.query())
                    .params(SearchParams::with_top_k(10))
                    .tenant("wave")
                    .priority(Priority::Interactive);
                service.submit(spec).expect("submit")
            })
            .collect();
        for handle in handles {
            let (outcome, result) = handle.wait();
            answers += outcome.answers.len();
            if let Some(t) = result.time_to_first_answer {
                ttfa.push(t);
            }
        }
    }
    ttfa.sort_unstable();
    (ttfa, answers)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

fn corpus(num_authors: usize, num_papers: usize, seed: u64) -> DblpDataset {
    DblpDataset::generate(DblpConfig {
        num_authors,
        num_papers,
        num_conferences: 8,
        seed,
        ..DblpConfig::default()
    })
}

fn report(label: &str, service: &Service, ttfa: &[Duration], answers: usize) {
    let metrics = service.metrics();
    println!("\n[{label}] epoch {}", metrics.epoch);
    println!("  answers         {answers}");
    println!(
        "  cache hit rate  {:.1}% ({} of {})",
        100.0 * metrics.cache_hit_rate(),
        metrics.cache_hits,
        metrics.submitted
    );
    println!(
        "  ttfa p50 {:?}  p90 {:?}  max {:?}",
        percentile(ttfa, 0.50),
        percentile(ttfa, 0.90),
        percentile(ttfa, 1.0),
    );
    println!(
        "  queue wait p50 {:?}  p99 {:?} (over {} executed)",
        metrics.queue_wait.p50, metrics.queue_wait.p99, metrics.queue_wait.count
    );
}

fn main() {
    // ------------------------------------------------------------- version 1
    let v1 = corpus(600, 1200, 7);
    let mut generator = WorkloadGenerator::new(&v1, 21);
    let cases = generator.generate(&WorkloadConfig {
        num_queries: 24,
        num_keywords: 2,
        answer_size: 4,
        compute_ground_truth: false,
        ..WorkloadConfig::default()
    });
    let graph_v1 = v1.dataset.graph().clone();
    println!(
        "v1 graph: {} nodes, {} directed edges",
        graph_v1.num_nodes(),
        graph_v1.num_directed_edges()
    );

    let service = Service::builder(graph_v1)
        .workers(4)
        .queue_capacity(1024)
        .cache_capacity(512)
        .cache_min_work(32) // trivial lookups are cheaper to recompute
        .index(v1.dataset.index().clone())
        .build();
    let epoch_v1 = service.epoch();

    let (ttfa_v1, answers_v1) = fire_wave(&service, &cases);
    report("before swap", &service, &ttfa_v1, answers_v1);

    // ------------------------------------------------- swap, with work in flight
    // A slow exhaustive probe admitted under v1 (a known-answerable v1
    // query, asked exhaustively)...
    let probe = service
        .submit(
            QuerySpec::new(cases[0].query())
                .params(SearchParams::with_top_k(200))
                .tenant("probe")
                .priority(Priority::Batch),
        )
        .expect("submit probe");

    // ...and the reindexed corpus swapped in while it runs.  Building the
    // new snapshot (prestige + index) happens before the atomic pointer
    // swap, so serving never pauses.
    let v2 = corpus(900, 2000, 8);
    let swap_started = Instant::now();
    let epoch_v2 = service.swap_snapshot(GraphSnapshot::new(
        v2.dataset.graph().clone(),
        PrestigeVector::uniform_for(v2.dataset.graph()),
        v2.dataset.index().clone(),
    ));
    println!(
        "\nswapped v1 (epoch {epoch_v1}) -> v2 (epoch {epoch_v2}) in {:?} \
         ({} nodes now served)",
        swap_started.elapsed(),
        service.snapshot().graph().num_nodes()
    );

    let (probe_outcome, probe_result) = probe.wait();
    println!(
        "in-flight probe finished on its pinned snapshot: epoch {} \
         (current {}), {} answers",
        probe_result.epoch,
        service.epoch(),
        probe_outcome.answers.len()
    );
    assert_eq!(probe_result.epoch, epoch_v1, "probe pinned to v1");

    // ------------------------------------------------------------- version 2
    // A wave drawn from the v2 corpus (its vocabulary, its join patterns):
    // the first pass misses — the new epoch starts cold — and the repeat
    // pass warms the cache back up.
    let mut generator_v2 = WorkloadGenerator::new(&v2, 22);
    let cases_v2 = generator_v2.generate(&WorkloadConfig {
        num_queries: 24,
        num_keywords: 2,
        answer_size: 4,
        compute_ground_truth: false,
        ..WorkloadConfig::default()
    });
    let (ttfa_v2, answers_v2) = fire_wave(&service, &cases_v2);
    report("after swap", &service, &ttfa_v2, answers_v2);

    let metrics = service.metrics();
    assert_eq!(metrics.swaps, 1);
    assert_eq!(metrics.epoch, epoch_v2);
    println!(
        "\ntenants: {}",
        metrics
            .tenants
            .iter()
            .map(|t| format!(
                "{}={} (mean wait {:?})",
                if t.tenant.is_empty() {
                    "<anon>"
                } else {
                    &t.tenant
                },
                t.executed,
                t.mean_queue_wait
            ))
            .collect::<Vec<_>>()
            .join("  ")
    );
}
