//! Service throughput demo: a mixed workload against the worker pool.
//!
//! ```text
//! cargo run --release --example service_qps
//! ```
//!
//! Part 1 serves the paper's Figure 4 graph through the new
//! `Service::builder(graph).workers(4).cache_capacity(256).build()` API.
//! Part 2 loads a synthetic DBLP corpus, generates a mixed workload with
//! `datagen::workload` (co-authorship, citation-pair and repeated queries
//! across rare and frequent keywords), fires it at the service, and prints
//! QPS, the cache hit rate and time-to-first-answer percentiles.
//!
//! `--obs-gate` instead runs the observability overhead gate: the same
//! workload with the observability stack off and on — per-query tracing
//! plus the 100 ms collector / SLO / event-log retention layer —
//! interleaved; writes `BENCH_obs.json` and exits non-zero if the stack
//! costs more than 5% QPS.
//!
//! `--e2e-bench` runs the end-to-end sharding benchmark: the same mixed
//! workload through the scatter-gather engine at K=1 and K=4, measuring
//! QPS, TTFA p50/p99 and mutation-apply latency per configuration, plus a
//! single-query TTFA comparison on a large corpus; writes `BENCH_e2e.json`.
//! With `--gate`, exits non-zero unless K=4 TTFA beats K=1 by ≥1.5× — the
//! gate only *enforces* on hosts with ≥4 cores, since a parallel scatter
//! phase cannot honestly beat the sequential path on fewer.

use std::time::{Duration, Instant};

use banks::prelude::*;

fn main() {
    if std::env::args().any(|a| a == "--obs-gate") {
        obs_gate();
        return;
    }
    if std::env::args().any(|a| a == "--e2e-bench") {
        e2e_bench(std::env::args().any(|a| a == "--gate"));
        return;
    }
    figure4_demo();
    dblp_workload();
}

/// The end-to-end sharding benchmark (and, with `gate`, the K=4 perf gate).
fn e2e_bench(gate: bool) {
    const TTFA_RATIO_REQUIRED: f64 = 1.5;
    const GATE_MIN_CORES: usize = 4;

    let data = DblpDataset::generate(DblpConfig {
        num_authors: 2000,
        num_papers: 4000,
        num_conferences: 12,
        seed: 7,
        ..DblpConfig::default()
    });
    println!(
        "e2e bench: dblp graph with {} nodes, {} directed edges",
        data.dataset.graph().num_nodes(),
        data.dataset.graph().num_directed_edges()
    );
    let mut generator = WorkloadGenerator::new(&data, 42);
    let cases = generator.generate(&WorkloadConfig {
        num_queries: 40,
        num_keywords: 2,
        answer_size: 5,
        origin_bias: banks::datagen::OriginBias::Any,
        compute_ground_truth: false,
        ..WorkloadConfig::default()
    });
    // the heavy gate query: frequent keywords fan hundreds of origins, so
    // the scatter phase dominates time-to-first-answer
    let heavy = generator.generate(&WorkloadConfig {
        num_queries: 3,
        num_keywords: 3,
        answer_size: 5,
        origin_bias: banks::datagen::OriginBias::Frequent,
        compute_ground_truth: false,
        ..WorkloadConfig::default()
    });

    /// One configuration's measurements, all in microseconds.
    struct Config {
        shards: usize,
        qps: f64,
        ttfa_p50_us: u64,
        ttfa_p99_us: u64,
        mutation_apply_p50_us: u64,
        heavy_ttfa_us: u64,
    }

    let run = |shards: usize| -> Config {
        let service = Service::builder(data.dataset.graph().clone())
            .workers(4)
            .queue_capacity(1024)
            .cache_capacity(0) // every submission executes: honest engine work
            .shards(shards)
            .index(data.dataset.index().clone())
            .build();

        let mut ttfa: Vec<Duration> = Vec::new();
        let started = Instant::now();
        let handles: Vec<_> = cases
            .iter()
            .map(|case| {
                let spec = QuerySpec::new(case.query())
                    .params(SearchParams::with_top_k(10))
                    .engine("scatter-gather");
                service.submit(spec).expect("submit")
            })
            .collect();
        for handle in handles {
            let (_, result) = handle.wait();
            if let Some(t) = result.time_to_first_answer {
                ttfa.push(t);
            }
        }
        let qps = cases.len() as f64 / started.elapsed().as_secs_f64();

        // mutation-apply latency: a stream of small batches with shard
        // fan-out included (at K>1 each clones + patches the partition)
        let base = service.snapshot().graph().num_nodes() as u32;
        for i in 0..8u32 {
            let n = base + 2 * i;
            let report = service.apply_mutations(
                &MutationBatch::new()
                    .add_node("paper", format!("bench paper {i}"))
                    .add_node("writes", format!("bench w{i}"))
                    .add_edge(NodeId(n + 1), NodeId(n))
                    .add_edge(NodeId(n + 1), NodeId(0)),
            );
            assert!(report.swapped, "bench mutation {i} must apply");
        }
        let mutation_apply = service.metrics().mutation_apply;

        // best-of-5 TTFA for the heaviest query, submitted alone so the
        // scatter phase has the machine to itself
        let mut heavy_best = Duration::MAX;
        for _ in 0..5 {
            for case in &heavy {
                let spec = QuerySpec::new(case.query())
                    .params(SearchParams::with_top_k(10))
                    .engine("scatter-gather");
                let (_, result) = service.submit(spec).expect("submit").wait();
                if let Some(t) = result.time_to_first_answer {
                    heavy_best = heavy_best.min(t);
                }
            }
        }

        ttfa.sort_unstable();
        let pct = |p: f64| -> u64 {
            if ttfa.is_empty() {
                return 0;
            }
            ttfa[((ttfa.len() - 1) as f64 * p) as usize].as_micros() as u64
        };
        Config {
            shards,
            qps,
            ttfa_p50_us: pct(0.50),
            ttfa_p99_us: pct(0.99),
            mutation_apply_p50_us: mutation_apply.p50.as_micros() as u64,
            heavy_ttfa_us: heavy_best.as_micros() as u64,
        }
    };

    run(1); // warm-up, discarded
    let configs = [run(1), run(4)];
    for c in &configs {
        println!(
            "  K={}: {:.0} QPS, ttfa p50 {}µs p99 {}µs, mutation-apply p50 {}µs, heavy ttfa {}µs",
            c.shards, c.qps, c.ttfa_p50_us, c.ttfa_p99_us, c.mutation_apply_p50_us, c.heavy_ttfa_us
        );
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let ratio = configs[0].heavy_ttfa_us as f64 / configs[1].heavy_ttfa_us.max(1) as f64;
    let enforced = gate && cores >= GATE_MIN_CORES;
    let pass = ratio >= TTFA_RATIO_REQUIRED;
    println!(
        "  gate: K=4 heavy TTFA {ratio:.2}x better than K=1 (required {TTFA_RATIO_REQUIRED}x, \
         {cores} core(s), {})",
        if enforced {
            "enforced"
        } else {
            "report-only: needs >=4 cores"
        }
    );
    // GitHub Actions annotation: the gate's mode and measured ratio land
    // on the run summary page instead of being buried in the step log.
    println!(
        "::notice title=Sharded TTFA gate::mode={} ratio={ratio:.2}x \
         required={TTFA_RATIO_REQUIRED}x cores={cores} pass={pass}",
        if enforced { "enforced" } else { "report-only" }
    );

    let mut json = String::from("{\"bench\":\"e2e_sharded\",\"configs\":[");
    for (i, c) in configs.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"shards\":{},\"qps\":{:.1},\"ttfa_p50_us\":{},\"ttfa_p99_us\":{},\
             \"mutation_apply_p50_us\":{},\"heavy_ttfa_us\":{}}}",
            c.shards, c.qps, c.ttfa_p50_us, c.ttfa_p99_us, c.mutation_apply_p50_us, c.heavy_ttfa_us
        ));
    }
    json.push_str(&format!(
        "],\"ttfa_gate\":{{\"cores\":{cores},\"ratio\":{ratio:.3},\
         \"required\":{TTFA_RATIO_REQUIRED},\"enforced\":{enforced},\"pass\":{pass}}}}}\n"
    ));
    std::fs::write("BENCH_e2e.json", &json).expect("write BENCH_e2e.json");
    println!("wrote BENCH_e2e.json");

    if enforced && !pass {
        eprintln!(
            "FAIL: K=4 TTFA only {ratio:.2}x better than K=1 (required {TTFA_RATIO_REQUIRED}x)"
        );
        std::process::exit(1);
    }
    println!("PASS");
}

/// The observability overhead gate.
///
/// Runs the DBLP workload alternately with the full observability stack
/// off and on.  "On" is the worst case across the whole layer: every
/// submission carries `QuerySpec::trace` (work counters, a `QueryTrace`,
/// a ring push per query) *and* the retention layer runs hot — a 100 ms
/// collector cadence snapshotting the time series, evaluating the stock
/// SLOs, and feeding the event log.  Rounds run on fresh services so
/// cache state is identical.  Compares best-of QPS and enforces the <5%
/// regression budget.
fn obs_gate() {
    const ROUNDS: usize = 5;
    const BUDGET_PCT: f64 = 5.0;

    let data = DblpDataset::generate(DblpConfig {
        num_authors: 800,
        num_papers: 1500,
        num_conferences: 10,
        seed: 11,
        ..DblpConfig::default()
    });
    let mut generator = WorkloadGenerator::new(&data, 42);
    let cases = generator.generate(&WorkloadConfig {
        num_queries: 60,
        num_keywords: 2,
        answer_size: 5,
        origin_bias: banks::datagen::OriginBias::Any,
        compute_ground_truth: false,
        ..WorkloadConfig::default()
    });
    println!(
        "obs gate: {} queries x {ROUNDS} rounds, traced vs untraced",
        cases.len()
    );

    let run = |traced: bool| -> f64 {
        let mut builder = Service::builder(data.dataset.graph().clone())
            .workers(4)
            .queue_capacity(1024)
            .cache_capacity(256)
            .index(data.dataset.index().clone());
        if traced {
            builder = builder
                .collector_cadence(Duration::from_millis(100))
                .slos(SloSpec::defaults());
        }
        let service = builder.build();
        let started = Instant::now();
        let handles: Vec<_> = cases
            .iter()
            .map(|case| {
                let mut spec = QuerySpec::new(case.query()).params(SearchParams::with_top_k(10));
                if traced {
                    spec = spec.trace("gate");
                }
                service.submit(spec).expect("submit")
            })
            .collect();
        for handle in handles {
            let (_, result) = handle.wait();
            assert_eq!(result.trace.is_some(), traced, "trace presence matches");
        }
        cases.len() as f64 / started.elapsed().as_secs_f64()
    };

    // Interleaved rounds cancel out drift (thermal, page cache, neighbours).
    let mut qps_off: Vec<f64> = Vec::new();
    let mut qps_on: Vec<f64> = Vec::new();
    run(false); // warm-up, discarded
    for _ in 0..ROUNDS {
        qps_off.push(run(false));
        qps_on.push(run(true));
    }
    let best = |xs: &[f64]| xs.iter().cloned().fold(f64::MIN, f64::max);
    let (off, on) = (best(&qps_off), best(&qps_on));
    let regression_pct = 100.0 * (off - on) / off;
    println!("  tracing off: {off:.0} QPS (best of {ROUNDS})");
    println!("  tracing on:  {on:.0} QPS (best of {ROUNDS})");
    println!("  regression:  {regression_pct:.2}% (budget {BUDGET_PCT}%)");

    let report = format!(
        "{{\"bench\":\"obs_overhead_gate\",\"queries\":{},\"rounds\":{ROUNDS},\
         \"qps_tracing_off\":{off:.1},\"qps_tracing_on\":{on:.1},\
         \"regression_pct\":{regression_pct:.2},\"budget_pct\":{BUDGET_PCT}}}\n",
        cases.len()
    );
    std::fs::write("BENCH_obs.json", &report).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");

    if regression_pct > BUDGET_PCT {
        eprintln!("FAIL: tracing overhead {regression_pct:.2}% exceeds the {BUDGET_PCT}% budget");
        std::process::exit(1);
    }
    println!("PASS: tracing overhead within budget");
}

/// Part 1: the Figure 4 walk-through, served concurrently.
fn figure4_demo() {
    let example = figure4_example(100, 48);
    println!(
        "figure-4 graph: {} nodes, {} directed edges",
        example.graph.num_nodes(),
        example.graph.num_directed_edges()
    );

    let service = Service::builder(example.graph)
        .workers(4)
        .cache_capacity(256)
        .build();

    // Fire the same query through every engine at once.
    let handles: Vec<_> = ["bidirectional", "si-backward", "mi-backward"]
        .into_iter()
        .map(|engine| {
            let spec = QuerySpec::parse("database james john")
                .top_k(3)
                .engine(engine);
            (engine, service.submit(spec).expect("submit"))
        })
        .collect();
    println!("\nquery: Database James John (all engines concurrently)");
    for (engine, handle) in handles {
        let (outcome, result) = handle.wait();
        println!(
            "  {:<14} answers {:>2}  explored {:>5}  ttfa {:?}",
            engine,
            outcome.answers.len(),
            outcome.stats.nodes_explored,
            result.time_to_first_answer.unwrap_or_default()
        );
    }

    // The repeat is served from the cache: zero engine work.
    let spec = QuerySpec::parse("database james john")
        .top_k(3)
        .engine("bidirectional");
    let (_, result) = service.submit(spec).expect("submit").wait();
    println!(
        "repeat submission: cache_hit = {} (executed {} of {} submitted)",
        result.cache_hit,
        service.metrics().executed,
        service.metrics().submitted
    );
}

/// Part 2: a mixed DBLP workload, measured.
fn dblp_workload() {
    let data = DblpDataset::generate(DblpConfig {
        num_authors: 800,
        num_papers: 1500,
        num_conferences: 10,
        seed: 11,
        ..DblpConfig::default()
    });
    let graph = data.dataset.graph().clone();
    println!(
        "\ndblp graph: {} nodes, {} directed edges",
        graph.num_nodes(),
        graph.num_directed_edges()
    );

    // A mixed workload: 2-keyword co-authorship queries, 4-keyword citation
    // queries, rare- and frequent-origin title words.
    let mut generator = WorkloadGenerator::new(&data, 42);
    let mut cases = Vec::new();
    for (num_keywords, answer_size, bias) in [
        (2, 5, banks::datagen::OriginBias::Any),
        (3, 5, banks::datagen::OriginBias::Rare),
        (4, 3, banks::datagen::OriginBias::Frequent),
    ] {
        cases.extend(generator.generate(&WorkloadConfig {
            num_queries: 12,
            num_keywords,
            answer_size,
            origin_bias: bias,
            compute_ground_truth: false,
            ..WorkloadConfig::default()
        }));
    }
    // Interactive traffic repeats itself: a second wave re-asks half of the
    // first wave's queries, so the result cache has something to do.
    let repeats: Vec<_> = cases.iter().step_by(2).cloned().collect();
    println!(
        "workload: {} fresh queries + {} repeats",
        cases.len(),
        repeats.len()
    );

    let service = Service::builder(graph)
        .workers(4)
        .queue_capacity(1024)
        .cache_capacity(256)
        .index(data.dataset.index().clone())
        .build();

    let mut ttfa: Vec<Duration> = Vec::new();
    let mut answers = 0usize;
    let total = cases.len() + repeats.len();
    let started = Instant::now();
    for wave in [&cases, &repeats] {
        let handles: Vec<_> = wave
            .iter()
            .map(|case| {
                let spec = QuerySpec::new(case.query()).params(SearchParams::with_top_k(10));
                service.submit(spec).expect("submit")
            })
            .collect();
        for handle in handles {
            let (outcome, result) = handle.wait();
            answers += outcome.answers.len();
            if let Some(t) = result.time_to_first_answer {
                ttfa.push(t);
            }
        }
    }
    let elapsed = started.elapsed();

    let metrics = service.metrics();
    let qps = total as f64 / elapsed.as_secs_f64();
    println!("\nserved {total} queries in {elapsed:.2?}");
    println!("  QPS             {qps:.0}");
    println!("  answers         {answers}");
    println!(
        "  cache hit rate  {:.1}% ({} of {})",
        100.0 * metrics.cache_hit_rate(),
        metrics.cache_hits,
        metrics.submitted
    );
    println!("  nodes explored  {}", metrics.nodes_explored);
    ttfa.sort_unstable();
    if !ttfa.is_empty() {
        let pct = |p: f64| ttfa[((ttfa.len() - 1) as f64 * p) as usize];
        println!(
            "  ttfa p50 {:?}  p90 {:?}  p99 {:?}",
            pct(0.50),
            pct(0.90),
            pct(0.99)
        );
    }
}
