//! Perf gate: incremental mutation apply vs full snapshot rebuild.
//!
//! ```text
//! cargo run --release --example graph_mutations
//! ```
//!
//! Applies a 100-op [`MutationBatch`] to the synthetic DBLP graph two
//! ways — incrementally ([`GraphSnapshot::apply_batch`]: copy-on-write
//! adjacency, index delta, prestige refresh) and as the wholesale rebuild
//! `swap_graph` performs (rebuild the final graph, re-derive prestige and
//! the label index from scratch) — and prints both times.  **Exits
//! non-zero unless the incremental path is at least 5× faster**, which is
//! the acceptance bar CI enforces; it also cross-checks that the two paths
//! agree (same vocabulary, same matches for probe terms).

use std::time::{Duration, Instant};

use banks::prelude::*;

fn main() {
    let data = DblpDataset::generate(DblpConfig {
        num_authors: 3000,
        num_papers: 6000,
        num_conferences: 12,
        seed: 7,
        ..DblpConfig::default()
    });
    let graph = data.dataset.graph().clone();
    println!(
        "dblp graph: {} nodes, {} forward edges, {} directed edges",
        graph.num_nodes(),
        graph.num_original_edges(),
        graph.num_directed_edges()
    );

    // A representative 100-op ingest batch: new papers with authorship
    // edges, citation inserts/removals, relabels and reweights.  Edge
    // removals/reweights sample entity-level edges (head in-degree ≤ 64) —
    // the shape OLTP deltas actually have; an edge into a huge hub changes
    // the backward weight of *every* edge the hub hands out, which is
    // correct but is reindexing-scale work no 100-op delta implies.
    let n = graph.num_nodes() as u32;
    let existing_forward: Vec<(NodeId, NodeId)> = graph
        .nodes()
        .flat_map(|u| {
            graph
                .out_edges(u)
                .filter(|e| e.kind == EdgeKind::Forward)
                .map(move |e| (u, e.to))
        })
        .filter(|(_, v)| graph.forward_indegree(*v) <= 64)
        .collect();
    let mut batch = MutationBatch::new();
    let mut pick = 1u64;
    let mut rand_node = move || {
        // deterministic LCG over the existing id range
        pick = pick
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        NodeId((pick >> 33) as u32 % n)
    };
    for (i, new_id) in (n..n + 20).enumerate() {
        batch = batch.add_node("paper", format!("fresh incremental paper {i}"));
        batch = batch.add_edge(NodeId(new_id), rand_node());
    }
    for i in 0..20 {
        let (u, v) = existing_forward[i * 97 % existing_forward.len()];
        batch = batch.set_weight(u, v, 1.5);
    }
    for i in 0..20 {
        let (u, v) = existing_forward[(i * 131 + 7) % existing_forward.len()];
        batch = batch.remove_edge(u, v);
    }
    for _ in 0..20 {
        batch = batch.set_label(rand_node(), "relabelled by ingest");
    }
    assert_eq!(batch.len(), 100, "the gate is defined for a 100-op batch");

    // --- incremental path -------------------------------------------------
    let base = GraphSnapshot::with_defaults(graph.clone());
    let mut incremental: Option<GraphSnapshot> = None;
    let mut incremental_time = Duration::MAX;
    for _ in 0..3 {
        let started = Instant::now();
        let (next, outcome) = base.apply_batch(&batch);
        let elapsed = started.elapsed();
        assert!(
            outcome.rejected() <= 20,
            "most ops must apply (rejected {})",
            outcome.rejected()
        );
        incremental_time = incremental_time.min(elapsed);
        incremental = Some(next);
    }
    let incremental_snapshot = incremental.expect("three runs happened");

    // --- full-rebuild path (what swap_graph does) -------------------------
    // Reconstruct the final state's raw parts once (not timed — a real
    // re-extraction would read them from the system of record)...
    let final_graph = incremental_snapshot.graph();
    let kinds_labels: Vec<(String, String)> = final_graph
        .nodes()
        .map(|u| {
            (
                final_graph.node_kind_name(u).to_string(),
                final_graph.node_label(u).to_string(),
            )
        })
        .collect();
    let forward: Vec<(u32, u32, f64)> = final_graph
        .nodes()
        .flat_map(|u| {
            final_graph
                .out_edges(u)
                .filter(|e| e.kind == EdgeKind::Forward)
                .map(move |e| (u.0, e.to.0, e.weight))
        })
        .collect();
    // ...then time what the swap path must do every time: build the graph
    // and re-derive prestige + label index from scratch.
    let mut rebuild_time = Duration::MAX;
    let mut rebuilt: Option<GraphSnapshot> = None;
    for _ in 0..3 {
        let started = Instant::now();
        let mut b = GraphBuilder::with_capacity(kinds_labels.len(), forward.len());
        for (kind, label) in &kinds_labels {
            b.add_node(kind, label.clone());
        }
        for (u, v, w) in &forward {
            b.add_edge_weighted(NodeId(*u), NodeId(*v), *w).unwrap();
        }
        let snap = GraphSnapshot::with_defaults(b.build_default());
        rebuild_time = rebuild_time.min(started.elapsed());
        rebuilt = Some(snap);
    }
    let rebuilt_snapshot = rebuilt.expect("three runs happened");

    // --- the two worlds must agree ---------------------------------------
    assert_eq!(
        incremental_snapshot.graph().num_nodes(),
        rebuilt_snapshot.graph().num_nodes()
    );
    assert_eq!(
        incremental_snapshot.graph().num_directed_edges(),
        rebuilt_snapshot.graph().num_directed_edges()
    );
    assert_eq!(
        incremental_snapshot.index().num_terms(),
        rebuilt_snapshot.index().num_terms(),
        "index delta must match the rebuilt vocabulary"
    );
    for probe in ["fresh", "incremental", "relabelled", "ingest"] {
        assert_eq!(
            incremental_snapshot
                .index()
                .matching_nodes(incremental_snapshot.graph(), probe),
            rebuilt_snapshot
                .index()
                .matching_nodes(rebuilt_snapshot.graph(), probe),
            "matches for {probe:?}"
        );
    }

    let ratio = rebuild_time.as_secs_f64() / incremental_time.as_secs_f64();
    let memory = incremental_snapshot.graph().memory_breakdown();
    println!("100-op batch, best of 3:");
    println!("  incremental apply   {incremental_time:>12.2?}");
    println!("  full rebuild        {rebuild_time:>12.2?}");
    println!("  speedup             {ratio:>11.1}x");
    println!(
        "  successor overlay   {} owned bytes vs {} shared base bytes ({} sharers)",
        memory.owned_bytes, memory.shared_bytes, memory.sharers
    );

    if ratio < 5.0 {
        eprintln!("PERF GATE FAILED: incremental apply must be >= 5x faster than a rebuild");
        std::process::exit(1);
    }
    println!("perf gate passed (>= 5x)");
}
