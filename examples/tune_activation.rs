//! Ablation playground: how µ (activation attenuation), dmax and λ affect
//! the work done and the answers produced.
//!
//! ```text
//! cargo run --release --example tune_activation
//! ```
//!
//! Sweeps the spreading-activation attenuation factor µ, the depth cutoff
//! dmax and the prestige exponent λ on a synthetic DBLP workload, printing
//! nodes explored and recall for each setting — the knobs Section 4.3 and
//! Section 7 ("alternative activation spreading techniques") discuss.

use banks::prelude::*;

fn main() {
    let data = DblpDataset::generate(DblpConfig {
        num_papers: 2_500,
        num_authors: 1_500,
        seed: 17,
        ..DblpConfig::default()
    });
    let graph = data.dataset.graph();
    let (prestige, _) = compute_pagerank(graph, PageRankConfig::default());

    let mut workload = WorkloadGenerator::new(&data, 3);
    let cases = workload.generate(&WorkloadConfig {
        num_queries: 8,
        num_keywords: 3,
        ..WorkloadConfig::default()
    });
    println!(
        "workload: {} queries over {} nodes\n",
        cases.len(),
        graph.num_nodes()
    );

    let banks = Banks::open(graph)
        .with_prestige(prestige)
        .with_index(data.dataset.index().clone());
    let run = |params: &SearchParams| -> (f64, f64) {
        let mut explored = 0usize;
        let mut recall = 0.0;
        for case in &cases {
            let outcome = banks.query_parsed(&case.query()).params(*params).run();
            explored += outcome.stats.nodes_explored;
            recall += GroundTruth::from_sets(case.relevant.clone())
                .evaluate(&outcome)
                .recall;
        }
        (
            explored as f64 / cases.len() as f64,
            recall / cases.len() as f64,
        )
    };

    println!("-- µ sweep (activation attenuation, paper default 0.5) --");
    println!("{:>5} {:>14} {:>8}", "µ", "avg explored", "recall");
    for mu in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let (explored, recall) = run(&SearchParams::default().mu(mu));
        println!("{mu:>5.1} {explored:>14.1} {:>7.0}%", recall * 100.0);
    }

    println!("\n-- dmax sweep (depth cutoff, paper default 8) --");
    println!("{:>5} {:>14} {:>8}", "dmax", "avg explored", "recall");
    for dmax in [2, 4, 6, 8, 10] {
        let (explored, recall) = run(&SearchParams::default().dmax(dmax));
        println!("{dmax:>5} {explored:>14.1} {:>7.0}%", recall * 100.0);
    }

    println!("\n-- λ sweep (prestige exponent, paper default 0.2) --");
    println!("{:>5} {:>14} {:>8}", "λ", "avg explored", "recall");
    for lambda in [0.0, 0.2, 0.5, 1.0] {
        let (explored, recall) = run(&SearchParams::default().lambda(lambda));
        println!("{lambda:>5.1} {explored:>14.1} {:>7.0}%", recall * 100.0);
    }

    println!("\n-- emission policy (exact bound vs heuristic vs immediate) --");
    for policy in [
        EmissionPolicy::ExactBound,
        EmissionPolicy::Heuristic,
        EmissionPolicy::Immediate,
    ] {
        let (explored, recall) = run(&SearchParams::default().emission(policy));
        println!(
            "{policy:>12?} avg explored {explored:>10.1} recall {:>5.0}%",
            recall * 100.0
        );
    }
}
