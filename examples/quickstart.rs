//! Quickstart: the streaming query API on the paper's Figure 4 example.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example reproduces the walk-through of Section 4.4: the query
//! `Database James John` over a graph where `Database` matches 100 paper
//! nodes, `James` and `John` match one author node each, and John has a
//! large fan-in.  Everything goes through the `Banks` facade: it resolves
//! keywords against an automatically built label index, assembles the
//! search parameters, and lets the same session run either as a lazy
//! answer stream (time-to-first-answer, early termination) or in batch.

use banks::prelude::*;

fn main() {
    // Build the Figure 4 example graph (100 database papers, John wrote 48
    // of them, James co-wrote exactly one with John).
    let example = figure4_example(100, 48);
    let graph = &example.graph;
    println!(
        "graph: {} nodes, {} directed edges",
        graph.num_nodes(),
        graph.num_directed_edges()
    );

    // Open the graph for querying.  The facade indexes the node labels,
    // defaults to uniform prestige and the Bidirectional engine; the
    // session below carries the query and its parameters.
    let banks = Banks::open(graph);
    let session = banks.query(["database", "james", "john"]).top_k(3);
    println!("\nquery: Database James John");
    println!("origin sizes: {:?}", session.matches().origin_sizes());

    // --- Streaming: pull answers one at a time -------------------------
    let mut stream = session.stream();
    if let Some(first) = stream.next() {
        let live = stream.stats();
        println!(
            "\nfirst answer after exploring only {} nodes (touched {}):",
            live.nodes_explored, live.nodes_touched
        );
        println!(
            "  score {:.4}  root {} ({})",
            first.tree.score,
            first.tree.root,
            graph.node_label(first.tree.root)
        );
    }
    drop(stream); // dropping the stream terminates the search early

    // --- Batch: drain the same session to completion -------------------
    let outcome = session.run();
    println!("\ntop answers ({}):", stream_name(&session));
    for answer in &outcome.answers {
        let tree = &answer.tree;
        println!(
            "  #{} score {:.4}  root {} ({})",
            answer.rank + 1,
            tree.score,
            tree.root,
            graph.node_label(tree.root)
        );
        for (i, path) in tree.paths.iter().enumerate() {
            let rendered: Vec<String> = path
                .iter()
                .map(|n| format!("{} [{}]", graph.node_label(*n), graph.node_kind_name(*n)))
                .collect();
            println!("    keyword {}: {}", i + 1, rendered.join(" -> "));
        }
    }
    if let Some(ttfa) = outcome.time_to_first_answer() {
        println!("\ntime to first answer: {ttfa:.2?}");
    }

    // --- Engine comparison via the registry ----------------------------
    println!("\nengines ({}):", banks.engine_names().join(", "));
    let mut explored = std::collections::HashMap::new();
    for engine in ["bidirectional", "si-backward", "mi-backward"] {
        let run = banks
            .query(["database", "james", "john"])
            .engine(engine)
            .top_k(3)
            .run();
        println!(
            "{:<16} explored {:>5} touched {:>5} answers {:>2}",
            engine,
            run.stats.nodes_explored,
            run.stats.nodes_touched,
            run.answers.len()
        );
        explored.insert(engine, run.stats.nodes_explored);
    }

    let speedup = explored["si-backward"] as f64 / explored["bidirectional"].max(1) as f64;
    println!("\nBidirectional explored {speedup:.1}x fewer nodes than SI-Backward on this query.");
}

fn stream_name(session: &QuerySession<'_, '_>) -> &'static str {
    session.build_engine().name()
}
