//! Quickstart: run Bidirectional search on the paper's Figure 4 example.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example reproduces the walk-through of Section 4.4: the query
//! `Database James John` over a graph where `Database` matches 100 paper
//! nodes, `James` and `John` match one author node each, and John has a
//! large fan-in.  It prints the answer trees found by Bidirectional search
//! and compares the number of nodes explored against SI-Backward search.

use banks::prelude::*;

fn main() {
    // Build the Figure 4 example graph (100 database papers, John wrote 48
    // of them, James co-wrote exactly one with John).
    let example = figure4_example(100, 48);
    let graph = &example.graph;
    println!(
        "graph: {} nodes, {} directed edges",
        graph.num_nodes(),
        graph.num_directed_edges()
    );

    let prestige = PrestigeVector::uniform_for(graph);
    let params = SearchParams::with_top_k(3);

    // The paper's algorithm ...
    let bidirectional = BidirectionalSearch::new();
    let outcome = bidirectional.search(graph, &prestige, &example.matches, &params);

    // ... and the single-iterator backward baseline for comparison.
    let backward = SingleIteratorBackwardSearch::new();
    let baseline = backward.search(graph, &prestige, &example.matches, &params);

    println!("\nquery: Database James John");
    println!(
        "{:<16} explored {:>5} touched {:>5} answers {:>2}",
        bidirectional.name(),
        outcome.stats.nodes_explored,
        outcome.stats.nodes_touched,
        outcome.answers.len()
    );
    println!(
        "{:<16} explored {:>5} touched {:>5} answers {:>2}",
        backward.name(),
        baseline.stats.nodes_explored,
        baseline.stats.nodes_touched,
        baseline.answers.len()
    );

    println!("\ntop answers (Bidirectional):");
    for answer in &outcome.answers {
        let tree = &answer.tree;
        println!(
            "  #{} score {:.4}  root {} ({})",
            answer.rank + 1,
            tree.score,
            tree.root,
            graph.node_label(tree.root)
        );
        for (i, path) in tree.paths.iter().enumerate() {
            let rendered: Vec<String> = path
                .iter()
                .map(|n| format!("{} [{}]", graph.node_label(*n), graph.node_kind_name(*n)))
                .collect();
            println!("    keyword {}: {}", i + 1, rendered.join(" -> "));
        }
    }

    let speedup =
        baseline.stats.nodes_explored as f64 / outcome.stats.nodes_explored.max(1) as f64;
    println!("\nBidirectional explored {speedup:.1}x fewer nodes than SI-Backward on this query.");
}
