//! Keyword search over a synthetic IMDB-like movie graph.
//!
//! ```text
//! cargo run --release --example imdb_search
//! ```
//!
//! Mirrors the paper's IQ1 query ("Keanu Matrix Thomas"): a rare actor name,
//! a movie title word and a frequent character name.  The example picks an
//! actor from the generated data, one of their movies and a title word, then
//! compares Bidirectional search against SI-Backward.

use banks::prelude::*;
use banks::relational::TupleId;

fn main() {
    let config = ImdbConfig {
        num_persons: 3_000,
        num_movies: 2_500,
        seed: 7,
        ..ImdbConfig::default()
    };
    println!(
        "generating synthetic IMDB dataset ({} movies)...",
        config.num_movies
    );
    let data = ImdbDataset::generate(config);
    let graph = data.dataset.graph();
    println!(
        "graph: {} nodes, {} directed edges",
        graph.num_nodes(),
        graph.num_directed_edges()
    );

    let (prestige, _) = compute_pagerank(graph, PageRankConfig::default());

    // Build an IQ1-style query: an actor who appears in a movie, one word of
    // that movie's title, and the relation name "movie" as the frequent term.
    let db = &data.dataset.db;
    let casts_row = 0u32;
    let actor_row = db.referenced_row(data.casts, casts_row, 1).expect("actor");
    let movie_row = db.referenced_row(data.casts, casts_row, 2).expect("movie");
    let actor_name = db.row_text(data.person, actor_row).to_lowercase();
    let title_word = db
        .row_text(data.movie, movie_row)
        .to_lowercase()
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();
    let query_text = format!("\"{actor_name}\" {title_word} movie");
    let query = Query::parse(&query_text);
    println!("\nquery: {query}");

    let banks = Banks::open(graph)
        .with_prestige(prestige)
        .with_index(data.dataset.index().clone());
    let session = banks.query_parsed(&query).top_k(5);
    println!("origin sizes: {:?}", session.matches().origin_sizes());

    for engine in ["bidirectional", "si-backward"] {
        let outcome = banks.query_parsed(&query).engine(engine).top_k(5).run();
        println!(
            "{:<16} explored {:>7} touched {:>7} answers {:>2} time {:.1?}",
            engine,
            outcome.stats.nodes_explored,
            outcome.stats.nodes_touched,
            outcome.answers.len(),
            outcome.stats.duration
        );
    }

    let outcome = session.run();
    println!("\ntop answers (Bidirectional):");
    for answer in outcome.answers.iter().take(3) {
        let tree = &answer.tree;
        println!(
            "  #{} score {:.5} root [{}] {}",
            answer.rank + 1,
            tree.score,
            graph.node_kind_name(tree.root),
            graph.node_label(tree.root)
        );
    }

    // Sanity: the expected movie connects the actor and the title word.
    let expected_movie = data
        .dataset
        .extraction
        .node_of(TupleId::new(data.movie, movie_row));
    let found = outcome
        .answers
        .iter()
        .any(|a| a.tree.nodes().contains(&expected_movie));
    println!("\nexpected movie node {expected_movie} present in some answer: {found}");
}
