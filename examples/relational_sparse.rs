//! Relational integration: graph extraction and the Sparse baseline.
//!
//! ```text
//! cargo run --release --example relational_sparse
//! ```
//!
//! Shows the other half of the paper's pipeline: a relational database is
//! extracted into a data graph, and the same keyword query is answered both
//! by the Sparse candidate-network algorithm (relational joins) and by
//! Bidirectional search over the extracted graph, reproducing the
//! `Sparse-LB` comparison of Figure 5.

use banks::prelude::*;

fn main() {
    let data = DblpDataset::generate(DblpConfig {
        num_papers: 2_000,
        num_authors: 1_200,
        seed: 5,
        ..DblpConfig::default()
    });
    let db = &data.dataset.db;
    let graph = data.dataset.graph();
    println!(
        "relational database: {} tables, {} tuples -> graph with {} nodes / {} edges",
        db.schema().num_tables(),
        db.total_rows(),
        graph.num_nodes(),
        graph.num_directed_edges()
    );

    // A query with one rare keyword (an author) and one selective title word
    // from one of their papers, like DQ1/DQ3 in the paper.
    let mut workload = WorkloadGenerator::new(&data, 31);
    let case = workload
        .generate(&WorkloadConfig {
            num_queries: 1,
            num_keywords: 2,
            ..WorkloadConfig::default()
        })
        .into_iter()
        .next()
        .expect("query");
    println!("\nquery: {}", case.query());
    println!(
        "relevant answers (relational oracle): {}",
        case.relevant.len()
    );

    // --- Sparse baseline over the relational database --------------------
    let keywords: Vec<&str> = case.keywords.iter().map(String::as_str).collect();
    let sparse = SparseSearch::with_max_size(case.answer_size);
    let sparse_outcome = sparse.run(db, &keywords);
    println!(
        "\nSparse: {} candidate networks, {} results, {:.1?}",
        sparse_outcome.num_candidate_networks,
        sparse_outcome.results.len(),
        sparse_outcome.duration
    );
    for result in sparse_outcome.results.iter().take(3) {
        let tables: Vec<&str> = result
            .tuples
            .iter()
            .map(|t| db.schema().table(t.table).name.as_str())
            .collect();
        println!(
            "  CN#{} size {}: {}",
            result.candidate_network,
            result.size,
            tables.join(" - ")
        );
    }

    // --- Bidirectional search over the extracted graph -------------------
    let (prestige, _) = compute_pagerank(graph, PageRankConfig::default());
    let banks = Banks::open(graph)
        .with_prestige(prestige)
        .with_index(data.dataset.index().clone());
    let outcome = banks.query_parsed(&case.query()).top_k(10).run();
    println!(
        "\nBidirectional: explored {} nodes, {} answers, {:.1?}",
        outcome.stats.nodes_explored,
        outcome.answers.len(),
        outcome.stats.duration
    );

    let ground_truth = GroundTruth::from_sets(case.relevant.clone());
    let rp = ground_truth.evaluate(&outcome);
    println!(
        "recall {:.0}%  precision {:.0}%  (relevant answers found: {}/{})",
        rp.recall * 100.0,
        rp.precision * 100.0,
        rp.relevant_found,
        rp.relevant_total
    );

    // Cross-check: both sides agree on the connecting tuples.
    if let (Some(sparse_best), Some(graph_best)) =
        (sparse_outcome.results.first(), outcome.answers.first())
    {
        let sparse_nodes: Vec<NodeId> = sparse_best
            .distinct_tuples()
            .into_iter()
            .map(|t| data.dataset.extraction.node_of(t))
            .collect();
        let graph_nodes = graph_best.tree.nodes();
        let agree = sparse_nodes.iter().all(|n| graph_nodes.contains(n));
        println!("best Sparse result covered by best graph answer: {agree}");
    }
}
