//! Perf gate: snapshot load vs from-scratch rebuild.
//!
//! ```text
//! cargo run --release --example persist_bench
//! ```
//!
//! Boots the synthetic DBLP corpus two ways — regenerating graph, keyword
//! index and prestige from the generator (the cold-boot path a process
//! without persistence pays) and loading the epoch-versioned binary
//! snapshot ([`read_snapshot`]) — and prints both times plus the snapshot
//! size.  **Exits non-zero unless the snapshot load is at least 5× faster
//! than the rebuild**, which is the acceptance bar CI enforces; it also
//! cross-checks that the loaded state matches the rebuilt state (node and
//! edge counts, epoch, and keyword matches for probe terms).  The numbers
//! land in `BENCH_persist.json` for CI to archive.

use std::io::Write as _;
use std::time::{Duration, Instant};

use banks::prelude::*;

fn generate() -> DblpDataset {
    DblpDataset::generate(DblpConfig {
        num_authors: 3000,
        num_papers: 6000,
        num_conferences: 12,
        seed: 7,
        ..DblpConfig::default()
    })
}

fn main() {
    let data = generate();
    let graph = data.dataset.graph().clone();
    let prestige = PrestigeVector::uniform_for(&graph);
    let index = data.dataset.index().clone();
    println!(
        "dblp graph: {} nodes, {} directed edges, {} index terms",
        graph.num_nodes(),
        graph.num_directed_edges(),
        index.num_terms(),
    );

    let dir = std::env::temp_dir().join(format!("banks-persist-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.banks");
    let write_started = Instant::now();
    let snapshot_bytes = write_snapshot(&path, &graph, Some(&prestige), Some(&index)).unwrap();
    let write_time = write_started.elapsed();
    println!("snapshot: {snapshot_bytes} bytes written (fsynced) in {write_time:.2?}",);

    // Best-of-3 for both sides: the gate compares steady-state costs, not
    // first-touch page-cache noise.
    let mut load_time = Duration::MAX;
    let mut loaded_nodes = 0;
    for _ in 0..3 {
        let started = Instant::now();
        let contents = read_snapshot(&path).unwrap();
        load_time = load_time.min(started.elapsed());
        loaded_nodes = contents.graph.num_nodes();
        std::hint::black_box(&contents);
    }

    let mut rebuild_time = Duration::MAX;
    for _ in 0..3 {
        let started = Instant::now();
        let data = generate();
        let rebuilt_prestige = PrestigeVector::uniform_for(data.dataset.graph());
        rebuild_time = rebuild_time.min(started.elapsed());
        std::hint::black_box((&data, &rebuilt_prestige));
    }

    // The loaded state must *be* the rebuilt state, or the speedup is
    // meaningless: same shape, same epoch, same keyword reach.
    let contents = read_snapshot(&path).unwrap();
    assert_eq!(loaded_nodes, graph.num_nodes());
    assert_eq!(contents.graph.num_nodes(), graph.num_nodes());
    assert_eq!(
        contents.graph.num_directed_edges(),
        graph.num_directed_edges()
    );
    assert_eq!(contents.graph.epoch(), graph.epoch());
    let loaded_index = contents.index.expect("snapshot carries the index");
    assert_eq!(loaded_index.num_terms(), index.num_terms());
    for probe in ["database", "query", "search"] {
        assert_eq!(
            loaded_index.postings(probe),
            index.postings(probe),
            "probe term {probe:?} must match identically"
        );
    }

    let ratio = rebuild_time.as_secs_f64() / load_time.as_secs_f64();
    println!("\nboot paths (best of 3):");
    println!("  from-scratch rebuild {:>11.2?}", rebuild_time);
    println!("  snapshot load        {:>11.2?}", load_time);
    println!("  speedup              {ratio:>10.1}x");

    let report = format!(
        "{{\"nodes\":{},\"directed_edges\":{},\"snapshot_bytes\":{},\
         \"write_us\":{},\"load_us\":{},\"rebuild_us\":{},\"speedup\":{:.2}}}\n",
        graph.num_nodes(),
        graph.num_directed_edges(),
        snapshot_bytes,
        write_time.as_micros(),
        load_time.as_micros(),
        rebuild_time.as_micros(),
        ratio,
    );
    let mut file = std::fs::File::create("BENCH_persist.json").unwrap();
    file.write_all(report.as_bytes()).unwrap();
    println!("wrote BENCH_persist.json: {}", report.trim());

    std::fs::remove_dir_all(&dir).unwrap();
    if ratio < 5.0 {
        eprintln!("PERF GATE FAILED: snapshot load must be >= 5x faster than a rebuild");
        std::process::exit(1);
    }
    println!("perf gate passed (>= 5x)");
}
