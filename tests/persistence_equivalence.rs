//! Randomized save → mutate → crash → recover equivalence suite.
//!
//! The durability contract is that a crash costs nothing that was
//! acknowledged: a service rebooted from its data directory serves the
//! *same world* it served the instant before the crash.  This suite
//! generates random graphs and random mutation chains against a persistent
//! [`Service`], "crashes" it (drops it with a non-empty WAL, no clean
//! checkpoint), reboots from the directory — handing the builder a decoy
//! graph that recovery must ignore — and asserts **byte-identical query
//! results for all three engines**, comparing the canonical JSON rendering
//! of every ranked answer, plus the epoch and the graph signature.

use std::path::PathBuf;

use banks::core::json as corejson;
use banks::prelude::*;

/// Deterministic xorshift64* — no dependency, stable across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

const VOCAB: &[&str] = &[
    "database", "recovery", "keyword", "search", "graph", "locks", "stream", "index", "query",
    "prestige", "vldb", "banks",
];
const KINDS: &[&str] = &["author", "paper", "writes", "venue"];

fn tmp_dir(seed: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("banks-persist-equiv-{}-{seed}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn random_label(rng: &mut Rng) -> String {
    let a = VOCAB[rng.below(VOCAB.len() as u64) as usize];
    let b = VOCAB[rng.below(VOCAB.len() as u64) as usize];
    format!("{a} {b}")
}

fn random_graph(rng: &mut Rng) -> DataGraph {
    let mut b = GraphBuilder::new();
    let n = 12 + rng.below(20) as usize;
    let ids: Vec<NodeId> = (0..n)
        .map(|_| {
            b.add_node(
                KINDS[rng.below(KINDS.len() as u64) as usize],
                random_label(rng),
            )
        })
        .collect();
    for _ in 0..(2 * n) {
        let u = ids[rng.below(n as u64) as usize];
        let v = ids[rng.below(n as u64) as usize];
        if u != v {
            let w = 0.5 + rng.below(8) as f64 / 2.0;
            b.add_edge_weighted(u, v, w).unwrap();
        }
    }
    b.build_default()
}

/// A random batch over the *current* node count: mostly valid ops, with
/// the occasional invalid one (rejected individually, no side effects).
fn random_batch(rng: &mut Rng, num_nodes: u32) -> MutationBatch {
    let mut batch = MutationBatch::new();
    let mut n = num_nodes as u64;
    for _ in 0..(4 + rng.below(6)) {
        match rng.below(10) {
            0..=2 => {
                batch = batch.add_node(
                    KINDS[rng.below(KINDS.len() as u64) as usize],
                    random_label(rng),
                );
                n += 1;
            }
            3..=5 => {
                let u = rng.below(n) as u32;
                let v = rng.below(n) as u32;
                batch = batch.add_edge(NodeId(u), NodeId(v));
            }
            6 | 7 => {
                let node = rng.below(n) as u32;
                batch = batch.set_label(NodeId(node), random_label(rng));
            }
            8 => {
                let u = rng.below(n) as u32;
                let v = rng.below(n) as u32;
                let w = 0.25 + rng.below(12) as f64 / 4.0;
                batch = batch.set_weight(NodeId(u), NodeId(v), w);
            }
            _ => {
                // invalid on purpose: an endpoint far out of range
                batch = batch.add_edge(NodeId(n as u32 + 500), NodeId(rng.below(n) as u32));
            }
        }
    }
    batch
}

/// Canonical JSON of every ranked answer, per engine — byte equality here
/// is the strongest "same world" check the query surface offers.  (Rank +
/// tree rendering: everything about the answer except the wall-clock
/// timing fields, which no two runs share.)
fn engine_fingerprints(service: &Service, queries: &[String]) -> Vec<String> {
    let mut fingerprints = Vec::new();
    for engine in service.engine_names() {
        for query in queries {
            let spec = QuerySpec::parse(query).engine(engine).top_k(6);
            let (outcome, _) = service.submit(spec).unwrap().wait();
            let rendered: Vec<String> = outcome
                .answers
                .iter()
                .map(|a| format!("{}:{}", a.rank, corejson::answer_tree(&a.tree)))
                .collect();
            fingerprints.push(format!("{engine}: {}", rendered.join(",")));
        }
    }
    fingerprints
}

/// One node's identity in the signature: kind, label, out-edges as
/// `(target, weight bits)`.
type NodeSignature = (String, String, Vec<(u32, u64)>);

fn graph_signature(g: &DataGraph) -> Vec<NodeSignature> {
    g.nodes()
        .map(|u| {
            (
                g.node_kind_name(u).to_string(),
                g.node_label(u).to_string(),
                g.out_edges(u)
                    .map(|e| (e.to.0, e.weight.to_bits()))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn random_mutation_chains_survive_crashes_byte_identically() {
    for seed in 1..=6u64 {
        let mut rng = Rng::new(seed * 0x9E37_79B9);
        let dir = tmp_dir(seed);
        let queries: Vec<String> = (0..3).map(|_| random_label(&mut rng)).collect();

        let pre_epoch;
        let pre_fingerprints;
        let pre_signature;
        {
            let service = Service::builder(random_graph(&mut rng))
                .workers(2)
                .persistence(&dir, FsyncPolicy::Always)
                .build();
            for _ in 0..(3 + rng.below(5)) {
                let nodes = service.snapshot().graph().num_nodes() as u32;
                let report = service.apply_mutations(&random_batch(&mut rng, nodes));
                assert!(report.persist_error.is_none(), "seed {seed}: WAL append");
            }
            pre_epoch = service.epoch();
            pre_fingerprints = engine_fingerprints(&service, &queries);
            pre_signature = graph_signature(service.snapshot().graph());
            // Crash: dropped here without a checkpoint.
        }

        let recovered = Service::builder(random_graph(&mut rng))
            .workers(2)
            .persistence(&dir, FsyncPolicy::Always)
            .build();
        assert_eq!(recovered.epoch(), pre_epoch, "seed {seed}: epoch");
        assert_eq!(
            graph_signature(recovered.snapshot().graph()),
            pre_signature,
            "seed {seed}: graph signature"
        );
        assert_eq!(
            engine_fingerprints(&recovered, &queries),
            pre_fingerprints,
            "seed {seed}: answers must be byte-identical on every engine"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
