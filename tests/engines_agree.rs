//! Cross-engine consistency on generated DBLP workloads: all three search
//! algorithms must report the same relevant answers (the paper: "In all
//! cases we found that Bidirectional, SI-Backward and MI-Backward return the
//! same sets of relevant answers"), and every returned answer tree must be
//! structurally valid.

use banks::prelude::*;

fn dataset() -> DblpDataset {
    DblpDataset::generate(DblpConfig {
        num_authors: 200,
        num_papers: 400,
        num_conferences: 6,
        seed: 123,
        ..DblpConfig::default()
    })
}

fn workload(data: &DblpDataset, num_keywords: usize, num_queries: usize) -> Vec<QueryCase> {
    let mut generator = WorkloadGenerator::new(data, 1000 + num_keywords as u64);
    generator.generate(&WorkloadConfig {
        num_queries,
        num_keywords,
        ..WorkloadConfig::default()
    })
}

#[test]
fn every_engine_reaches_full_recall_on_planted_answers() {
    let data = dataset();
    let graph = data.dataset.graph();
    let (prestige, _) = compute_pagerank(graph, PageRankConfig::default());
    let cases = workload(&data, 2, 6);
    assert!(!cases.is_empty());

    for case in &cases {
        let matches = KeywordMatches::resolve(graph, data.dataset.index(), &case.query());
        let ground_truth = GroundTruth::from_sets(case.relevant.clone());
        // The paper examines the top 20-30 results per query; because output
        // ordering is only approximate (Section 4.5), we give the engines a
        // generous output budget so every relevant answer can surface.
        let params = SearchParams::with_top_k(1_000);
        for engine in [
            Box::new(BidirectionalSearch::new()) as Box<dyn SearchEngine>,
            Box::new(SingleIteratorBackwardSearch::new()),
            Box::new(BackwardExpandingSearch::new()),
        ] {
            let outcome = engine.search(graph, &prestige, &matches, &params);
            let rp = ground_truth.evaluate(&outcome);
            assert!(
                (rp.recall - 1.0).abs() < 1e-9,
                "{} recall {:.2} on query {:?} (found {}/{})",
                engine.name(),
                rp.recall,
                case.keywords,
                rp.relevant_found,
                rp.relevant_total
            );
        }
    }
}

#[test]
fn answer_trees_are_structurally_valid() {
    let data = dataset();
    let graph = data.dataset.graph();
    let (prestige, _) = compute_pagerank(graph, PageRankConfig::default());
    let cases = workload(&data, 3, 4);

    for case in &cases {
        let matches = KeywordMatches::resolve(graph, data.dataset.index(), &case.query());
        let origin_sets: Vec<Vec<NodeId>> = (0..matches.num_keywords())
            .map(|i| matches.origin_set(i).to_vec())
            .collect();
        let params = SearchParams::with_top_k(10);
        for engine in [
            Box::new(BidirectionalSearch::new()) as Box<dyn SearchEngine>,
            Box::new(SingleIteratorBackwardSearch::new()),
            Box::new(BackwardExpandingSearch::new()),
        ] {
            let outcome = engine.search(graph, &prestige, &matches, &params);
            for answer in &outcome.answers {
                answer
                    .tree
                    .validate(graph, &origin_sets, params.dmax)
                    .unwrap_or_else(|e| panic!("{}: invalid answer tree: {e}", engine.name()));
                assert!(
                    answer.tree.is_minimal(),
                    "{}: non-minimal answer emitted",
                    engine.name()
                );
                assert!(answer.tree.score > 0.0);
                assert!(answer.timing.generated_at <= answer.timing.output_at);
            }
            // answers are unique by signature
            let mut signatures = outcome.signatures();
            let before = signatures.len();
            signatures.sort();
            signatures.dedup();
            assert_eq!(
                before,
                signatures.len(),
                "{} emitted duplicate answers",
                engine.name()
            );
        }
    }
}

#[test]
fn bidirectional_never_does_dramatically_more_work() {
    // Across a small mixed workload Bidirectional should on average explore
    // no more nodes than SI-Backward (individual queries may go either way —
    // the paper's own "C. Mohan Rothermel" anomaly).
    let data = dataset();
    let graph = data.dataset.graph();
    let (prestige, _) = compute_pagerank(graph, PageRankConfig::default());
    let cases = workload(&data, 3, 6);

    let mut total_bidir = 0usize;
    let mut total_si = 0usize;
    for case in &cases {
        let matches = KeywordMatches::resolve(graph, data.dataset.index(), &case.query());
        let params = SearchParams::with_top_k(5);
        total_bidir += BidirectionalSearch::new()
            .search(graph, &prestige, &matches, &params)
            .stats
            .nodes_explored;
        total_si += SingleIteratorBackwardSearch::new()
            .search(graph, &prestige, &matches, &params)
            .stats
            .nodes_explored;
    }
    assert!(
        total_bidir <= total_si * 2,
        "bidirectional explored {total_bidir} vs SI-backward {total_si}"
    );
}

#[test]
fn sparse_oracle_and_graph_search_agree() {
    // Every Sparse result (relational join) corresponds to an answer the
    // graph engines can find, and vice versa for the best answers.
    let data = dataset();
    let graph = data.dataset.graph();
    let (prestige, _) = compute_pagerank(graph, PageRankConfig::default());
    let cases = workload(&data, 2, 3);

    for case in &cases {
        let keywords: Vec<&str> = case.keywords.iter().map(String::as_str).collect();
        let sparse = SparseSearch::with_max_size(case.answer_size).run(&data.dataset.db, &keywords);
        let matches = KeywordMatches::resolve(graph, data.dataset.index(), &case.query());
        let outcome = BidirectionalSearch::new().search(
            graph,
            &prestige,
            &matches,
            &SearchParams::with_top_k(sparse.results.len() + 20),
        );
        let answer_nodes: Vec<Vec<NodeId>> =
            outcome.answers.iter().map(|a| a.tree.nodes()).collect();
        for result in &sparse.results {
            let nodes: Vec<NodeId> = result
                .distinct_tuples()
                .into_iter()
                .map(|t| data.dataset.extraction.node_of(t))
                .collect();
            let covered = answer_nodes
                .iter()
                .any(|answer| nodes.iter().all(|n| answer.contains(n)));
            assert!(
                covered,
                "Sparse result {:?} not covered by any graph answer for query {:?}",
                nodes, case.keywords
            );
        }
    }
}
