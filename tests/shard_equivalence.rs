//! Randomized shard-equivalence suite: the tentpole proof that sharded
//! scatter-gather execution is **byte-identical** to unsharded execution.
//!
//! For seeds 1–6 over a synthetic DBLP corpus, a baseline (unsharded)
//! [`Service`] and sharded services at K ∈ {1, 2, 4, 7} answer the same
//! randomized workload through all three base engines — each base run
//! unsharded on the baseline and under its `sg-*` scatter-gather wrapper
//! on the sharded services.  Every ranked answer is compared by rank plus
//! the canonical JSON rendering of its tree (everything except the
//! wall-clock timing fields, which no two runs share).  The comparison is
//! repeated:
//!
//! * on the freshly built services,
//! * after the same interleaved mutation batches land on every service
//!   (epoch fan-out across shards included), and
//! * after each sharded service is crashed (dropped with a non-empty WAL)
//!   and recovered from its data directory with the same shard count.

use std::path::PathBuf;

use banks::core::json as corejson;
use banks::prelude::*;

/// The shard counts under test: the degenerate K=1 (must take the plain
/// unsharded code path), even splits, and a prime that never divides the
/// node count cleanly.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Base engine → its scatter-gather wrapper in the registry.
const ENGINE_PAIRS: [(&str, &str); 3] = [
    ("bidirectional", "sg-bidirectional"),
    ("si-backward", "sg-si-backward"),
    ("mi-backward", "sg-mi-backward"),
];

fn tmp_dir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "banks-shard-equiv-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn corpus(seed: u64) -> DblpDataset {
    DblpDataset::generate(DblpConfig {
        num_authors: 60 + (seed as usize % 3) * 20,
        num_papers: 120 + (seed as usize % 3) * 40,
        num_conferences: 4,
        seed,
        ..DblpConfig::default()
    })
}

fn build_service(data: &DblpDataset, shards: usize, dir: Option<&PathBuf>) -> Service {
    let mut builder = Service::builder(data.dataset.graph().clone())
        .workers(2)
        .cache_capacity(0)
        .shards(shards)
        .index(data.dataset.index().clone());
    if let Some(dir) = dir {
        builder = builder.persistence(dir, FsyncPolicy::Always);
    }
    builder.build()
}

/// Reboots a crashed sharded service from its data directory.  The
/// builder graph is a decoy — recovery must restore graph, prestige *and*
/// keyword index from the directory, never from the builder.
fn recover_service(shards: usize, dir: &PathBuf) -> Service {
    let mut b = GraphBuilder::new();
    b.add_node("author", "Decoy Author");
    Service::builder(b.build_default())
        .workers(2)
        .cache_capacity(0)
        .shards(shards)
        .persistence(dir, FsyncPolicy::Always)
        .build()
}

/// Runs one query through one engine and renders every answer as
/// `rank:canonical-tree-json` — the byte-identity fingerprint.
fn canonical_answers(service: &Service, keywords: &[String], engine: &str) -> Vec<String> {
    let spec = QuerySpec::keywords(keywords.iter().cloned())
        .top_k(5)
        .engine(engine);
    let (outcome, _) = service.submit(spec).unwrap().wait();
    assert!(
        !outcome.stats.cancelled,
        "equivalence queries must run to completion"
    );
    outcome
        .answers
        .iter()
        .map(|a| format!("{}:{}", a.rank, corejson::answer_tree(&a.tree)))
        .collect()
}

/// Asserts every (query, engine) fingerprint matches between the
/// unsharded baseline and a sharded service.
fn assert_equivalent(baseline: &Service, sharded: &Service, queries: &[Vec<String>], ctx: &str) {
    for (qi, keywords) in queries.iter().enumerate() {
        for (base, sg) in ENGINE_PAIRS {
            let expect = canonical_answers(baseline, keywords, base);
            let got = canonical_answers(sharded, keywords, sg);
            assert_eq!(
                expect, got,
                "{ctx}: query {qi} {keywords:?} diverged ({base} vs {sg})"
            );
        }
    }
}

/// Deterministic mutation batches, valid against any corpus of `n` nodes:
/// fresh searchable entities plus a relabel and a node removal, so the
/// index and prestige deltas fan out across shards, the new text answers
/// queries, and the tombstoned id stops answering everywhere at once.
fn mutation_batches(seed: u64, n: u32) -> Vec<MutationBatch> {
    vec![
        MutationBatch::new()
            .add_node("author", format!("shardwright {seed}"))
            .add_node("paper", format!("scattergather proof {seed}"))
            .add_node("writes", format!("w-shard-{seed}"))
            .add_edge(NodeId(n + 2), NodeId(n))
            .add_edge(NodeId(n + 2), NodeId(n + 1)),
        MutationBatch::new()
            .set_label(NodeId(0), format!("relabeled author {seed}"))
            .add_edge(NodeId(n + 2), NodeId(1))
            // an invalid op mixed in: must be rejected identically everywhere
            .add_edge(NodeId(n), NodeId(n)),
        MutationBatch::new()
            // removal takes out the node, its incident edges, and its index
            // entries on every shard assignment identically…
            .remove_node(NodeId(2))
            // …and ops against the tombstoned id are rejected identically.
            .add_edge(NodeId(0), NodeId(2))
            .set_label(NodeId(2), format!("ghost {seed}")),
    ]
}

#[test]
fn sharded_answers_match_unsharded_baseline_through_mutations_and_recovery() {
    for seed in 1..=6u64 {
        let data = corpus(seed);
        let n = data.dataset.graph().num_nodes() as u32;

        // Randomized workload: keyword sets drawn from the corpus itself.
        let mut generator = WorkloadGenerator::new(&data, seed.wrapping_mul(0x9E3779B9));
        let cases = generator.generate(&WorkloadConfig {
            num_queries: 3,
            num_keywords: 2,
            answer_size: 5,
            compute_ground_truth: false,
            ..WorkloadConfig::default()
        });
        let mut queries: Vec<Vec<String>> = cases.iter().map(|c| c.keywords.clone()).collect();
        // plus one query that only the mutated world can answer
        queries.push(vec!["scattergather".to_string(), "shardwright".to_string()]);

        let baseline = build_service(&data, 1, None);
        let sharded: Vec<(usize, PathBuf, Service)> = SHARD_COUNTS
            .iter()
            .map(|&k| {
                let dir = tmp_dir(&format!("s{seed}k{k}"));
                let service = build_service(&data, k, Some(&dir));
                (k, dir, service)
            })
            .collect();

        for (k, _, service) in &sharded {
            assert_eq!(service.shards(), *k);
            assert_equivalent(
                &baseline,
                service,
                &queries,
                &format!("seed {seed} K={k} fresh"),
            );
        }

        // Interleave mutation batches: every service sees the identical
        // sequence, so every comparison below crosses the same epochs.
        for batch in mutation_batches(seed, n) {
            let expect = baseline.apply_mutations(&batch);
            for (k, _, service) in &sharded {
                let got = service.apply_mutations(&batch);
                assert_eq!(
                    (expect.outcome.accepted(), expect.outcome.rejected()),
                    (got.outcome.accepted(), got.outcome.rejected()),
                    "seed {seed} K={k}: mutation outcomes diverged"
                );
                assert!(got.persist_error.is_none(), "seed {seed} K={k}");
            }
        }
        for (k, _, service) in &sharded {
            assert_equivalent(
                &baseline,
                service,
                &queries,
                &format!("seed {seed} K={k} post-mutation"),
            );
        }

        // Crash (drop with WAL state on disk) and recover each sharded
        // service at its shard count; answers must still match the
        // baseline, which never went down.
        for (k, dir, service) in sharded {
            let pre_epoch = service.epoch();
            drop(service);
            let recovered = recover_service(k, &dir);
            assert_eq!(
                recovered.epoch(),
                pre_epoch,
                "seed {seed} K={k}: recovery must restore the pre-crash epoch"
            );
            assert_eq!(recovered.shards(), k);
            assert_equivalent(
                &baseline,
                &recovered,
                &queries,
                &format!("seed {seed} K={k} recovered"),
            );
            drop(recovered);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The scatter-gather default entry (`scatter-gather` / `sg`) over the
/// MI base must match too, and cache keys must not depend on the shard
/// count: a sharded service with a warm cache serves the same bytes.
#[test]
fn default_scatter_gather_entry_and_cache_agree_with_baseline() {
    let data = corpus(3);
    let baseline = build_service(&data, 1, None);
    let sharded = Service::builder(data.dataset.graph().clone())
        .workers(2)
        .cache_capacity(64)
        .shards(4)
        .index(data.dataset.index().clone())
        .build();

    let mut generator = WorkloadGenerator::new(&data, 0xC0FFEE);
    let cases = generator.generate(&WorkloadConfig {
        num_queries: 2,
        num_keywords: 2,
        answer_size: 5,
        compute_ground_truth: false,
        ..WorkloadConfig::default()
    });
    for case in &cases {
        let expect = canonical_answers(&baseline, &case.keywords, "mi-backward");
        let cold = canonical_answers(&sharded, &case.keywords, "scatter-gather");
        let warm = canonical_answers(&sharded, &case.keywords, "scatter-gather");
        assert_eq!(expect, cold, "cold sharded run diverged for {case:?}");
        assert_eq!(cold, warm, "cache replay diverged for {case:?}");
    }
}
