//! Streaming/batch consistency: for every engine, draining the
//! [`AnswerStream`] must reproduce the legacy batch `search()` results
//! exactly (same signatures, same order), and lazy consumption must do no
//! more work than a full drain.

use banks::prelude::*;

fn dataset() -> DblpDataset {
    DblpDataset::generate(DblpConfig {
        num_authors: 150,
        num_papers: 300,
        num_conferences: 5,
        seed: 321,
        ..DblpConfig::default()
    })
}

fn engine_names() -> Vec<&'static str> {
    vec!["bidirectional", "si-backward", "mi-backward"]
}

#[test]
fn engines_stream_agree_with_batch() {
    let data = dataset();
    let graph = data.dataset.graph();
    let (prestige, _) = compute_pagerank(graph, PageRankConfig::default());
    let mut generator = WorkloadGenerator::new(&data, 77);
    let cases = generator.generate(&WorkloadConfig {
        num_queries: 4,
        num_keywords: 2,
        ..WorkloadConfig::default()
    });
    assert!(!cases.is_empty());

    let registry = EngineRegistry::with_default_engines();
    for case in &cases {
        let matches = KeywordMatches::resolve(graph, data.dataset.index(), &case.query());
        let params = SearchParams::with_top_k(25);
        for name in engine_names() {
            let engine = registry.create(name).expect("registered engine");

            let batch = engine.search(graph, &prestige, &matches, &params);

            let stream = engine.start(QueryContext::new(graph, &prestige, &matches, params));
            let streamed = drain(stream);

            assert_eq!(
                batch.signatures(),
                streamed.signatures(),
                "{name}: stream drain differs from batch on query {:?}",
                case.keywords
            );
            let batch_ranks: Vec<usize> = batch.answers.iter().map(|a| a.rank).collect();
            let stream_ranks: Vec<usize> = streamed.answers.iter().map(|a| a.rank).collect();
            assert_eq!(batch_ranks, stream_ranks, "{name}: ranks differ");
            assert_eq!(
                batch.stats.answers_output, streamed.stats.answers_output,
                "{name}: output counts differ"
            );
        }
    }
}

#[test]
fn take_one_explores_no_more_nodes_than_full_drain() {
    let data = dataset();
    let graph = data.dataset.graph();
    let (prestige, _) = compute_pagerank(graph, PageRankConfig::default());
    let mut generator = WorkloadGenerator::new(&data, 78);
    let cases = generator.generate(&WorkloadConfig {
        num_queries: 3,
        num_keywords: 3,
        ..WorkloadConfig::default()
    });

    let registry = EngineRegistry::with_default_engines();
    for case in &cases {
        let matches = KeywordMatches::resolve(graph, data.dataset.index(), &case.query());
        let params = SearchParams::with_top_k(25);
        for name in engine_names() {
            let engine = registry.create(name).expect("registered engine");

            let mut stream = engine.start(QueryContext::new(graph, &prestige, &matches, params));
            let first = stream.next();
            let explored_after_first = stream.stats().nodes_explored;
            drop(stream);

            let full = engine.search(graph, &prestige, &matches, &params);
            assert_eq!(
                first.is_some(),
                !full.answers.is_empty(),
                "{name}: stream and batch disagree on answer existence"
            );
            assert!(
                explored_after_first <= full.stats.nodes_explored,
                "{name}: take(1) explored {} nodes, full drain only {}",
                explored_after_first,
                full.stats.nodes_explored
            );
        }
    }
}

/// The acceptance bar for the bidirectional engine is strict: one `next()`
/// on a multi-keyword query must explore *strictly fewer* nodes than a
/// full drain.
#[test]
fn bidirectional_single_next_is_strictly_lazier() {
    let example = figure4_example(100, 48);
    let prestige = PrestigeVector::uniform_for(&example.graph);
    let params = SearchParams::with_top_k(10).emission(EmissionPolicy::Immediate);
    let engine = BidirectionalSearch::new();

    let mut stream = engine.start(QueryContext::new(
        &example.graph,
        &prestige,
        &example.matches,
        params,
    ));
    let first = stream.next().expect("the planted answer exists");
    assert!(first.tree.nodes().contains(&example.target_paper) || first.tree.score > 0.0);
    let explored_after_first = stream.stats().nodes_explored;
    assert!(!stream.is_exhausted());

    let full = engine.search(&example.graph, &prestige, &example.matches, &params);
    assert!(
        explored_after_first < full.stats.nodes_explored,
        "one next() explored {} nodes, full drain {}",
        explored_after_first,
        full.stats.nodes_explored
    );
}

#[test]
fn facade_builder_matches_manual_wiring() {
    let data = dataset();
    let graph = data.dataset.graph();
    let (prestige, _) = compute_pagerank(graph, PageRankConfig::default());
    let mut generator = WorkloadGenerator::new(&data, 79);
    let case = generator
        .generate(&WorkloadConfig {
            num_queries: 1,
            num_keywords: 2,
            ..WorkloadConfig::default()
        })
        .into_iter()
        .next()
        .expect("workload query");

    // Manual wiring (legacy style).
    let matches = KeywordMatches::resolve(graph, data.dataset.index(), &case.query());
    let params = SearchParams::with_top_k(15);
    let manual = BidirectionalSearch::new().search(graph, &prestige, &matches, &params);

    // The builder facade.
    let banks = Banks::open(graph)
        .with_prestige(prestige)
        .with_index(data.dataset.index().clone());
    let facade = banks.query_parsed(&case.query()).top_k(15).run();

    assert_eq!(manual.signatures(), facade.signatures());
}

#[test]
fn work_budget_streams_terminate() {
    let data = dataset();
    let graph = data.dataset.graph();
    let banks = Banks::open(graph).with_index(data.dataset.index().clone());
    let mut generator = WorkloadGenerator::new(&data, 80);
    let case = generator
        .generate(&WorkloadConfig {
            num_queries: 1,
            num_keywords: 2,
            ..WorkloadConfig::default()
        })
        .into_iter()
        .next()
        .expect("workload query");

    let session = banks
        .query_parsed(&case.query())
        .top_k(1000)
        .answer_work_budget(0);
    let mut stream = session.stream();
    let mut count = 0usize;
    while stream.next().is_some() {
        count += 1;
        assert!(count < 10_000, "budgeted stream failed to terminate");
    }
    assert!(stream.is_exhausted());
    assert!(
        stream.stats().truncated,
        "exhausted work budget must mark truncation"
    );
}
