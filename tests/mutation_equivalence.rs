//! Randomized mutate-vs-rebuild equivalence suite.
//!
//! The contract of the mutation-first data layer is that applying a
//! [`MutationBatch`] produces *exactly* the world a from-scratch rebuild of
//! the same final state would produce — adjacency rows, derived
//! backward-edge weights, keyword index and prestige included — so the
//! search engines cannot tell the difference.  This suite generates random
//! graphs and random op batches (valid and invalid ops mixed), maintains
//! an independent shadow model of the intended final state, and asserts:
//!
//! * structural equality (per-node metadata, degrees, out/in rows with
//!   bit-exact weights),
//! * **byte-identical query results** for all three engines, comparing the
//!   canonical JSON rendering of every ranked answer between the mutated
//!   snapshot chain and a snapshot rebuilt from scratch,
//! * index equivalence term by term over the whole vocabulary.

use banks::core::{json as corejson, Banks};
use banks::prelude::*;

/// Deterministic xorshift64* — no dependency, stable across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

const VOCAB: &[&str] = &[
    "database", "recovery", "keyword", "search", "graph", "locks", "stream", "index", "query",
    "prestige", "vldb", "banks",
];
const KINDS: &[&str] = &["author", "paper", "writes", "venue"];

/// Independent model of the intended final graph, updated with the same
/// semantics the mutation layer promises.
#[derive(Clone)]
struct Model {
    nodes: Vec<(String, String)>,
    edges: Vec<(u32, u32, f64)>,
}

impl Model {
    fn random(rng: &mut Rng) -> Self {
        let n = 10 + rng.below(20) as usize;
        let nodes: Vec<(String, String)> = (0..n)
            .map(|_| {
                (
                    KINDS[rng.below(KINDS.len() as u64) as usize].to_string(),
                    random_label(rng),
                )
            })
            .collect();
        let m = n + rng.below(2 * n as u64) as usize;
        let mut edges = Vec::new();
        for _ in 0..m {
            let u = rng.below(n as u64) as u32;
            let v = rng.below(n as u64) as u32;
            if u != v {
                edges.push((u, v, 1.0));
            }
        }
        Model { nodes, edges }
    }

    fn rebuild(&self) -> DataGraph {
        let mut b = GraphBuilder::new();
        for (kind, label) in &self.nodes {
            b.add_node(kind, label.clone());
        }
        for (u, v, w) in &self.edges {
            b.add_edge_weighted(NodeId(*u), NodeId(*v), *w)
                .expect("model edges are valid");
        }
        b.build_default()
    }
}

fn random_label(rng: &mut Rng) -> String {
    let a = VOCAB[rng.below(VOCAB.len() as u64) as usize];
    let b = VOCAB[rng.below(VOCAB.len() as u64) as usize];
    format!("{a} {b}")
}

/// Generates one random batch and applies its intended effect to `model`
/// (mirroring the documented semantics: RemoveEdge / SetWeight hit every
/// parallel edge; invalid ops — also generated — change nothing).
fn random_batch(rng: &mut Rng, model: &mut Model) -> MutationBatch {
    let mut batch = MutationBatch::new();
    let ops = 8 + rng.below(10);
    for _ in 0..ops {
        let n = model.nodes.len() as u64;
        match rng.below(12) {
            0 | 1 => {
                let kind = KINDS[rng.below(KINDS.len() as u64) as usize].to_string();
                let label = random_label(rng);
                batch = batch.add_node(kind.clone(), label.clone());
                model.nodes.push((kind, label));
            }
            2..=4 => {
                let u = rng.below(n) as u32;
                let v = rng.below(n) as u32;
                if u == v {
                    // generated self-loop: must be rejected, model untouched
                    batch = batch.add_edge(NodeId(u), NodeId(v));
                } else if rng.below(2) == 0 {
                    let w = 0.5 + rng.below(16) as f64 / 4.0;
                    batch = batch.add_edge_weighted(NodeId(u), NodeId(v), w);
                    model.edges.push((u, v, w));
                } else {
                    batch = batch.add_edge(NodeId(u), NodeId(v));
                    model.edges.push((u, v, 1.0));
                }
            }
            5 | 6 => {
                if model.edges.is_empty() {
                    continue;
                }
                let (u, v, _) = model.edges[rng.below(model.edges.len() as u64) as usize];
                batch = batch.remove_edge(NodeId(u), NodeId(v));
                model.edges.retain(|(a, b, _)| !(*a == u && *b == v));
            }
            7 | 8 => {
                let node = rng.below(n) as u32;
                let label = random_label(rng);
                batch = batch.set_label(NodeId(node), label.clone());
                model.nodes[node as usize].1 = label;
            }
            9 | 10 => {
                if model.edges.is_empty() {
                    continue;
                }
                let (u, v, _) = model.edges[rng.below(model.edges.len() as u64) as usize];
                let w = 0.25 + rng.below(20) as f64 / 4.0;
                batch = batch.set_weight(NodeId(u), NodeId(v), w);
                for edge in &mut model.edges {
                    if edge.0 == u && edge.1 == v {
                        edge.2 = w;
                    }
                }
            }
            _ => {
                // deliberately invalid ops: out-of-bounds endpoint or a
                // missing edge — must be rejected without side effects
                match rng.below(3) {
                    0 => batch = batch.add_edge(NodeId(rng.below(n) as u32), NodeId(u32::MAX)),
                    1 => batch = batch.set_label(NodeId(n as u32 + 100), "ghost"),
                    _ => {
                        batch = batch.remove_edge(NodeId(n as u32 + 7), NodeId(rng.below(n) as u32))
                    }
                }
            }
        }
    }
    batch
}

fn assert_graphs_identical(mutated: &DataGraph, rebuilt: &DataGraph, ctx: &str) {
    assert_eq!(mutated.num_nodes(), rebuilt.num_nodes(), "{ctx}: num_nodes");
    assert_eq!(
        mutated.num_original_edges(),
        rebuilt.num_original_edges(),
        "{ctx}: num_original_edges"
    );
    assert_eq!(
        mutated.num_directed_edges(),
        rebuilt.num_directed_edges(),
        "{ctx}: num_directed_edges"
    );
    for u in mutated.nodes() {
        assert_eq!(
            mutated.node_kind_name(u),
            rebuilt.node_kind_name(u),
            "{ctx}: kind of {u:?}"
        );
        assert_eq!(
            mutated.node_label(u),
            rebuilt.node_label(u),
            "{ctx}: label of {u:?}"
        );
        assert_eq!(
            mutated.forward_indegree(u),
            rebuilt.forward_indegree(u),
            "{ctx}: forward indegree of {u:?}"
        );
        assert_eq!(
            mutated.forward_outdegree(u),
            rebuilt.forward_outdegree(u),
            "{ctx}: forward outdegree of {u:?}"
        );
        let a: Vec<(u32, u64, EdgeKind)> = mutated
            .out_edges(u)
            .map(|e| (e.to.0, e.weight.to_bits(), e.kind))
            .collect();
        let b: Vec<(u32, u64, EdgeKind)> = rebuilt
            .out_edges(u)
            .map(|e| (e.to.0, e.weight.to_bits(), e.kind))
            .collect();
        assert_eq!(a, b, "{ctx}: out row of {u:?}");
        let a: Vec<(u32, u64, EdgeKind)> = mutated
            .in_edges(u)
            .map(|e| (e.from.0, e.weight.to_bits(), e.kind))
            .collect();
        let b: Vec<(u32, u64, EdgeKind)> = rebuilt
            .in_edges(u)
            .map(|e| (e.from.0, e.weight.to_bits(), e.kind))
            .collect();
        assert_eq!(a, b, "{ctx}: in row of {u:?}");
    }
}

/// Runs the same query through one engine on both worlds and asserts the
/// rendered answers are byte-identical.
fn assert_queries_identical(
    mutated: &GraphSnapshot,
    rebuilt: &GraphSnapshot,
    keywords: &[String],
    ctx: &str,
) {
    for engine in ["bidirectional", "si-backward", "mi-backward"] {
        let run = |snap: &GraphSnapshot| -> Vec<String> {
            let banks = Banks::open(snap.graph())
                .with_prestige(snap.prestige().clone())
                .with_index(snap.index().clone());
            banks
                .query(keywords.iter().cloned())
                .top_k(5)
                .engine(engine)
                .run()
                .answers
                .iter()
                // rank + canonical tree rendering: everything about the
                // answer except the wall-clock timing fields, which no two
                // runs (even of the same graph) share
                .map(|a| format!("{}:{}", a.rank, corejson::answer_tree(&a.tree)))
                .collect()
        };
        let a = run(mutated);
        let b = run(rebuilt);
        assert_eq!(
            a, b,
            "{ctx}: engine {engine} answers diverged for {keywords:?}"
        );
    }
}

#[test]
fn randomized_batches_match_a_from_scratch_rebuild() {
    for seed in 1..=6u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9E3779B97F4A7C15));
        let mut model = Model::random(&mut rng);
        // the mutated world advances by deltas; the rebuilt world is
        // reconstructed from the shadow model every round
        let mut snapshot = GraphSnapshot::with_defaults(model.rebuild());
        assert_graphs_identical(snapshot.graph(), &model.rebuild(), "seed setup");

        for round in 0..3 {
            let ctx = format!("seed {seed} round {round}");
            let batch = random_batch(&mut rng, &mut model);
            let (next, outcome) = snapshot.apply_batch(&batch);
            assert!(
                outcome.accepted() + outcome.rejected() == batch.len(),
                "{ctx}: every op must be accounted for"
            );
            snapshot = next;

            let rebuilt = GraphSnapshot::with_defaults(model.rebuild());
            assert_graphs_identical(snapshot.graph(), rebuilt.graph(), &ctx);

            // index equivalence over the whole vocabulary (plus relation
            // names, which double as keywords)
            for term in VOCAB.iter().chain(KINDS.iter()) {
                assert_eq!(
                    snapshot.index().matching_nodes(snapshot.graph(), term),
                    rebuilt.index().matching_nodes(rebuilt.graph(), term),
                    "{ctx}: matches for {term:?}"
                );
            }
            assert_eq!(
                snapshot.index().num_terms(),
                rebuilt.index().num_terms(),
                "{ctx}: vocabulary size"
            );

            // byte-identical answers across all three engines
            for _ in 0..3 {
                let keywords: Vec<String> = (0..2)
                    .map(|_| VOCAB[rng.below(VOCAB.len() as u64) as usize].to_string())
                    .collect();
                assert_queries_identical(&snapshot, &rebuilt, &keywords, &ctx);
            }
        }
    }
}

/// The indegree-prestige chain must match a full recompute bit for bit
/// through arbitrary batches (the uniform default is covered above; this
/// exercises the incremental backend through the same randomized stream).
#[test]
fn randomized_batches_keep_indegree_prestige_exact() {
    use banks::prestige::compute_indegree_prestige;
    for seed in 20..=23u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0xA24BAED4963EE407));
        let mut model = Model::random(&mut rng);
        let mut snapshot = GraphSnapshot::with_indegree_prestige(model.rebuild());
        for round in 0..3 {
            let batch = random_batch(&mut rng, &mut model);
            let (next, _) = snapshot.apply_batch(&batch);
            snapshot = next;
            let full = compute_indegree_prestige(snapshot.graph());
            assert_eq!(snapshot.prestige().len(), full.len());
            for (i, (a, b)) in snapshot
                .prestige()
                .values()
                .iter()
                .zip(full.values())
                .enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "seed {seed} round {round}: prestige of node {i}"
                );
            }
        }
    }
}

/// `GraphStore` compaction must be invisible to queries: same epoch, same
/// rows, same answers.
#[test]
fn compaction_is_query_invisible() {
    let mut rng = Rng::new(0xDEADBEEF);
    let mut model = Model::random(&mut rng);
    let mut store = GraphStore::new(model.rebuild());
    for _ in 0..3 {
        let batch = random_batch(&mut rng, &mut model);
        store.apply(&batch);
    }
    let before = store.current().clone();
    store.compact();
    assert_eq!(store.epoch(), before.epoch(), "contents identical");
    assert!(!store.current().has_overlay());
    assert_graphs_identical(store.current(), &before, "compaction");
    assert_graphs_identical(store.current(), &model.rebuild(), "compaction vs model");
}
