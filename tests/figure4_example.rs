//! Integration test for the paper's Figure 4 walk-through (experiment E1).
//!
//! The paper argues that on the example graph — a frequent keyword matching
//! 100 paper nodes, two rare author keywords, one author with a large
//! fan-in — Backward expanding search explores on the order of 150 nodes
//! before producing the answer, while Bidirectional search explores only a
//! handful.  We check the qualitative claims: both algorithms find the
//! planted answer, and Bidirectional explores a small fraction of the nodes
//! the backward baselines explore.

use banks::prelude::*;

fn run(
    engine: &dyn SearchEngine,
    example: &banks::datagen::figure4::Figure4Example,
) -> SearchOutcome {
    let prestige = PrestigeVector::uniform_for(&example.graph);
    engine.search(
        &example.graph,
        &prestige,
        &example.matches,
        &SearchParams::with_top_k(1),
    )
}

#[test]
fn all_engines_find_the_planted_answer() {
    let example = figure4_example(100, 48);
    for engine in [
        Box::new(BidirectionalSearch::new()) as Box<dyn SearchEngine>,
        Box::new(SingleIteratorBackwardSearch::new()),
        Box::new(BackwardExpandingSearch::new()),
    ] {
        let outcome = run(engine.as_ref(), &example);
        assert!(
            !outcome.answers.is_empty(),
            "{} found no answers on the Figure 4 example",
            engine.name()
        );
        let best = &outcome.answers[0].tree;
        let nodes = best.nodes();
        assert!(
            nodes.contains(&example.james),
            "{}: answer misses James",
            engine.name()
        );
        assert!(
            nodes.contains(&example.john),
            "{}: answer misses John",
            engine.name()
        );
        assert!(
            nodes.contains(&example.target_paper),
            "{}: answer misses the co-authored database paper",
            engine.name()
        );
        // the answer is a valid tree w.r.t. the origin sets
        let origin_sets: Vec<Vec<NodeId>> = (0..example.matches.num_keywords())
            .map(|i| example.matches.origin_set(i).to_vec())
            .collect();
        best.validate(&example.graph, &origin_sets, 8)
            .expect("valid answer tree");
    }
}

#[test]
fn bidirectional_explores_far_fewer_nodes_than_backward() {
    let example = figure4_example(100, 48);
    let bidir = run(&BidirectionalSearch::new(), &example);
    let si = run(&SingleIteratorBackwardSearch::new(), &example);
    let mi = run(&BackwardExpandingSearch::new(), &example);

    assert!(
        bidir.stats.nodes_explored * 3 <= si.stats.nodes_explored,
        "expected Bidirectional ({}) to explore at most a third of SI-Backward ({})",
        bidir.stats.nodes_explored,
        si.stats.nodes_explored
    );
    assert!(
        bidir.stats.nodes_explored * 3 <= mi.stats.nodes_explored,
        "expected Bidirectional ({}) to explore at most a third of MI-Backward ({})",
        bidir.stats.nodes_explored,
        mi.stats.nodes_explored
    );
    // The backward baselines pop (at least) every keyword node before they
    // can reach the confluence, i.e. on the order of the 100 database papers.
    assert!(si.stats.nodes_explored >= 100);
}

#[test]
fn backward_baseline_explores_roughly_the_paper_scale() {
    // The paper: "Backward expanding search would explore at least 151 nodes
    // (and touch 250 nodes)"; our graph has 151 nodes in total and the
    // backward baselines explore the vast majority of them.
    let example = figure4_example(100, 48);
    let si = run(&SingleIteratorBackwardSearch::new(), &example);
    assert!(
        si.stats.nodes_explored as f64 >= 0.6 * example.graph.num_nodes() as f64,
        "SI-Backward explored only {} of {} nodes",
        si.stats.nodes_explored,
        example.graph.num_nodes()
    );
}

#[test]
fn proportions_scale_with_the_example_parameters() {
    // A smaller instance of the same scenario keeps the qualitative gap.
    let example = figure4_example(30, 12);
    let bidir = run(&BidirectionalSearch::new(), &example);
    let si = run(&SingleIteratorBackwardSearch::new(), &example);
    assert!(!bidir.answers.is_empty());
    assert!(!si.answers.is_empty());
    assert!(bidir.stats.nodes_explored < si.stats.nodes_explored);
}
