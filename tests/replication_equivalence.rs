//! Randomized leader/follower replication-equivalence suite.
//!
//! The replication contract is that a follower serves the *leader's
//! world*: at every epoch both sides share, every engine must stream the
//! **byte-identical** canonical JSON answer sequence, and the graphs must
//! carry the identical signature.  This suite runs a real HTTP leader
//! ([`Server`]) and a real follower client ([`Follower`]) end to end:
//!
//! * random mutation chains (including `remove_node`) applied on the
//!   leader, with the follower converging and compared **at every shared
//!   epoch** — not just at the end;
//! * a follower "kill -9" mid-chain (client and service dropped with no
//!   clean shutdown), then recovery from the follower's own data
//!   directory and stream resumption from the recovered epoch;
//! * a forced snapshot re-bootstrap: the leader checkpoints while the
//!   follower is down, truncating the WAL past the follower's position,
//!   so resumption is impossible and the follower must re-seed itself
//!   from `GET /replication/snapshot`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use banks::core::json as corejson;
use banks::prelude::*;

/// Deterministic xorshift64* — no dependency, stable across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

const VOCAB: &[&str] = &[
    "database", "replica", "keyword", "search", "graph", "leader", "stream", "index", "query",
    "prestige", "vldb", "banks",
];
const KINDS: &[&str] = &["author", "paper", "writes", "venue"];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("banks-repl-equiv-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn random_label(rng: &mut Rng) -> String {
    let a = VOCAB[rng.below(VOCAB.len() as u64) as usize];
    let b = VOCAB[rng.below(VOCAB.len() as u64) as usize];
    format!("{a} {b}")
}

fn random_graph(rng: &mut Rng) -> DataGraph {
    let mut b = GraphBuilder::new();
    let n = 24 + rng.below(24) as usize;
    let ids: Vec<NodeId> = (0..n)
        .map(|_| {
            b.add_node(
                KINDS[rng.below(KINDS.len() as u64) as usize],
                random_label(rng),
            )
        })
        .collect();
    for _ in 0..(2 * n) {
        let u = ids[rng.below(n as u64) as usize];
        let v = ids[rng.below(n as u64) as usize];
        if u != v {
            let w = 0.5 + rng.below(8) as f64 / 2.0;
            b.add_edge_weighted(u, v, w).unwrap();
        }
    }
    b.build_default()
}

/// What a follower boots with: deliberately unrelated data the first
/// bootstrap must replace wholesale.
fn boot_graph(rng: &mut Rng) -> DataGraph {
    let mut b = GraphBuilder::new();
    b.add_node("boot", random_label(rng));
    b.build_default()
}

/// A random batch over the current node count: adds, relabels, reweights,
/// removals, and the occasional invalid op (rejected identically on both
/// sides — rejection parity is part of the replicated state).
fn random_batch(rng: &mut Rng, num_nodes: u32) -> MutationBatch {
    let mut batch = MutationBatch::new();
    let mut n = num_nodes as u64;
    for _ in 0..(3 + rng.below(5)) {
        match rng.below(12) {
            0..=3 => {
                batch = batch.add_node(
                    KINDS[rng.below(KINDS.len() as u64) as usize],
                    random_label(rng),
                );
                n += 1;
            }
            4..=6 => {
                let u = rng.below(n) as u32;
                let v = rng.below(n) as u32;
                batch = batch.add_edge(NodeId(u), NodeId(v));
            }
            7 | 8 => {
                let node = rng.below(n) as u32;
                batch = batch.set_label(NodeId(node), random_label(rng));
            }
            9 => {
                let u = rng.below(n) as u32;
                let v = rng.below(n) as u32;
                let w = 0.25 + rng.below(12) as f64 / 4.0;
                batch = batch.set_weight(NodeId(u), NodeId(v), w);
            }
            10 => {
                batch = batch.remove_node(NodeId(rng.below(n) as u32));
            }
            _ => {
                // invalid on purpose: an endpoint far out of range
                batch = batch.add_edge(NodeId(n as u32 + 500), NodeId(rng.below(n) as u32));
            }
        }
    }
    batch
}

/// Canonical JSON of every ranked answer, per engine — byte equality is
/// the strongest "same world" check the query surface offers.
fn engine_fingerprints(service: &Service, queries: &[String]) -> Vec<String> {
    let mut fingerprints = Vec::new();
    for engine in service.engine_names() {
        for query in queries {
            let spec = QuerySpec::parse(query).engine(engine).top_k(6);
            let (outcome, _) = service.submit(spec).unwrap().wait();
            let rendered: Vec<String> = outcome
                .answers
                .iter()
                .map(|a| format!("{}:{}", a.rank, corejson::answer_tree(&a.tree)))
                .collect();
            fingerprints.push(format!("{engine}: {}", rendered.join(",")));
        }
    }
    fingerprints
}

/// One node's identity in the signature: kind, label, out-edges as
/// `(target, weight bits)`.
type NodeSignature = (String, String, Vec<(u32, u64)>);

fn graph_signature(g: &DataGraph) -> Vec<NodeSignature> {
    g.nodes()
        .map(|u| {
            (
                g.node_kind_name(u).to_string(),
                g.node_label(u).to_string(),
                g.out_edges(u)
                    .map(|e| (e.to.0, e.weight.to_bits()))
                    .collect(),
            )
        })
        .collect()
}

fn wait_for(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    pred()
}

/// Waits for the follower to reach the leader's epoch, then asserts full
/// world equality: epoch, graph signature, per-engine answer bytes.
fn assert_converged(leader: &Service, follower: &Service, queries: &[String], ctx: &str) {
    assert!(
        wait_for(Duration::from_secs(15), || follower.epoch()
            == leader.epoch()),
        "{ctx}: follower stuck at {} while the leader serves {}",
        follower.epoch(),
        leader.epoch()
    );
    assert_eq!(
        graph_signature(follower.snapshot().graph()),
        graph_signature(leader.snapshot().graph()),
        "{ctx}: graph signature"
    );
    assert_eq!(
        engine_fingerprints(follower, queries),
        engine_fingerprints(leader, queries),
        "{ctx}: answers must be byte-identical on every engine"
    );
}

#[test]
fn random_mutation_chains_replicate_byte_identically_at_every_epoch() {
    for seed in 1..=4u64 {
        let mut rng = Rng::new(seed * 0x9E37_79B9);
        let leader_dir = tmp_dir(&format!("lead-{seed}"));
        let follower_dir = tmp_dir(&format!("foll-{seed}"));
        let queries: Vec<String> = (0..3).map(|_| random_label(&mut rng)).collect();

        let leader = Arc::new(
            Service::builder(random_graph(&mut rng))
                .workers(2)
                .persistence(&leader_dir, FsyncPolicy::Always)
                .build(),
        );
        leader.set_replication_role(ReplicationRole::Leader);
        leader.checkpoint().unwrap();
        let server = Server::builder(Arc::clone(&leader)).spawn().unwrap();
        let url = format!("http://{}", server.local_addr());

        let follower = Arc::new(
            Service::builder(boot_graph(&mut rng))
                .workers(2)
                .persistence(&follower_dir, FsyncPolicy::Always)
                .build(),
        );
        let client = Follower::start(Arc::clone(&follower), &url).unwrap();
        assert_converged(&leader, &follower, &queries, &format!("seed {seed} boot"));

        // Phase 1: converge and compare at EVERY epoch the chain produces.
        for step in 0..(2 + rng.below(3)) {
            let nodes = leader.snapshot().graph().num_nodes() as u32;
            let report = leader.apply_mutations(&random_batch(&mut rng, nodes));
            assert!(report.persist_error.is_none(), "seed {seed}: WAL append");
            assert_converged(
                &leader,
                &follower,
                &queries,
                &format!("seed {seed} step {step}"),
            );
        }

        // Phase 2: kill the follower (no clean shutdown of its state) and
        // keep mutating the leader while it is gone.
        let downtime_epoch = follower.epoch();
        drop(client);
        drop(follower);
        for _ in 0..2 {
            let nodes = leader.snapshot().graph().num_nodes() as u32;
            let report = leader.apply_mutations(&random_batch(&mut rng, nodes));
            assert!(report.persist_error.is_none(), "seed {seed}: WAL append");
        }
        // Half the seeds also force the bootstrap path: a leader
        // checkpoint truncates the WAL, so the revived follower's cursor
        // is unreachable by replay and it must re-seed from the snapshot.
        let forced_bootstrap = seed % 2 == 0;
        if forced_bootstrap {
            leader.checkpoint().unwrap();
            assert!(
                downtime_epoch < leader.durability().last_checkpoint_epoch,
                "seed {seed}: truncation must strand the follower"
            );
        }

        // Phase 3: revive the follower from its own directory — recovery
        // restores the replicated epoch — and let it converge again.
        let follower = Arc::new(
            Service::builder(boot_graph(&mut rng))
                .workers(2)
                .persistence(&follower_dir, FsyncPolicy::Always)
                .build(),
        );
        assert_eq!(
            follower.epoch(),
            downtime_epoch,
            "seed {seed}: crash recovery must land on the replicated epoch"
        );
        let client = Follower::start(Arc::clone(&follower), &url).unwrap();
        assert_converged(
            &leader,
            &follower,
            &queries,
            &format!("seed {seed} revived (forced_bootstrap={forced_bootstrap})"),
        );
        if forced_bootstrap {
            let bootstraps = follower
                .events()
                .since(0, 10_000)
                .iter()
                .filter(|e| e.kind == "replication-bootstrap")
                .count();
            assert!(
                bootstraps >= 1,
                "seed {seed}: the stranded follower must have re-bootstrapped"
            );
        }

        // Phase 4: one more live chain after recovery, checked per epoch.
        for step in 0..2 {
            let nodes = leader.snapshot().graph().num_nodes() as u32;
            let report = leader.apply_mutations(&random_batch(&mut rng, nodes));
            assert!(report.persist_error.is_none(), "seed {seed}: WAL append");
            assert_converged(
                &leader,
                &follower,
                &queries,
                &format!("seed {seed} post-recovery step {step}"),
            );
        }

        drop(client);
        server.shutdown();
        std::fs::remove_dir_all(&leader_dir).unwrap();
        std::fs::remove_dir_all(&follower_dir).unwrap();
    }
}
