//! Property-based tests over the search engines: on random graphs and
//! random keyword assignments, every emitted answer must satisfy the answer
//! model of Section 2, and the three engines must agree on the set of
//! reported answers when allowed to exhaust the graph.

use banks::prelude::*;
use proptest::prelude::*;

/// A random small graph plus 2–3 random disjoint keyword sets.
fn arb_instance() -> impl Strategy<Value = (usize, Vec<(u32, u32)>, Vec<Vec<u32>>)> {
    (4usize..20).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 3..(n * 2));
        let keywords = (2usize..=3).prop_flat_map(move |k| {
            proptest::collection::vec(proptest::collection::vec(0..n as u32, 1..4), k..=k)
        });
        (Just(n), edges, keywords)
    })
}

fn build(n: usize, edges: &[(u32, u32)]) -> DataGraph {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_node("node", format!("v{i}"));
    }
    for (u, v) in edges {
        if u != v {
            b.add_edge(NodeId(*u), NodeId(*v)).unwrap();
        }
    }
    b.build_default()
}

fn to_matches(keywords: &[Vec<u32>]) -> KeywordMatches {
    KeywordMatches::from_sets(
        keywords
            .iter()
            .enumerate()
            .map(|(i, set)| (format!("k{i}"), set.iter().map(|n| NodeId(*n)).collect())),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every emitted answer is a valid, minimal tree within dmax, and no
    /// duplicate node sets are emitted.
    #[test]
    fn answers_satisfy_the_answer_model((n, edges, keywords) in arb_instance()) {
        let graph = build(n, &edges);
        let matches = to_matches(&keywords);
        let prestige = PrestigeVector::uniform_for(&graph);
        let params = SearchParams::with_top_k(16);
        let origin_sets: Vec<Vec<NodeId>> = (0..matches.num_keywords())
            .map(|i| matches.origin_set(i).to_vec())
            .collect();

        for engine in [
            Box::new(BidirectionalSearch::new()) as Box<dyn SearchEngine>,
            Box::new(SingleIteratorBackwardSearch::new()),
            Box::new(BackwardExpandingSearch::new()),
        ] {
            let outcome = engine.search(&graph, &prestige, &matches, &params);
            let mut signatures = Vec::new();
            for answer in &outcome.answers {
                prop_assert!(answer.tree.validate(&graph, &origin_sets, params.dmax).is_ok(),
                    "{}: {:?}", engine.name(),
                    answer.tree.validate(&graph, &origin_sets, params.dmax));
                prop_assert!(answer.tree.is_minimal());
                prop_assert!(answer.tree.score.is_finite() && answer.tree.score > 0.0);
                signatures.push(answer.tree.signature());
            }
            let before = signatures.len();
            signatures.sort();
            signatures.dedup();
            prop_assert_eq!(before, signatures.len(), "{} emitted duplicates", engine.name());
            prop_assert!(outcome.stats.answers_output == outcome.answers.len());
        }
    }

    /// With a top-k large enough to exhaust the graph, Bidirectional and
    /// SI-Backward agree on whether answers exist and on the best achievable
    /// answer score, and each engine's best answer is also reported by the
    /// other.  (The complete answer *lists* may differ slightly: the paper's
    /// single-iterator design emits alternative rotations of the same
    /// connection depending on exploration order, see Section 4.6.)
    #[test]
    fn bidirectional_and_si_backward_agree_when_exhaustive((n, edges, keywords) in arb_instance()) {
        let graph = build(n, &edges);
        let matches = to_matches(&keywords);
        let prestige = PrestigeVector::uniform_for(&graph);
        let params = SearchParams::with_top_k(10_000);

        let a = BidirectionalSearch::new().search(&graph, &prestige, &matches, &params);
        let b = SingleIteratorBackwardSearch::new().search(&graph, &prestige, &matches, &params);
        prop_assert_eq!(a.answers.is_empty(), b.answers.is_empty());
        if a.answers.is_empty() {
            return Ok(());
        }
        // Output order (and therefore which tree of a duplicate-signature
        // pair gets reported) is approximate in both engines, so best scores
        // may differ slightly; they must agree within a factor of two and
        // every best answer of one engine must connect nodes the other
        // engine also connects (signature coverage by supersets).
        let best_a = a.best_score().unwrap();
        let best_b = b.best_score().unwrap();
        let ratio = best_a.max(best_b) / best_a.min(best_b);
        prop_assert!(ratio < 2.0, "best scores differ too much: {} vs {}", best_a, best_b);

        let covered = |sig: &Vec<NodeId>, outcome: &SearchOutcome| {
            outcome.answers.iter().any(|x| sig.iter().all(|n| x.tree.nodes().contains(n)))
                || outcome.answers.iter().any(|x| x.tree.nodes().iter().all(|n| sig.contains(n)))
        };
        let top_a: Vec<_> = a.answers.iter().filter(|x| (x.tree.score - best_a).abs() < 1e-9)
            .map(|x| x.tree.signature()).collect();
        for sig in &top_a {
            prop_assert!(covered(sig, &b), "SI-Backward misses a best answer {:?}", sig);
        }
        let top_b: Vec<_> = b.answers.iter().filter(|x| (x.tree.score - best_b).abs() < 1e-9)
            .map(|x| x.tree.signature()).collect();
        for sig in &top_b {
            prop_assert!(covered(sig, &a), "Bidirectional misses a best answer {:?}", sig);
        }
    }

    /// Output scores are consistent with recomputation from the graph.
    #[test]
    fn scores_match_recomputation((n, edges, keywords) in arb_instance()) {
        let graph = build(n, &edges);
        let matches = to_matches(&keywords);
        let prestige = PrestigeVector::uniform_for(&graph);
        let params = SearchParams::with_top_k(8);
        let model = params.score_model();

        let outcome = BidirectionalSearch::new().search(&graph, &prestige, &matches, &params);
        for answer in &outcome.answers {
            let rebuilt = AnswerTree::new(
                answer.tree.root,
                answer.tree.paths.clone(),
                &graph,
                &prestige,
                &model,
            );
            prop_assert!((rebuilt.score - answer.tree.score).abs() < 1e-9);
            prop_assert!((rebuilt.aggregate_edge_weight - answer.tree.aggregate_edge_weight).abs() < 1e-9);
        }
    }
}
