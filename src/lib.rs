//! # banks — Bidirectional Expansion for Keyword Search on Graph Databases
//!
//! A from-scratch Rust reproduction of Kacholia et al., *Bidirectional
//! Expansion For Keyword Search on Graph Databases* (VLDB 2005, the
//! "BANKS-II" system).
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`graph`] — the weighted directed data-graph substrate,
//! * [`textindex`] — the keyword index and query model,
//! * [`prestige`] — node-prestige computation (biased PageRank),
//! * [`relational`] — the in-memory relational engine, graph extraction and
//!   the Sparse candidate-network baseline,
//! * [`datagen`] — synthetic DBLP/IMDB/Patents datasets and query workloads,
//! * [`core`] — the search engines behind the streaming query API:
//!   Bidirectional expansion, Backward expansion (multi- and
//!   single-iterator), answer trees and ranking,
//! * [`service`] — the concurrent query service: a worker-pool executor
//!   with cancellation tokens, an LRU result cache keyed by graph epoch,
//!   priority scheduling, per-tenant admission quotas and deterministic
//!   work-based deadlines,
//! * [`persist`] — durable persistence: epoch-versioned binary snapshots,
//!   a mutation write-ahead log and crash recovery (snapshot + WAL replay),
//! * [`server`] — the HTTP/SSE network front-end over the service:
//!   hand-rolled HTTP/1.1 on `std::net`, answers streamed as server-sent
//!   events, structured JSON errors, graceful drain,
//! * [`replica`] — the read-replica follower: bootstraps from a leader's
//!   snapshot over HTTP, tails its mutation WAL as an SSE stream, and
//!   applies records through the service's replication path so follower
//!   answers are byte-identical to the leader's at every shared epoch.
//!
//! ## Quick start
//!
//! The [`core::Banks`] builder owns keyword resolution, prestige and engine
//! selection; searches run in batch or as lazy answer streams:
//!
//! ```
//! use banks::prelude::*;
//!
//! // Build a tiny graph: a `writes` tuple connecting an author and a paper.
//! let mut builder = GraphBuilder::new();
//! let author = builder.add_node("author", "Jim Gray");
//! let paper = builder.add_node("paper", "Granularity of locks and degrees of consistency");
//! let writes = builder.add_node("writes", "w0");
//! builder.add_edge(writes, author).unwrap();
//! builder.add_edge(writes, paper).unwrap();
//! let graph = builder.build_default();
//!
//! // Open the graph and query it: the facade indexes node labels, applies
//! // uniform prestige, and runs Bidirectional search by default.
//! let banks = Banks::open(&graph);
//! let session = banks.query(["gray", "locks"]).top_k(10);
//!
//! // Batch: run to completion.
//! let outcome = session.run();
//! assert_eq!(outcome.answers[0].tree.root, writes);
//!
//! // Streaming: answers arrive lazily — stop as soon as you have enough.
//! let first = session.stream().next().unwrap();
//! assert_eq!(first.tree.root, writes);
//!
//! // Engines are selected by registry name.
//! let baseline = session.stream();
//! assert_eq!(baseline.engine_name(), "Bidirectional");
//! let outcome_si = banks.query(["gray", "locks"]).engine("si-backward").run();
//! assert_eq!(outcome_si.answers[0].tree.root, writes);
//! ```
//!
//! ## Serving many queries at once
//!
//! For concurrent traffic, hand the graph to the [`service::Service`]
//! worker pool instead of querying on the caller's thread:
//!
//! ```
//! use banks::prelude::*;
//!
//! let mut builder = GraphBuilder::new();
//! let author = builder.add_node("author", "Jim Gray");
//! let paper = builder.add_node("paper", "Granularity of locks");
//! let writes = builder.add_node("writes", "w0");
//! builder.add_edge(writes, author).unwrap();
//! builder.add_edge(writes, paper).unwrap();
//!
//! let service = Service::builder(builder.build_default())
//!     .workers(4)
//!     .cache_capacity(256)
//!     .build();
//! let handle = service.submit(QuerySpec::parse("gray locks")).unwrap();
//! let (outcome, result) = handle.wait();
//! assert_eq!(outcome.answers[0].tree.root, writes);
//! assert!(!result.cache_hit); // a resubmission would hit the cache
//! ```

pub use banks_core as core;
pub use banks_datagen as datagen;
pub use banks_graph as graph;
pub use banks_persist as persist;
pub use banks_prestige as prestige;
pub use banks_relational as relational;
pub use banks_replica as replica;
pub use banks_server as server;
pub use banks_service as service;
pub use banks_textindex as textindex;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use banks_core::{
        build_label_index, drain, AnswerStream, AnswerTree, BackwardExpandingSearch, Banks,
        BidirectionalConfig, BidirectionalSearch, CacheKey, CancelToken, EdgeScoreCombiner,
        EmissionPolicy, EngineRegistry, GroundTruth, QueryContext, QueryCost, QuerySession,
        RankedAnswer, ResultCache, ScatterGatherSearch, ScoreModel, SearchEngine, SearchOutcome,
        SearchParams, SearchStats, SingleIteratorBackwardSearch, UnknownEngine,
    };
    pub use banks_datagen::{
        figure4_example, DblpConfig, DblpDataset, ImdbConfig, ImdbDataset, KeywordCategory,
        PatentsConfig, PatentsDataset, QueryCase, WorkloadConfig, WorkloadGenerator,
    };
    pub use banks_graph::{
        BatchOutcome, DataGraph, EdgeKind, ExpansionPolicy, GraphBuilder, GraphMutation,
        GraphPartition, GraphStats, GraphStore, MutationBatch, NodeId, ShardSpec, ShardStats,
    };
    pub use banks_persist::{read_snapshot, write_snapshot, PersistentStore, SnapshotContents};
    pub use banks_prestige::{
        compute_pagerank, refresh_pagerank, IndegreePrestige, PageRankConfig, PrestigeVector,
    };
    pub use banks_relational::{Database, DatabaseSchema, GraphExtraction, SparseSearch, TupleId};
    pub use banks_replica::Follower;
    pub use banks_server::Server;
    pub use banks_service::{
        DurabilityStatus, Event, EventLevel, EventLog, FsyncPolicy, GraphSnapshot, Health,
        MutationReport, PersistError, PersistOptions, Priority, QueryEvent, QueryHandle, QueryId,
        QueryResult, QuerySpec, QueueWaitSummary, ReplicationRole, ReplicationStatus, Service,
        ServiceBuilder, ServiceMetrics, ShardSet, SloReport, SloRow, SloSpec, SubmitError,
        TenantMetrics, TimeSeriesRing,
    };
    pub use banks_textindex::{IndexBuilder, InvertedIndex, KeywordMatches, Query, Tokenizer};
}
