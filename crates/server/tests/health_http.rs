//! Loopback tests for the judgment surface: `/debug/slo`, the structured
//! event endpoints (JSON page + live SSE tail with `Last-Event-ID`
//! resume), resumable `/query` answer streams, and the end-to-end
//! acceptance path — an induced latency regression flips `/healthz` via
//! burn rate and the paired alert events flow out over HTTP.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use banks_graph::{DataGraph, GraphBuilder};
use banks_server::json::{self, JsonValue};
use banks_server::Server;
use banks_service::{Service, SloSpec};

fn tiny_graph() -> DataGraph {
    let mut b = GraphBuilder::new();
    let a = b.add_node("author", "Jim Gray");
    let p0 = b.add_node("paper", "Granularity of locks");
    let p1 = b.add_node("paper", "Locks in shared databases");
    let p2 = b.add_node("paper", "Notes on locks and latches");
    for (i, p) in [p0, p1, p2].into_iter().enumerate() {
        let w = b.add_node("writes", format!("w{i}"));
        b.add_edge(w, a).unwrap();
        b.add_edge(w, p).unwrap();
    }
    b.build_default()
}

fn send(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(raw.as_bytes()).expect("send request");
    let mut response = Vec::new();
    conn.read_to_end(&mut response).expect("read response");
    String::from_utf8(response).expect("utf-8 response")
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    send(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn get_json(addr: std::net::SocketAddr, path: &str) -> JsonValue {
    let response = get(addr, path);
    let (head, body) = response.split_once("\r\n\r\n").expect("header split");
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    json::parse(body).expect("JSON body")
}

/// One parsed SSE frame: event name, `id:` (when present), joined data.
type Frame = (String, Option<u64>, String);

fn parse_sse(body: &str) -> Vec<Frame> {
    let mut frames = Vec::new();
    let mut name = String::new();
    let mut id = None;
    let mut data: Vec<&str> = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("event: ") {
            name = rest.to_string();
        } else if let Some(rest) = line.strip_prefix("id: ") {
            id = rest.parse().ok();
        } else if let Some(rest) = line.strip_prefix("data: ") {
            data.push(rest);
        } else if line.is_empty() && !name.is_empty() {
            frames.push((std::mem::take(&mut name), id.take(), data.join("\n")));
            data.clear();
        }
    }
    frames
}

/// Opens the event tail (optionally resuming from `last_event_id`) and
/// reads until `want` event frames arrived or the deadline passed, then
/// drops the connection — the server notices through its peer probe.
fn read_tail(
    addr: std::net::SocketAddr,
    last_event_id: Option<u64>,
    want: usize,
    deadline: Duration,
) -> Vec<Frame> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let resume = last_event_id.map_or_else(String::new, |id| format!("Last-Event-ID: {id}\r\n"));
    conn.write_all(
        format!("GET /debug/events/tail HTTP/1.1\r\nHost: t\r\n{resume}\r\n").as_bytes(),
    )
    .expect("send request");
    let start = Instant::now();
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    while start.elapsed() < deadline {
        match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("tail read failed: {e}"),
        }
        let text = String::from_utf8_lossy(&raw);
        if let Some((_, body)) = text.split_once("\r\n\r\n") {
            if parse_sse(body)
                .iter()
                .filter(|(n, _, _)| n == "event")
                .count()
                >= want
            {
                break;
            }
        }
    }
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("stream header");
    assert!(head.contains("text/event-stream"), "head: {head}");
    parse_sse(body)
        .into_iter()
        .filter(|(n, _, _)| n == "event")
        .collect()
}

fn wait_for(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    pred()
}

#[test]
fn debug_slo_serves_the_stored_report() {
    let service = Arc::new(
        Service::builder(tiny_graph())
            .workers(1)
            .collector_cadence(Duration::from_millis(20))
            .slos(SloSpec::defaults())
            .build(),
    );
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();
    let addr = server.local_addr();

    // The report is written by the collector: give it a tick.
    assert!(
        wait_for(Duration::from_secs(5), || {
            !service.time_series().is_empty()
        }),
        "collector never ticked"
    );
    let v = get_json(addr, "/debug/slo");
    assert_eq!(v.get("health").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(
        v.get("collector_cadence_ms").and_then(JsonValue::as_usize),
        Some(20)
    );
    let rows = match v.get("slos") {
        Some(JsonValue::Array(rows)) => rows,
        other => panic!("expected slos array, got {other:?}"),
    };
    assert_eq!(rows.len(), 4, "the four stock objectives");
    let names: Vec<&str> = rows
        .iter()
        .map(|r| r.get("name").and_then(JsonValue::as_str).unwrap())
        .collect();
    assert_eq!(
        names,
        vec![
            "ttfa_p99",
            "error_ratio",
            "queue_wait_p90",
            "shard_imbalance"
        ]
    );
    for row in rows {
        assert_eq!(row.get("state").and_then(JsonValue::as_str), Some("ok"));
        assert!(row.get("threshold").and_then(JsonValue::as_f64).is_some());
        for field in ["metric", "value", "burn_fast", "burn_slow"] {
            assert!(row.get(field).is_some(), "row must include {field}");
        }
    }

    // The health verdict also rides /healthz next to the liveness status.
    let health = get_json(addr, "/healthz");
    assert_eq!(health.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(health.get("health").and_then(JsonValue::as_str), Some("ok"));
    server.shutdown();
}

#[test]
fn debug_events_pages_by_id() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();
    let addr = server.local_addr();

    // Two swaps produce two events with increasing ids.
    for _ in 0..2 {
        let response = send(addr, "POST /admin/swap HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 200"));
    }
    let v = get_json(addr, "/debug/events");
    let events = match v.get("events") {
        Some(JsonValue::Array(events)) => events,
        other => panic!("expected events array, got {other:?}"),
    };
    assert!(events.len() >= 2, "got {} events", events.len());
    let ids: Vec<u64> = events
        .iter()
        .map(|e| e.get("id").and_then(JsonValue::as_usize).unwrap() as u64)
        .collect();
    assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids ascend: {ids:?}");
    let last_id = v.get("last_id").and_then(JsonValue::as_usize).unwrap() as u64;
    assert_eq!(last_id, *ids.last().unwrap());
    assert_eq!(
        v.get("count").and_then(JsonValue::as_usize),
        Some(events.len())
    );
    assert_eq!(v.get("dropped").and_then(JsonValue::as_usize), Some(0));
    for event in events {
        assert!(event.get("at_unix_ms").is_some());
        assert!(event.get("level").and_then(JsonValue::as_str).is_some());
        assert!(event.get("message").and_then(JsonValue::as_str).is_some());
    }
    assert!(events
        .iter()
        .any(|e| e.get("kind").and_then(JsonValue::as_str) == Some("swap")));

    // `since` pages strictly after the cursor; `limit` caps the page.
    let mid = ids[ids.len() / 2 - 1];
    let page = get_json(addr, &format!("/debug/events?since={mid}"));
    match page.get("events") {
        Some(JsonValue::Array(tail)) => {
            assert!(tail
                .iter()
                .all(|e| e.get("id").and_then(JsonValue::as_usize).unwrap() as u64 > mid));
            assert_eq!(tail.len(), ids.iter().filter(|&&i| i > mid).count());
        }
        other => panic!("expected events array, got {other:?}"),
    }
    let capped = get_json(addr, "/debug/events?limit=1");
    assert_eq!(capped.get("count").and_then(JsonValue::as_usize), Some(1));
    let drained = get_json(addr, &format!("/debug/events?since={last_id}"));
    assert_eq!(drained.get("count").and_then(JsonValue::as_usize), Some(0));
    server.shutdown();
}

#[test]
fn events_tail_streams_live_and_resumes_with_last_event_id() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();
    let addr = server.local_addr();

    // Seed two events, then read them off the tail.
    for _ in 0..2 {
        send(addr, "POST /admin/swap HTTP/1.1\r\nHost: t\r\n\r\n");
    }
    let first = read_tail(addr, None, 2, Duration::from_secs(5));
    assert!(first.len() >= 2, "tail replayed {} frames", first.len());
    let cursor = first[0].1.expect("frame id");
    let seen: Vec<u64> = first.iter().map(|f| f.1.unwrap()).collect();
    assert!(seen.windows(2).all(|w| w[0] < w[1]), "ids ascend: {seen:?}");
    for (_, _, data) in &first {
        let v = json::parse(data).expect("event JSON");
        assert!(v.get("kind").and_then(JsonValue::as_str).is_some());
    }

    // Emit one more while disconnected, then resume after the *first*
    // frame: the reconnect replays everything we did not acknowledge,
    // without duplicating the acknowledged one.
    send(addr, "POST /admin/swap HTTP/1.1\r\nHost: t\r\n\r\n");
    let resumed = read_tail(addr, Some(cursor), seen.len(), Duration::from_secs(5));
    let resumed_ids: Vec<u64> = resumed.iter().map(|f| f.1.unwrap()).collect();
    assert!(
        resumed_ids.iter().all(|&id| id > cursor),
        "resume must not replay acknowledged ids: {resumed_ids:?}"
    );
    assert!(
        resumed_ids.len() >= seen.len(),
        "resume sees the missed event: {resumed_ids:?}"
    );
    server.shutdown();
}

#[test]
fn query_answers_carry_ids_and_resume_skips_what_was_delivered() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(service).spawn().unwrap();
    let addr = server.local_addr();

    let response = get(addr, "/query?q=gray+locks&top_k=3");
    let frames = parse_sse(response.split_once("\r\n\r\n").unwrap().1);
    let answers: Vec<&Frame> = frames.iter().filter(|(n, _, _)| n == "answer").collect();
    assert!(answers.len() >= 2, "need 2+ answers to test resume");
    for (i, (_, id, _)) in answers.iter().enumerate() {
        assert_eq!(*id, Some(i as u64 + 1), "answers carry 1-based ids");
    }

    // Reconnect claiming the first answer was delivered: the replayed
    // stream starts at id 2 and carries the same payloads from there.
    let resumed = send(
        addr,
        "GET /query?q=gray+locks&top_k=3 HTTP/1.1\r\nHost: t\r\nLast-Event-ID: 1\r\n\r\n",
    );
    let resumed_frames = parse_sse(resumed.split_once("\r\n\r\n").unwrap().1);
    let resumed_answers: Vec<&Frame> = resumed_frames
        .iter()
        .filter(|(n, _, _)| n == "answer")
        .collect();
    assert_eq!(resumed_answers.len(), answers.len() - 1);
    for (original, replayed) in answers.iter().skip(1).zip(&resumed_answers) {
        assert_eq!(original.1, replayed.1, "ids line up across reconnects");
        assert_eq!(original.2, replayed.2, "payloads line up");
    }
    assert!(
        resumed_frames.iter().any(|(n, _, _)| n == "finished"),
        "resumed stream still finishes"
    );
    server.shutdown();
}

#[test]
fn induced_regression_flips_healthz_and_alerts_flow_over_http() {
    // A zero-microsecond TTFA objective at a 20 ms collector cadence:
    // every executed query violates, the fast window saturates within a
    // few ticks, and once traffic stops the windowed percentile decays to
    // NaN and the alert resolves — all observed through HTTP only.
    let slo = SloSpec::upper_bound("ttfa_p99", "ttfa_p99_us", 0.0)
        .with_windows(200, 30_000)
        .with_burns(10.0, 1.0);
    let service = Arc::new(
        Service::builder(tiny_graph())
            .workers(1)
            .collector_cadence(Duration::from_millis(20))
            .slos(vec![slo])
            .build(),
    );
    let server = Server::builder(service).spawn().unwrap();
    let addr = server.local_addr();

    let health_of = |addr| {
        get_json(addr, "/healthz")
            .get("health")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .expect("health field")
    };
    let fired = wait_for(Duration::from_secs(10), || {
        let response = get(addr, "/query?q=gray+locks");
        assert!(response.contains("event: finished"), "query must finish");
        health_of(addr) != "ok"
    });
    assert!(fired, "healthz never left ok under a 0us TTFA objective");
    let v = get_json(addr, "/debug/slo");
    assert_ne!(v.get("health").and_then(JsonValue::as_str), Some("ok"));

    let resolved = wait_for(Duration::from_secs(10), || health_of(addr) == "ok");
    assert!(resolved, "healthz never recovered after traffic stopped");

    let v = get_json(addr, "/debug/events");
    let events = match v.get("events") {
        Some(JsonValue::Array(events)) => events,
        other => panic!("expected events array, got {other:?}"),
    };
    let kind_of = |e: &JsonValue| {
        e.get("kind")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
    };
    let fire_id = events
        .iter()
        .find(|e| kind_of(e) == Some("alert-fire".into()))
        .and_then(|e| e.get("id").and_then(JsonValue::as_usize))
        .expect("alert-fire event") as u64;
    assert!(
        events
            .iter()
            .any(|e| kind_of(e) == Some("alert-resolve".into())),
        "no alert-resolve event"
    );

    // Paging from the fire id yields the resolve but not the fire itself.
    let page = get_json(addr, &format!("/debug/events?since={fire_id}"));
    match page.get("events") {
        Some(JsonValue::Array(tail)) => {
            assert!(tail.iter().all(|e| kind_of(e) != Some("alert-fire".into())
                || e.get("id").and_then(JsonValue::as_usize).unwrap() as u64 > fire_id));
            assert!(
                tail.iter()
                    .any(|e| kind_of(e) == Some("alert-resolve".into())),
                "resolve pages out after the fire cursor"
            );
        }
        other => panic!("expected events array, got {other:?}"),
    }
    server.shutdown();
}
