//! Loopback tests for the observability surface: the `trace` SSE event,
//! the debug trace endpoints, Prometheus exposition and gzip framing.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use banks_graph::{DataGraph, GraphBuilder};
use banks_server::json::JsonValue;
use banks_server::Server;
use banks_service::Service;

fn tiny_graph() -> DataGraph {
    let mut b = GraphBuilder::new();
    let a = b.add_node("author", "Jim Gray");
    let p = b.add_node("paper", "Granularity of locks");
    let w = b.add_node("writes", "w0");
    b.add_edge(w, a).unwrap();
    b.add_edge(w, p).unwrap();
    b.build_default()
}

fn send(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(raw.as_bytes()).expect("send request");
    let mut response = Vec::new();
    conn.read_to_end(&mut response).expect("read response");
    String::from_utf8(response).expect("utf-8 response")
}

fn send_raw(addr: std::net::SocketAddr, raw: &str) -> Vec<u8> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(raw.as_bytes()).expect("send request");
    let mut response = Vec::new();
    conn.read_to_end(&mut response).expect("read response");
    response
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    send(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line in {response:?}"))
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

fn parse_sse(body: &str) -> Vec<(String, String)> {
    let mut events = Vec::new();
    let mut name = String::new();
    let mut data: Vec<&str> = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("event: ") {
            name = rest.to_string();
        } else if let Some(rest) = line.strip_prefix("data: ") {
            data.push(rest);
        } else if line.is_empty() && !name.is_empty() {
            events.push((std::mem::take(&mut name), data.join("\n")));
            data.clear();
        }
    }
    events
}

fn span_of(trace: &JsonValue, name: &str) -> Option<(u64, u64)> {
    match trace.get("spans") {
        Some(JsonValue::Array(spans)) => spans.iter().find_map(|s| {
            (s.get("name").and_then(JsonValue::as_str) == Some(name)).then(|| {
                (
                    s.get("start_us").and_then(JsonValue::as_usize).unwrap() as u64,
                    s.get("end_us").and_then(JsonValue::as_usize).unwrap() as u64,
                )
            })
        }),
        _ => None,
    }
}

#[test]
fn traced_query_emits_a_trace_event_and_debug_endpoint_agrees() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();
    let addr = server.local_addr();

    let body = r#"{"q":"gray locks","top_k":3}"#;
    let response = send(
        addr,
        &format!(
            "POST /query HTTP/1.1\r\nHost: t\r\nX-Banks-Trace: corr-7\r\n\
             X-Banks-Tenant: ui\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(status_of(&response), 200);
    let events = parse_sse(body_of(&response));
    let finished = events
        .iter()
        .find(|(name, _)| name == "finished")
        .expect("finished event");
    let trace_event = events
        .iter()
        .find(|(name, _)| name == "trace")
        .expect("trace event after finished");
    assert!(
        events.iter().position(|(n, _)| n == "trace")
            > events.iter().position(|(n, _)| n == "finished"),
        "trace rides after finished"
    );

    let trace = banks_server::json::parse(&trace_event.1).expect("trace JSON");
    assert_eq!(
        trace.get("client_ref").and_then(JsonValue::as_str),
        Some("corr-7")
    );
    assert_eq!(trace.get("tenant").and_then(JsonValue::as_str), Some("ui"));
    let total_us = trace.get("total_us").and_then(JsonValue::as_usize).unwrap() as u64;

    // Span timings sum consistently: queue + expand fit in the total, and
    // the first-answer span equals the finished event's TTFA.
    let (q0, q1) = span_of(&trace, "queue").expect("queue span");
    let (e0, e1) = span_of(&trace, "expand").expect("expand span");
    assert!(q0 <= q1 && e0 <= e1 && q1 <= e0 + 1);
    assert!((q1 - q0) + (e1 - e0) <= total_us);
    let finished_json = banks_server::json::parse(&finished.1).unwrap();
    let ttfa = finished_json
        .get("time_to_first_answer_us")
        .and_then(JsonValue::as_usize)
        .expect("the query answers") as u64;
    let (f0, f1) = span_of(&trace, "first-answer").expect("first-answer span");
    assert_eq!(f1 - f0, ttfa, "first-answer span equals reported TTFA");

    // The same trace is retrievable by id — numeric and display forms.
    let id = trace.get("id").and_then(JsonValue::as_usize).unwrap();
    for path in [format!("/debug/trace/{id}"), format!("/debug/trace/q{id}")] {
        let response = get(addr, &path);
        assert_eq!(status_of(&response), 200, "GET {path}");
        let fetched = banks_server::json::parse(body_of(&response)).unwrap();
        assert_eq!(
            fetched.get("client_ref").and_then(JsonValue::as_str),
            Some("corr-7")
        );
        assert_eq!(
            fetched.get("total_us").and_then(JsonValue::as_usize),
            Some(total_us as usize)
        );
    }
    server.shutdown();
}

#[test]
fn untraced_queries_emit_no_trace_event() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(service).spawn().unwrap();
    let response = get(server.local_addr(), "/query?q=gray+locks&top_k=3");
    assert_eq!(status_of(&response), 200);
    let events = parse_sse(body_of(&response));
    assert!(events.iter().any(|(n, _)| n == "finished"));
    assert!(!events.iter().any(|(n, _)| n == "trace"));
    server.shutdown();
}

#[test]
fn debug_trace_maps_bad_and_missing_ids() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(service).spawn().unwrap();
    let addr = server.local_addr();
    assert_eq!(status_of(&get(addr, "/debug/trace/999")), 404);
    assert_eq!(status_of(&get(addr, "/debug/trace/not-a-number")), 400);
    let response = send(
        addr,
        "POST /debug/trace/7 HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status_of(&response), 405);
    let response = send(
        addr,
        "POST /debug/slow HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status_of(&response), 405);
    server.shutdown();
}

#[test]
fn slow_ring_serves_zero_threshold_queries() {
    let service = Arc::new(
        Service::builder(tiny_graph())
            .workers(1)
            .slow_query_threshold(Duration::ZERO)
            .build(),
    );
    let server = Server::builder(service).spawn().unwrap();
    let addr = server.local_addr();
    for _ in 0..2 {
        // distinct top_k dodges the cache; hits are near-instant anyway
        let _ = get(addr, "/query?q=gray+locks&top_k=3");
        let _ = get(addr, "/query?q=gray+locks&top_k=2");
    }
    let response = get(addr, "/debug/slow?limit=10");
    assert_eq!(status_of(&response), 200);
    let v = banks_server::json::parse(body_of(&response)).unwrap();
    assert_eq!(
        v.get("slow_query_threshold_us")
            .and_then(JsonValue::as_usize),
        Some(0)
    );
    let count = v.get("count").and_then(JsonValue::as_usize).unwrap();
    assert!(count >= 2, "zero threshold marks every query slow");
    match v.get("traces") {
        Some(JsonValue::Array(traces)) => {
            assert_eq!(traces.len(), count);
            for t in traces {
                assert_eq!(t.get("slow"), Some(&JsonValue::Bool(true)));
            }
        }
        other => panic!("expected traces array, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn prometheus_exposition_passes_the_scrape_grammar() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(service).spawn().unwrap();
    let addr = server.local_addr();
    let body = r#"{"q":"gray locks","top_k":3}"#;
    let _ = send(
        addr,
        &format!(
            "POST /query HTTP/1.1\r\nHost: t\r\nX-Banks-Tenant: acme\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );

    let response = get(addr, "/metrics?format=prometheus");
    assert_eq!(status_of(&response), 200);
    assert!(
        response.contains("Content-Type: text/plain; version=0.0.4"),
        "Prometheus content type: {response:?}"
    );
    let text = body_of(&response);
    assert!(text.ends_with('\n'));
    assert!(text.contains("# TYPE banks_queries_submitted_total counter"));
    assert!(text.contains("# HELP banks_queue_wait_seconds"));
    assert!(text.contains("banks_queries_submitted_total 1"));
    assert!(text.contains("banks_tenant_executed_total{tenant=\"acme\"} 1"));
    assert!(text.contains("banks_calibration_correction{engine="));

    let mut series = std::collections::HashSet::new();
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "bad comment: {line}"
            );
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line");
        assert!(series.insert(name.to_string()), "duplicate series {name}");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
            "bad sample value: {line}"
        );
    }
    server.shutdown();
}

#[test]
fn metrics_gzip_when_the_client_accepts_it() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(service).spawn().unwrap();
    let addr = server.local_addr();

    let plain = get(addr, "/metrics?format=prometheus");
    assert!(!plain.contains("Content-Encoding"));

    let raw = send_raw(
        addr,
        "GET /metrics?format=prometheus HTTP/1.1\r\nHost: t\r\n\
         Accept-Encoding: gzip, deflate\r\n\r\n",
    );
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body split");
    let head = String::from_utf8_lossy(&raw[..split]);
    assert!(head.contains("Content-Encoding: gzip"), "head: {head}");
    let body = &raw[split + 4..];
    assert_eq!(&body[..2], &[0x1f, 0x8b], "gzip magic");
    assert_eq!(
        body[10] & 0b110,
        0b010,
        "first DEFLATE block is fixed-Huffman, not stored"
    );

    // Round-trip through the decoder (which verifies the CRC32 and ISIZE
    // trailer) and compare against the plain body: the compression is real
    // but lossless.
    let inflated = banks_server::gzip::gunzip(body).expect("CRC-valid gzip member");
    assert!(
        inflated.len() > body.len(),
        "compression actually shrank it"
    );
    let text = String::from_utf8(inflated).unwrap();
    assert!(text.contains("# TYPE banks_queries_submitted_total counter"));

    // A client refusing gzip (q=0) gets identity.
    let refused = send(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: t\r\nAccept-Encoding: gzip;q=0\r\n\r\n",
    );
    assert!(!refused.contains("Content-Encoding"));
    server.shutdown();
}
