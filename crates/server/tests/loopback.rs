//! Loopback integration tests: a real listener, real sockets, real SSE.
//!
//! The acceptance criteria of the network front-end:
//!
//! * a `POST /query` SSE stream delivers the **byte-identical** answer
//!   sequence the in-process `QueryHandle` yields for the same `QuerySpec`;
//! * dropping the connection mid-stream **cancels** the query (observed via
//!   `ServiceMetrics::cancelled`);
//! * a tenant over its token-bucket quota gets **429** while other tenants
//!   keep streaming;
//! * `POST /admin/swap` swaps the served snapshot **under load**;
//! * every error path maps to its status code (400/404/405/413/429/503)
//!   with a structured JSON body.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use banks_core::json as corejson;
use banks_graph::{DataGraph, GraphBuilder};
use banks_server::json::JsonValue;
use banks_server::{Limits, Server};
use banks_service::{QueryEvent, QuerySpec, Service};

/// writes -> {author "Jim Gray", paper "Granularity of locks"}.
fn tiny_graph() -> DataGraph {
    let mut b = GraphBuilder::new();
    let a = b.add_node("author", "Jim Gray");
    let p = b.add_node("paper", "Granularity of locks");
    let w = b.add_node("writes", "w0");
    b.add_edge(w, a).unwrap();
    b.add_edge(w, p).unwrap();
    b.build_default()
}

/// A wide forest of `root -> {alpha i, beta i}` stars: the query
/// "alpha beta" yields one answer per star, so `n` controls how long a
/// full enumeration runs.
fn forest(n: usize) -> DataGraph {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        let a = b.add_node("alpha", format!("alpha {i}"));
        let z = b.add_node("beta", format!("beta {i}"));
        let root = b.add_node("writes", format!("w{i}"));
        b.add_edge(root, a).unwrap();
        b.add_edge(root, z).unwrap();
    }
    b.build_default()
}

/// Sends `raw` and reads the whole response (responses carry
/// `Connection: close`, so EOF is the framing).
fn send(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(raw.as_bytes()).expect("send request");
    let mut response = Vec::new();
    conn.read_to_end(&mut response).expect("read response");
    String::from_utf8(response).expect("utf-8 response")
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    send(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post_query(addr: std::net::SocketAddr, body: &str, headers: &str) -> String {
    send(
        addr,
        &format!(
            "POST /query HTTP/1.1\r\nHost: t\r\n{headers}Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line in {response:?}"))
}

fn header_of<'a>(response: &'a str, name: &str) -> Option<&'a str> {
    let head = response.split("\r\n\r\n").next().unwrap_or("");
    head.lines().skip(1).find_map(|line| {
        let (n, v) = line.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

fn error_json(response: &str) -> JsonValue {
    banks_server::json::parse(body_of(response))
        .unwrap_or_else(|e| panic!("unparseable error body ({e}): {response:?}"))
}

fn error_code(response: &str) -> String {
    error_json(response)
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(|c| c.as_str())
        .unwrap_or_else(|| panic!("no error.code in {response:?}"))
        .to_string()
}

/// Parses an SSE body into `(event_name, data)` pairs.
fn parse_sse(body: &str) -> Vec<(String, String)> {
    let mut events = Vec::new();
    let mut name = String::new();
    let mut data: Vec<&str> = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("event: ") {
            name = rest.to_string();
        } else if let Some(rest) = line.strip_prefix("data: ") {
            data.push(rest);
        } else if line.is_empty() && !name.is_empty() {
            events.push((std::mem::take(&mut name), data.join("\n")));
            data.clear();
        }
    }
    events
}

#[test]
fn healthz_reports_liveness() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(service).spawn().unwrap();
    let response = get(server.local_addr(), "/healthz");
    assert_eq!(status_of(&response), 200);
    let v = banks_server::json::parse(body_of(&response)).unwrap();
    assert_eq!(v.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert!(v.get("epoch").is_some());
    assert_eq!(v.get("shards").and_then(JsonValue::as_usize), Some(1));
    match v.get("engines") {
        Some(JsonValue::Array(names)) => assert!(!names.is_empty()),
        other => panic!("engines should be an array, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn sharded_server_streams_identical_answers_and_reports_shards() {
    let plain = Arc::new(Service::builder(forest(12)).workers(1).build());
    let sharded = Arc::new(Service::builder(forest(12)).workers(2).shards(4).build());
    let baseline = Server::builder(plain).spawn().unwrap();
    let server = Server::builder(Arc::clone(&sharded)).spawn().unwrap();

    let health = get(server.local_addr(), "/healthz");
    let v = banks_server::json::parse(body_of(&health)).unwrap();
    assert_eq!(v.get("shards").and_then(JsonValue::as_usize), Some(4));

    let body = r#"{"q":"alpha beta","top_k":5,"engine":"mi-backward"}"#;
    let sg_body = r#"{"q":"alpha beta","top_k":5,"engine":"scatter-gather"}"#;
    let expect = post_query(baseline.local_addr(), body, "");
    let got = post_query(server.local_addr(), sg_body, "");
    assert_eq!(status_of(&expect), 200);
    assert_eq!(status_of(&got), 200);
    // Answer payloads carry wall-clock timing fields; the identity
    // contract covers the deterministic content (rank + tree).
    let ranked = |response: &str| -> Vec<(JsonValue, JsonValue)> {
        parse_sse(body_of(response))
            .into_iter()
            .filter(|(name, _)| name == "answer")
            .map(|(_, data)| {
                let v = banks_server::json::parse(&data).unwrap();
                (
                    v.get("rank").cloned().unwrap(),
                    v.get("tree").cloned().unwrap(),
                )
            })
            .collect()
    };
    let expect_answers = ranked(&expect);
    let got_answers = ranked(&got);
    assert!(!got_answers.is_empty());
    assert_eq!(expect_answers, got_answers);

    let metrics = get(server.local_addr(), "/metrics");
    let v = banks_server::json::parse(body_of(&metrics)).unwrap();
    assert_eq!(v.get("shards").and_then(JsonValue::as_usize), Some(4));
    match v.get("shard_stats") {
        Some(JsonValue::Array(stats)) => assert_eq!(stats.len(), 4),
        other => panic!("shard_stats should be an array, got {other:?}"),
    }

    server.shutdown();
    baseline.shutdown();
}

#[test]
fn metrics_reflect_served_queries() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();
    let addr = server.local_addr();
    let response = post_query(addr, r#"{"q":"gray locks","top_k":3}"#, "");
    assert_eq!(status_of(&response), 200);
    let response = get(addr, "/metrics");
    assert_eq!(status_of(&response), 200);
    let v = banks_server::json::parse(body_of(&response)).unwrap();
    assert_eq!(v.get("submitted").and_then(JsonValue::as_usize), Some(1));
    assert!(v.get("queue_wait").and_then(|q| q.get("p99_us")).is_some());
    server.shutdown();
}

#[test]
fn checkpoint_endpoint_truncates_wal_and_healthz_reports_durability() {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "banks-server-ckpt-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let service = Arc::new(
        Service::builder(tiny_graph())
            .workers(1)
            .persistence(&dir, banks_service::FsyncPolicy::Always)
            .build(),
    );
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();
    let addr = server.local_addr();

    // A remote mutation lands in the WAL…
    let body = r#"{"ops":[{"op":"add_node","kind":"author","label":"Pat Selinger"}]}"#;
    let response = send(
        addr,
        &format!(
            "POST /admin/mutate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(status_of(&response), 200);

    // …and /healthz shows it, alongside the rest of the durability fields.
    let v = banks_server::json::parse(body_of(&get(addr, "/healthz"))).unwrap();
    assert_eq!(v.get("persistence"), Some(&JsonValue::Bool(true)));
    assert_eq!(v.get("wal_records").and_then(JsonValue::as_usize), Some(1));
    assert!(v.get("wal_bytes").and_then(JsonValue::as_usize).unwrap() > 0);
    assert!(v.get("last_checkpoint_epoch").is_some());

    // Forcing a checkpoint truncates the WAL at the served epoch.
    let response = send(
        addr,
        "POST /admin/checkpoint HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status_of(&response), 200);
    let v = banks_server::json::parse(body_of(&response)).unwrap();
    assert_eq!(v.get("checkpointed"), Some(&JsonValue::Bool(true)));
    let epoch = v.get("epoch").and_then(JsonValue::as_usize).unwrap();
    assert_eq!(epoch as u64, service.epoch());

    let v = banks_server::json::parse(body_of(&get(addr, "/healthz"))).unwrap();
    assert_eq!(v.get("wal_records").and_then(JsonValue::as_usize), Some(0));
    assert_eq!(
        v.get("last_checkpoint_epoch").and_then(JsonValue::as_usize),
        Some(epoch)
    );

    // Wrong method on the new route follows the 405 convention.
    let response = get(addr, "/admin/checkpoint");
    assert_eq!(status_of(&response), 405);

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_without_persistence_is_409_and_healthz_zeros() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(service).spawn().unwrap();
    let addr = server.local_addr();
    let v = banks_server::json::parse(body_of(&get(addr, "/healthz"))).unwrap();
    assert_eq!(v.get("persistence"), Some(&JsonValue::Bool(false)));
    assert_eq!(v.get("wal_records").and_then(JsonValue::as_usize), Some(0));
    assert_eq!(v.get("wal_bytes").and_then(JsonValue::as_usize), Some(0));
    assert_eq!(
        v.get("last_checkpoint_epoch").and_then(JsonValue::as_usize),
        Some(0)
    );
    let response = send(
        addr,
        "POST /admin/checkpoint HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status_of(&response), 409);
    assert_eq!(error_code(&response), "persistence_disabled");
    server.shutdown();
}

/// The headline contract: the SSE stream re-renders nothing — each
/// `answer` event's payload is the byte-identical `banks_core::json`
/// encoding of the `RankedAnswer` the in-process handle yields.
#[test]
fn sse_stream_is_byte_identical_to_in_process_answers() {
    let service = Arc::new(
        Service::builder(tiny_graph())
            .workers(1)
            .cache_capacity(64)
            .build(),
    );
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();

    // 1. over HTTP (a cache miss: this run computes and caches the outcome)
    let response = post_query(
        server.local_addr(),
        r#"{"q":"gray locks","top_k":5}"#,
        "X-Banks-Tenant: http\r\n",
    );
    assert_eq!(status_of(&response), 200);
    assert_eq!(
        header_of(&response, "content-type"),
        Some("text/event-stream")
    );
    let events = parse_sse(body_of(&response));
    let (finished_events, answer_events): (Vec<_>, Vec<_>) =
        events.iter().partition(|(name, _)| name == "finished");
    assert_eq!(finished_events.len(), 1, "exactly one terminal event");
    assert!(!answer_events.is_empty(), "the query must produce answers");

    // 2. in-process, same spec: the cache replays the identical outcome
    //    (same answers, same timings), so the encodings must agree byte for
    //    byte.
    let handle = service
        .submit(QuerySpec::parse("gray locks").top_k(5).tenant("inproc"))
        .unwrap();
    let mut in_process = Vec::new();
    while let Some(event) = handle.recv() {
        match event {
            QueryEvent::Answer(answer) => in_process.push(corejson::ranked_answer(&answer)),
            QueryEvent::Finished(result) => assert!(result.cache_hit, "second run must hit"),
        }
    }
    assert_eq!(in_process.len(), answer_events.len());
    for (wire, local) in answer_events.iter().zip(&in_process) {
        assert_eq!(&wire.1, local, "SSE payload != in-process encoding");
    }

    // the finished event carries the stats envelope
    let v = banks_server::json::parse(&finished_events[0].1).unwrap();
    assert_eq!(v.get("cache_hit"), Some(&JsonValue::Bool(false)));
    assert!(v
        .get("stats")
        .and_then(|s| s.get("nodes_explored"))
        .is_some());
    server.shutdown();
}

/// Dropping the connection mid-stream must cancel the query: the handler
/// notices the dead peer at the next answer and cancels the token, the
/// engine aborts within one expansion step, and the service counts it.
#[test]
fn disconnect_mid_stream_cancels_the_query() {
    let service = Arc::new(
        Service::builder(forest(8000))
            .workers(1)
            .cache_capacity(0)
            .build(),
    );
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();

    // Immediate emission: answers stream while the (long) enumeration of
    // 8000 stars runs, so the disconnect lands mid-query.
    let body = r#"{"q":"alpha beta","top_k":9000,"emission":"immediate"}"#;
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    conn.write_all(
        format!(
            "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();

    // read until the first answer event boundary, then hang up
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut line = String::new();
    let mut saw_answer = false;
    while reader.read_line(&mut line).unwrap() > 0 {
        if line.starts_with("event: answer") {
            saw_answer = true;
            break;
        }
        line.clear();
    }
    assert!(saw_answer, "stream must deliver at least one answer");
    drop(reader);
    drop(conn); // <-- mid-stream disconnect

    // the cancellation must become visible in the service metrics
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let metrics = service.metrics();
        if metrics.cancelled >= 1 {
            assert!(metrics.completed >= 1);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "query was not cancelled after disconnect: {metrics:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

/// Disconnect detection survives stray bytes: a client that parks unread
/// bytes in the server's receive buffer defeats the peek probe (it keeps
/// returning the buffered byte), so the cancellation must land through the
/// write path instead — event or keep-alive writes failing against the
/// reset connection.
#[test]
fn disconnect_with_stray_bytes_still_cancels() {
    let service = Arc::new(
        Service::builder(forest(8000))
            .workers(1)
            .cache_capacity(0)
            .build(),
    );
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();

    let body = r#"{"q":"alpha beta","top_k":9000,"emission":"immediate"}"#;
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    conn.write_all(
        format!(
            "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}\n",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap(); // note the stray trailing newline beyond Content-Length

    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut line = String::new();
    let mut saw_answer = false;
    while reader.read_line(&mut line).unwrap() > 0 {
        if line.starts_with("event: answer") {
            saw_answer = true;
            break;
        }
        line.clear();
    }
    assert!(saw_answer, "stream must deliver at least one answer");
    drop(reader);
    drop(conn);

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let metrics = service.metrics();
        if metrics.cancelled >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "query not cancelled despite stray-byte disconnect: {metrics:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

/// A tenant over its token bucket gets 429 + Retry-After while another
/// tenant keeps streaming, and the rejection shows up in the per-tenant
/// metrics.
#[test]
fn quota_429_while_other_tenants_stream() {
    let service = Arc::new(
        Service::builder(tiny_graph())
            .workers(1)
            .cache_capacity(0)
            .tenant_quota(0.001, 2)
            .build(),
    );
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();
    let addr = server.local_addr();

    let body = r#"{"q":"gray locks","top_k":3}"#;
    for i in 0..2 {
        let response = post_query(addr, body, "X-Banks-Tenant: free\r\n");
        assert_eq!(status_of(&response), 200, "burst request {i}");
    }
    let response = post_query(addr, body, "X-Banks-Tenant: free\r\n");
    assert_eq!(status_of(&response), 429);
    assert_eq!(error_code(&response), "quota_exceeded");
    let retry_after: u64 = header_of(&response, "retry-after")
        .expect("Retry-After header")
        .parse()
        .expect("integer Retry-After");
    assert!(retry_after >= 1);

    // another tenant's bucket is untouched: full stream, 200
    let response = post_query(addr, body, "X-Banks-Tenant: paid\r\n");
    assert_eq!(status_of(&response), 200);
    let events = parse_sse(body_of(&response));
    assert!(events.iter().any(|(name, _)| name == "answer"));

    // ... and the rejection is observable per tenant
    let metrics = get(addr, "/metrics");
    let v = banks_server::json::parse(body_of(&metrics)).unwrap();
    assert_eq!(
        v.get("quota_rejected").and_then(JsonValue::as_usize),
        Some(1)
    );
    let tenants = match v.get("tenants") {
        Some(JsonValue::Array(rows)) => rows.clone(),
        other => panic!("tenants should be an array, got {other:?}"),
    };
    let free = tenants
        .iter()
        .find(|r| r.get("tenant").and_then(JsonValue::as_str) == Some("free"))
        .expect("free tenant row");
    assert_eq!(
        free.get("quota_rejected").and_then(JsonValue::as_usize),
        Some(1)
    );
    server.shutdown();
}

/// `POST /admin/swap` under a concurrent query workload: the epoch
/// advances, queries keep succeeding throughout, and post-swap queries run
/// against the new graph version.
#[test]
fn swap_under_load_advances_the_epoch() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(2).build());
    let epoch_before = service.epoch();
    // the swapped-in graph answers a keyword the old one does not have
    let server = Server::builder(Arc::clone(&service))
        .graph_source(|| {
            let mut b = GraphBuilder::new();
            let a = b.add_node("author", "Edgar Codd");
            let p = b.add_node("paper", "A relational model of data");
            let w = b.add_node("writes", "w0");
            b.add_edge(w, a).unwrap();
            b.add_edge(w, p).unwrap();
            banks_service::GraphSnapshot::with_defaults(b.build_default())
        })
        .spawn()
        .unwrap();
    let addr = server.local_addr();

    // background load: hammer /query while the swap happens
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let load = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut served = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let response = post_query(addr, r#"{"q":"gray locks","top_k":3}"#, "");
                // every response during the swap is a complete SSE stream
                assert_eq!(status_of(&response), 200);
                served += 1;
            }
            served
        })
    };

    std::thread::sleep(Duration::from_millis(30));
    let response = send(addr, "POST /admin/swap HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status_of(&response), 200);
    let v = banks_server::json::parse(body_of(&response)).unwrap();
    let new_epoch = v.get("epoch").and_then(JsonValue::as_usize).unwrap();
    assert_ne!(new_epoch as u64, epoch_before);
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let served = load.join().expect("load thread");
    assert!(served > 0, "load must have run during the swap");

    // post-swap: the new graph serves its own content...
    let response = post_query(addr, r#"{"q":"codd relational","top_k":3}"#, "");
    let events = parse_sse(body_of(&response));
    assert!(
        events.iter().any(|(name, _)| name == "answer"),
        "swapped-in graph must answer its keywords"
    );
    // ...and the old content is gone
    let response = post_query(addr, r#"{"q":"gray locks","top_k":3}"#, "");
    let events = parse_sse(body_of(&response));
    assert!(
        !events.iter().any(|(name, _)| name == "answer"),
        "old graph's keywords must not match after the swap"
    );
    assert_eq!(service.metrics().swaps, 1);
    server.shutdown();
}

#[test]
fn malformed_requests_map_to_400() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(service).spawn().unwrap();
    let addr = server.local_addr();

    for (body, label) in [
        ("{not json", "invalid JSON"),
        ("[1,2,3]", "non-object body"),
        ("{}", "missing q/keywords"),
        (r#"{"q":""}"#, "empty q"),
        (r#"{"q":42}"#, "non-string q"),
        (r#"{"keywords":"gray"}"#, "non-array keywords"),
        (r#"{"q":"x","top_k":"five"}"#, "non-integer top_k"),
        (r#"{"q":"x","top_k":-3}"#, "negative top_k"),
        (r#"{"q":"x","emission":"warp"}"#, "bad emission policy"),
        ("", "empty body"),
    ] {
        let response = post_query(addr, body, "");
        assert_eq!(status_of(&response), 400, "{label}: {response:?}");
        assert_eq!(error_code(&response), "bad_request", "{label}");
    }

    // bad priority header
    let response = post_query(
        addr,
        r#"{"q":"gray locks"}"#,
        "X-Banks-Priority: urgent\r\n",
    );
    assert_eq!(status_of(&response), 400);

    // GET without q
    let response = get(addr, "/query?top_k=3");
    assert_eq!(status_of(&response), 400);

    // malformed HTTP itself (bad verb)
    let response = send(addr, "G@T /query HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status_of(&response), 400);
    server.shutdown();
}

#[test]
fn unknown_engine_maps_to_404_with_suggestion() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(service).spawn().unwrap();
    let response = post_query(
        server.local_addr(),
        r#"{"q":"gray locks","engine":"bidirectonal"}"#,
        "",
    );
    assert_eq!(status_of(&response), 404);
    assert_eq!(error_code(&response), "unknown_engine");
    let err = error_json(&response);
    let err = err.get("error").unwrap();
    assert_eq!(
        err.get("suggestion").and_then(JsonValue::as_str),
        Some("bidirectional"),
        "did-you-mean survives the wire"
    );
    match err.get("known") {
        Some(JsonValue::Array(names)) => {
            assert!(names.iter().any(|n| n.as_str() == Some("si-backward")))
        }
        other => panic!("known should be an array, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn unknown_routes_and_methods_map_to_404_and_405() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(service).spawn().unwrap();
    let addr = server.local_addr();
    let response = get(addr, "/nope");
    assert_eq!(status_of(&response), 404);
    assert_eq!(error_code(&response), "not_found");
    let response = send(addr, "DELETE /query HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status_of(&response), 405);
    let response = send(addr, "GET /admin/swap HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status_of(&response), 405, "swap is POST-only");
    server.shutdown();
}

#[test]
fn oversized_heads_and_bodies_map_to_431_and_413() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(service)
        .limits(Limits {
            max_head_bytes: 256,
            max_body_bytes: 64,
        })
        .spawn()
        .unwrap();
    let addr = server.local_addr();
    let response = send(
        addr,
        &format!(
            "GET /healthz HTTP/1.1\r\nX-Huge: {}\r\n\r\n",
            "a".repeat(1000)
        ),
    );
    assert_eq!(status_of(&response), 431);
    let response = post_query(addr, &format!("{{\"q\":\"{}\"}}", "x".repeat(200)), "");
    assert_eq!(status_of(&response), 413);
    server.shutdown();
}

/// A full admission queue maps to 503 + Retry-After while the worker is
/// busy.  The worker is parked on an expensive streamed query; the queue
/// (capacity 1) is filled in-process; the HTTP submission then bounces.
#[test]
fn queue_full_maps_to_503() {
    let service = Arc::new(
        Service::builder(forest(8000))
            .workers(1)
            .queue_capacity(1)
            .cache_capacity(0)
            .build(),
    );
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();

    // park the only worker: an Immediate-emission exhaustive enumeration
    let blocker = service
        .submit(
            QuerySpec::parse("alpha beta")
                .top_k(9000)
                .params(banks_core::SearchParams {
                    top_k: 9000,
                    emission: banks_core::EmissionPolicy::Immediate,
                    ..Default::default()
                }),
        )
        .unwrap();
    assert!(
        blocker.next_answer().is_some(),
        "worker is demonstrably busy"
    );
    // fill the queue's single slot
    let _queued = service
        .submit(QuerySpec::parse("alpha beta").top_k(1))
        .unwrap();

    let response = post_query(server.local_addr(), r#"{"q":"alpha beta"}"#, "");
    assert_eq!(status_of(&response), 503);
    assert_eq!(error_code(&response), "queue_full");
    assert_eq!(header_of(&response, "retry-after"), Some("1"));

    blocker.cancel();
    server.shutdown();
}

/// Reads exactly one keep-alive-framed response (status line + headers +
/// `Content-Length` body) off `reader`, leaving the connection open.
fn read_framed_response(reader: &mut BufReader<TcpStream>) -> String {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read head line") > 0,
            "connection closed mid-head (got {head:?})"
        );
        head.push_str(&line);
        if line == "\r\n" {
            break;
        }
    }
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (n, v) = l.split_once(':')?;
            n.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .expect("content-length header");
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    head.push_str(&String::from_utf8(body).expect("utf-8 body"));
    head
}

#[test]
fn keep_alive_reuses_one_connection_for_non_sse_endpoints() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();
    let addr = server.local_addr();

    let conn = TcpStream::connect(addr).expect("connect");
    let mut writer = conn.try_clone().expect("clone");
    let mut reader = BufReader::new(conn);

    // Three different endpoints down one connection.
    for (i, request) in [
        "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n".to_string(),
        "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n".to_string(),
        {
            let body = r#"{"ops":[{"op":"set_label","node":0,"label":"J. Gray"}]}"#;
            format!(
                "POST /admin/mutate HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
        },
    ]
    .iter()
    .enumerate()
    {
        writer.write_all(request.as_bytes()).expect("send");
        let response = read_framed_response(&mut reader);
        assert_eq!(status_of(&response), 200, "request {i}: {response:?}");
        assert_eq!(
            header_of(&response, "connection"),
            Some("keep-alive"),
            "request {i} must keep the connection open"
        );
        assert!(header_of(&response, "keep-alive").is_some());
    }
    // The connection is still usable; without the header the server closes.
    writer
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send");
    let response = read_framed_response(&mut reader);
    assert_eq!(status_of(&response), 200);
    assert_eq!(header_of(&response, "connection"), Some("close"));
    let mut rest = Vec::new();
    reader.get_mut().read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty(), "server must close after Connection: close");

    // A plain request (no keep-alive header) still closes immediately, and
    // SSE streams always close regardless of the header.
    let response = get(addr, "/healthz");
    assert_eq!(header_of(&response, "connection"), Some("close"));
    let response = post_query(addr, r#"{"q":"gray"}"#, "Connection: keep-alive\r\n");
    assert_eq!(status_of(&response), 200);
    assert_eq!(header_of(&response, "connection"), Some("close"));

    server.shutdown();
}

#[test]
fn admin_mutate_applies_a_batch_over_the_wire() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(2).build());
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();
    let addr = server.local_addr();
    let epoch_before = service.epoch();

    let body = r#"{"ops":[
        {"op":"add_node","kind":"writes","label":"w1"},
        {"op":"add_node","kind":"paper","label":"Transaction recovery"},
        {"op":"add_edge","from":3,"to":0},
        {"op":"add_edge","from":3,"to":4,"weight":1.5},
        {"op":"remove_edge","from":0,"to":1}
    ]}"#;
    let response = send(
        addr,
        &format!(
            "POST /admin/mutate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(status_of(&response), 200, "{response:?}");
    let report = banks_server::json::parse(body_of(&response)).expect("mutate response json");
    assert_eq!(report.get("swapped"), Some(&JsonValue::Bool(true)));
    assert_eq!(
        report.get("accepted").and_then(JsonValue::as_usize),
        Some(4)
    );
    assert_eq!(
        report.get("rejected").and_then(JsonValue::as_usize),
        Some(1)
    );
    let epoch = report.get("epoch").and_then(JsonValue::as_usize).unwrap() as u64;
    assert_eq!(
        report.get("previous_epoch").and_then(JsonValue::as_usize),
        Some(epoch_before as usize)
    );
    assert_ne!(epoch, epoch_before);
    assert_eq!(service.epoch(), epoch, "served epoch advanced");
    let results = match report.get("results") {
        Some(JsonValue::Array(items)) => items.clone(),
        other => panic!("results must be an array, got {other:?}"),
    };
    assert_eq!(results.len(), 5);
    assert_eq!(
        results[0].get("effect").and_then(JsonValue::as_str),
        Some("node_added")
    );
    assert_eq!(
        results[0].get("node").and_then(JsonValue::as_usize),
        Some(3)
    );
    assert_eq!(
        results[4].get("status").and_then(JsonValue::as_str),
        Some("rejected")
    );
    assert!(results[4]
        .get("error")
        .and_then(JsonValue::as_str)
        .unwrap()
        .contains("no forward edge"));

    // The mutated data is immediately queryable over the wire.
    let response = post_query(addr, r#"{"q":"gray recovery"}"#, "");
    assert_eq!(status_of(&response), 200);
    let events = parse_sse(body_of(&response));
    assert!(
        events
            .iter()
            .any(|(name, data)| name == "answer" && data.contains("\"root\"")),
        "mutated graph must answer: {events:?}"
    );

    // Metrics count the batch; a fully-rejected batch swaps nothing.
    let metrics = banks_server::json::parse(body_of(&get(addr, "/metrics"))).unwrap();
    assert_eq!(
        metrics
            .get("mutation_batches")
            .and_then(JsonValue::as_usize),
        Some(1)
    );
    assert_eq!(
        metrics
            .get("mutation_ops_accepted")
            .and_then(JsonValue::as_usize),
        Some(4)
    );
    let body = r#"{"ops":[{"op":"remove_edge","from":0,"to":1}]}"#;
    let response = send(
        addr,
        &format!(
            "POST /admin/mutate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    let report = banks_server::json::parse(body_of(&response)).unwrap();
    assert_eq!(report.get("swapped"), Some(&JsonValue::Bool(false)));
    assert_eq!(
        report.get("epoch").and_then(JsonValue::as_usize).unwrap() as u64,
        epoch,
        "rejected batch leaves the epoch alone"
    );

    server.shutdown();
}

#[test]
fn admin_mutate_rejects_malformed_bodies() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(service).spawn().unwrap();
    let addr = server.local_addr();
    let epoch_before = server.service().epoch();

    for (body, fragment) in [
        ("", "empty body"),
        ("{}", "\\\"ops\\\""),
        (r#"{"ops":{}}"#, "must be an array"),
        (r#"{"ops":[{"op":"teleport"}]}"#, "unknown op"),
        (r#"{"ops":[{"op":"add_node","kind":"x"}]}"#, "label"),
        (r#"{"ops":[{"op":"add_edge","from":-1,"to":2}]}"#, "node id"),
        (r#"{"ops":[{"op":"set_weight","from":0,"to":1}]}"#, "weight"),
    ] {
        let response = send(
            addr,
            &format!(
                "POST /admin/mutate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert_eq!(status_of(&response), 400, "body {body:?}: {response:?}");
        assert_eq!(error_code(&response), "bad_request");
        let _ = fragment; // messages are asserted loosely: status + code
    }
    assert_eq!(
        server.service().epoch(),
        epoch_before,
        "malformed bodies must not swap anything"
    );
    server.shutdown();
}

#[test]
fn error_responses_close_even_on_kept_alive_connections() {
    let service = Arc::new(Service::builder(tiny_graph()).workers(1).build());
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();
    let addr = server.local_addr();

    // A malformed mutate body on a keep-alive connection: the 400 says
    // close, and the server actually closes (no half-open limbo).
    let bad = "not json";
    let response = send(
        addr,
        &format!(
            "POST /admin/mutate HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\
             Content-Length: {}\r\n\r\n{bad}",
            bad.len()
        ),
    );
    assert_eq!(status_of(&response), 400);
    assert_eq!(header_of(&response, "connection"), Some("close"));
    // `send` uses read_to_end: it only returned because the server closed.

    // 404 and 405 close too, regardless of the keep-alive request header.
    let response = send(
        addr,
        "GET /nope HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n",
    );
    assert_eq!(status_of(&response), 404);
    assert_eq!(header_of(&response, "connection"), Some("close"));
    let response = send(
        addr,
        "DELETE /metrics HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n",
    );
    assert_eq!(status_of(&response), 405);
    assert_eq!(header_of(&response, "connection"), Some("close"));

    server.shutdown();
}
