//! Replication endpoints over real sockets.
//!
//! The wire contract a follower builds on:
//!
//! * `GET /replication/stream` ships every WAL record past the cursor as a
//!   `record` SSE event whose `id:` is the record's epoch and whose
//!   `payload` is the hex of the exact on-disk record bytes (CRC framing
//!   included) — [`banks_service::decode_record`] round-trips them;
//! * `Last-Event-ID` resumes past what was already delivered;
//! * a cursor behind the WAL truncation horizon gets a terminal
//!   `bootstrap` event instead of records;
//! * `GET /replication/snapshot` serves the newest snapshot verbatim with
//!   its epoch in `X-Banks-Snapshot-Epoch`;
//! * a follower-role server 409s `POST /admin/mutate` and points the
//!   `Location` header at the leader;
//! * `POST /admin/slo` replaces or upserts SLO specs at runtime.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use banks_graph::{DataGraph, GraphBuilder, MutationBatch, NodeId};
use banks_server::json::JsonValue;
use banks_server::Server;
use banks_service::{decode_record, FsyncPolicy, ReplicationRole, Service};

/// writes -> {author, paper}, padded with filler nodes so a couple of
/// small mutation batches stay far below the compaction overlay ratio —
/// the WAL keeps every record and the stream contents are deterministic.
fn padded_graph() -> DataGraph {
    let mut b = GraphBuilder::new();
    let a = b.add_node("author", "Jim Gray");
    let p = b.add_node("paper", "Granularity of locks");
    let w = b.add_node("writes", "w0");
    b.add_edge(w, a).unwrap();
    b.add_edge(w, p).unwrap();
    for i in 0..40 {
        b.add_node("filler", format!("filler {i}"));
    }
    b.build_default()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "banks-server-repl-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ))
}

fn send(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(raw.as_bytes()).expect("send request");
    let mut response = Vec::new();
    conn.read_to_end(&mut response).expect("read response");
    String::from_utf8(response).expect("utf-8 response")
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    send(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> String {
    send(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line in {response:?}"))
}

fn header_of<'a>(response: &'a str, name: &str) -> Option<&'a str> {
    let head = response.split("\r\n\r\n").next().unwrap_or("");
    head.lines().skip(1).find_map(|line| {
        let (n, v) = line.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

fn error_code(response: &str) -> String {
    banks_server::json::parse(body_of(response))
        .ok()
        .and_then(|v| {
            v.get("error")?
                .get("code")?
                .as_str()
                .map(ToString::to_string)
        })
        .unwrap_or_else(|| panic!("no error.code in {response:?}"))
}

/// One parsed SSE frame: event name, `id:` (when present), joined data.
type Frame = (String, Option<u64>, String);

fn parse_sse(body: &str) -> Vec<Frame> {
    let mut frames = Vec::new();
    let mut name = String::new();
    let mut id = None;
    let mut data: Vec<&str> = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("event: ") {
            name = rest.to_string();
        } else if let Some(rest) = line.strip_prefix("id: ") {
            id = rest.parse().ok();
        } else if let Some(rest) = line.strip_prefix("data: ") {
            data.push(rest);
        } else if line.is_empty() && !name.is_empty() {
            frames.push((std::mem::take(&mut name), id.take(), data.join("\n")));
            data.clear();
        }
    }
    frames
}

fn from_hex(text: &str) -> Vec<u8> {
    assert!(text.len().is_multiple_of(2), "odd hex length: {text:?}");
    (0..text.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&text[i..i + 2], 16).expect("hex digit pair"))
        .collect()
}

/// Opens the replication stream at `cursor` and reads until `want`
/// `record` frames arrived or the deadline passed.
fn read_stream(
    addr: std::net::SocketAddr,
    cursor: Option<u64>,
    want: usize,
    deadline: Duration,
) -> Vec<Frame> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let resume = cursor.map_or_else(String::new, |id| format!("Last-Event-ID: {id}\r\n"));
    conn.write_all(
        format!("GET /replication/stream HTTP/1.1\r\nHost: t\r\n{resume}\r\n").as_bytes(),
    )
    .expect("send request");
    let start = Instant::now();
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    while start.elapsed() < deadline {
        match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("stream read failed: {e}"),
        }
        let text = String::from_utf8_lossy(&raw);
        if let Some((_, body)) = text.split_once("\r\n\r\n") {
            let frames = parse_sse(body);
            let records = frames.iter().filter(|(n, _, _)| n == "record").count();
            let done = frames.iter().any(|(n, _, _)| n == "bootstrap");
            if records >= want || done {
                break;
            }
        }
    }
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("stream header");
    assert!(head.contains("text/event-stream"), "head: {head}");
    parse_sse(body)
}

#[test]
fn stream_ships_wal_records_that_decode_and_resume() {
    let dir = tmp_dir("stream");
    let service = Arc::new(
        Service::builder(padded_graph())
            .workers(1)
            .persistence(&dir, FsyncPolicy::Always)
            .build(),
    );
    service.checkpoint().unwrap();
    let base = service.durability().last_checkpoint_epoch;
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();
    let addr = server.local_addr();

    let batches = [
        MutationBatch::new().add_node("paper", "Keyword search in databases"),
        MutationBatch::new().set_label(NodeId(1), "Granularity of locks, 2nd ed"),
    ];
    for batch in &batches {
        let report = service.apply_mutations(batch);
        assert!(report.swapped, "mutation must apply: {report:?}");
    }

    let frames = read_stream(addr, Some(base), 2, Duration::from_secs(5));
    let records: Vec<&Frame> = frames.iter().filter(|(n, _, _)| n == "record").collect();
    assert_eq!(records.len(), 2, "frames: {frames:?}");

    // A head frame precedes the batch and reports how far behind we are.
    let head = frames.iter().find(|(n, _, _)| n == "head").expect("head");
    let head_json = banks_server::json::parse(&head.2).unwrap();
    assert_eq!(
        head_json.get("pending").and_then(JsonValue::as_usize),
        Some(2)
    );
    assert!(head_json.get("leader_epoch").is_some());
    assert!(head_json.get("checkpoint_epoch").is_some());

    // Record payloads are the exact WAL bytes: they decode, their epochs
    // chain from the checkpoint, and the SSE id mirrors the epoch.
    let mut parent = base;
    for frame in &records {
        let data = banks_server::json::parse(&frame.2).unwrap();
        let epoch = data.get("epoch").and_then(JsonValue::as_usize).unwrap() as u64;
        assert_eq!(frame.1, Some(epoch), "id: must carry the record epoch");
        let payload = data.get("payload").and_then(|p| p.as_str()).unwrap();
        let (record, _) = decode_record(&from_hex(payload)).expect("payload decodes");
        assert_eq!(record.epoch, epoch);
        assert_eq!(record.parent_epoch, parent);
        parent = epoch;
    }
    assert_eq!(parent, service.epoch());

    // Resuming from the first record's epoch delivers only the second.
    let first_epoch = records[0].1.unwrap();
    let frames = read_stream(addr, Some(first_epoch), 1, Duration::from_secs(5));
    let resumed: Vec<&Frame> = frames.iter().filter(|(n, _, _)| n == "record").collect();
    assert_eq!(resumed.len(), 1, "frames: {frames:?}");
    assert_eq!(resumed[0].1, records[1].1);

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_cursor_behind_the_checkpoint_gets_a_bootstrap_order() {
    let dir = tmp_dir("boot");
    let service = Arc::new(
        Service::builder(padded_graph())
            .workers(1)
            .persistence(&dir, FsyncPolicy::Always)
            .build(),
    );
    service.checkpoint().unwrap();
    let checkpoint = service.durability().last_checkpoint_epoch;
    assert!(checkpoint > 0);
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();

    // Cursor 0 predates the truncation horizon: the stream's only frame
    // is the bootstrap order, and the connection closes after it.
    let frames = read_stream(
        server.local_addr(),
        None,
        usize::MAX,
        Duration::from_secs(5),
    );
    assert_eq!(frames.len(), 1, "frames: {frames:?}");
    assert_eq!(frames[0].0, "bootstrap");
    let data = banks_server::json::parse(&frames[0].2).unwrap();
    assert_eq!(
        data.get("checkpoint_epoch").and_then(JsonValue::as_usize),
        Some(checkpoint as usize)
    );
    assert!(data.get("leader_epoch").is_some());

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_endpoint_serves_the_newest_snapshot_verbatim() {
    let dir = tmp_dir("snap");
    let service = Arc::new(
        Service::builder(padded_graph())
            .workers(1)
            .persistence(&dir, FsyncPolicy::Always)
            .build(),
    );
    service.checkpoint().unwrap();
    let epoch = service.durability().last_checkpoint_epoch;
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();
    let addr = server.local_addr();

    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET /replication/snapshot HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut response = Vec::new();
    conn.read_to_end(&mut response).unwrap();
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header split");
    let head = String::from_utf8_lossy(&response[..head_end]).into_owned();
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: application/octet-stream"),
        "head: {head}"
    );
    assert_eq!(
        header_of(&head, "X-Banks-Snapshot-Epoch"),
        Some(epoch.to_string()).as_deref()
    );

    // The body is the snapshot file byte for byte.
    let body = &response[head_end + 4..];
    let (snap_epoch, path) = service.newest_snapshot_file().unwrap().expect("snapshot");
    assert_eq!(snap_epoch, epoch);
    assert_eq!(body, std::fs::read(path).unwrap().as_slice());

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replication_routes_409_without_persistence() {
    let service = Arc::new(Service::builder(padded_graph()).workers(1).build());
    let server = Server::builder(service).spawn().unwrap();
    let addr = server.local_addr();
    for path in ["/replication/stream", "/replication/snapshot"] {
        let response = get(addr, path);
        assert_eq!(status_of(&response), 409, "{path}: {response}");
        assert_eq!(error_code(&response), "persistence_disabled", "{path}");
    }
    // Wrong methods follow the 405 convention.
    for path in ["/replication/stream", "/replication/snapshot"] {
        let response = post(addr, path, "");
        assert_eq!(status_of(&response), 405, "{path}");
    }
    server.shutdown();
}

#[test]
fn a_follower_rejects_mutations_and_points_at_the_leader() {
    let service = Arc::new(Service::builder(padded_graph()).workers(1).build());
    service.set_replication_role(ReplicationRole::Follower);
    let server = Server::builder(Arc::clone(&service))
        .leader_url("http://leader.example:7878/")
        .spawn()
        .unwrap();
    let addr = server.local_addr();

    let body = r#"{"ops":[{"op":"add_node","kind":"author","label":"nope"}]}"#;
    let response = post(addr, "/admin/mutate", body);
    assert_eq!(status_of(&response), 409, "{response}");
    assert_eq!(error_code(&response), "not_leader");
    assert_eq!(
        header_of(&response, "Location"),
        Some("http://leader.example:7878/admin/mutate")
    );

    // Reads still work: a follower is a serving replica, not a mirror.
    let healthz = get(addr, "/healthz");
    assert_eq!(status_of(&healthz), 200);
    let v = banks_server::json::parse(body_of(&healthz)).unwrap();
    let replication = v.get("replication").expect("replication in healthz");
    assert_eq!(
        replication.get("role").and_then(|r| r.as_str()),
        Some("follower")
    );

    server.shutdown();
}

#[test]
fn admin_slo_replaces_and_upserts_specs_at_runtime() {
    let service = Arc::new(Service::builder(padded_graph()).workers(1).build());
    let baseline = service.slo_specs().len();
    assert!(baseline > 0, "defaults expected");
    let server = Server::builder(Arc::clone(&service)).spawn().unwrap();
    let addr = server.local_addr();

    // A single spec object upserts without disturbing the others.
    let one = r#"{"name":"replication_lag","metric":"replication_lag_ms","threshold":2500.0}"#;
    let response = post(addr, "/admin/slo", one);
    assert_eq!(status_of(&response), 200, "{response}");
    let v = banks_server::json::parse(body_of(&response)).unwrap();
    assert_eq!(
        v.get("upserted").and_then(|u| u.as_str()),
        Some("replication_lag")
    );
    assert_eq!(service.slo_specs().len(), baseline + 1);
    assert!(service
        .slo_specs()
        .iter()
        .any(|s| s.name == "replication_lag" && s.threshold == 2500.0));

    // A {"slos":[...]} body replaces the whole set.
    let replace =
        r#"{"slos":[{"name":"lag_only","metric":"replication_lag_ms","threshold":1000.0}]}"#;
    let response = post(addr, "/admin/slo", replace);
    assert_eq!(status_of(&response), 200, "{response}");
    let v = banks_server::json::parse(body_of(&response)).unwrap();
    assert_eq!(v.get("replaced").and_then(JsonValue::as_usize), Some(1));
    assert_eq!(service.slo_specs().len(), 1);
    assert_eq!(service.slo_specs()[0].name, "lag_only");

    // Malformed specs are rejected without touching the live set.
    let response = post(addr, "/admin/slo", r#"{"name":"broken"}"#);
    assert_eq!(status_of(&response), 400, "{response}");
    assert_eq!(error_code(&response), "invalid_slo_spec");
    assert_eq!(service.slo_specs().len(), 1);

    let response = post(addr, "/admin/slo", "not json");
    assert_eq!(status_of(&response), 400);

    // Wrong method follows the 405 convention.
    let response = get(addr, "/admin/slo");
    assert_eq!(status_of(&response), 405);

    server.shutdown();
}
