//! A dependency-free gzip encoder/decoder for response bodies.
//!
//! The workspace vendors no compression library, so this implements enough
//! of RFC 1951 itself: the encoder emits **fixed-Huffman** DEFLATE blocks
//! (BTYPE = 01) with greedy LZ77 matching over the standard 32 KiB window,
//! wrapped in an RFC 1952 gzip container.  Text payloads — Prometheus
//! expositions, JSON metrics, event pages — shrink to a fraction of their
//! size, and any standard gzip decoder (curl `--compressed`, Prometheus
//! itself) inflates the result byte-for-byte.
//!
//! [`gunzip`] is the matching inflater (stored + fixed-Huffman blocks,
//! CRC-verified), used by the integration tests and the CI smoke checks to
//! validate what the server actually sent.

/// LZ77 window size (RFC 1951 §2: distances up to 32 KiB).
const WINDOW: usize = 32 * 1024;
/// Shortest back-reference worth encoding.
const MIN_MATCH: usize = 3;
/// Longest encodable back-reference (length symbol 285).
const MAX_MATCH: usize = 258;
/// Hash-chain probes per position; bounds worst-case encode time.
const MAX_CHAIN: usize = 64;
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Length-code bases for symbols 257..=285 (RFC 1951 §3.2.5).
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
/// Extra bits carried by each length code.
const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Distance-code bases for symbols 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Extra bits carried by each distance code.
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// LSB-first bit accumulator (DEFLATE packs bits into bytes starting at the
/// least significant bit).
struct BitWriter {
    out: Vec<u8>,
    bitbuf: u64,
    nbits: u32,
}

impl BitWriter {
    fn new(out: Vec<u8>) -> Self {
        BitWriter {
            out,
            bitbuf: 0,
            nbits: 0,
        }
    }

    /// Writes `n` bits of `value`, least significant first.
    fn write_bits(&mut self, value: u64, n: u32) {
        self.bitbuf |= value << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.bitbuf & 0xff) as u8);
            self.bitbuf >>= 8;
            self.nbits -= 8;
        }
    }

    /// Writes a Huffman code: RFC 1951 codes are defined most-significant
    /// bit first, so the code is bit-reversed into the LSB-first stream.
    fn write_code(&mut self, code: u32, len: u32) {
        let mut rev = 0u64;
        for i in 0..len {
            rev |= (((code >> i) & 1) as u64) << (len - 1 - i);
        }
        self.write_bits(rev, len);
    }

    /// Flushes any partial byte (zero-padded) and returns the buffer.
    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.bitbuf & 0xff) as u8);
        }
        self.out
    }
}

/// The fixed literal/length code (RFC 1951 §3.2.6): `(code, bits)`.
fn lit_code(sym: u16) -> (u32, u32) {
    match sym {
        0..=143 => (0x30 + sym as u32, 8),
        144..=255 => (0x190 + (sym as u32 - 144), 9),
        256..=279 => (sym as u32 - 256, 7),
        _ => (0xC0 + (sym as u32 - 280), 8),
    }
}

/// The length symbol (257..=285) covering `len`, by table scan.
fn length_symbol(len: usize) -> usize {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    let mut sym = 28;
    for i in 0..28 {
        if (len as u16) < LEN_BASE[i + 1] {
            sym = i;
            break;
        }
    }
    sym
}

/// The distance symbol (0..=29) covering `dist`.
fn dist_symbol(dist: usize) -> usize {
    let mut sym = 29;
    for i in 0..29 {
        if (dist as u16) < DIST_BASE[i + 1] {
            sym = i;
            break;
        }
    }
    sym
}

fn hash3(data: &[u8], pos: usize) -> usize {
    let h = (data[pos] as u32)
        .wrapping_mul(0x9E37)
        .wrapping_add((data[pos + 1] as u32).wrapping_mul(0x79B9))
        .wrapping_add((data[pos + 2] as u32).wrapping_mul(0x0151));
    (h as usize) & (HASH_SIZE - 1)
}

/// Wraps `data` in a gzip member containing one fixed-Huffman DEFLATE
/// block (greedy LZ77, 32 KiB window).
///
/// ```
/// let framed = banks_server::gzip::compress(b"hello hello hello hello");
/// assert_eq!(&framed[..2], &[0x1f, 0x8b], "gzip magic");
/// assert_eq!(
///     banks_server::gzip::gunzip(&framed).unwrap(),
///     b"hello hello hello hello"
/// );
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    // 10-byte header: magic, CM=8 (deflate), no flags, zero mtime,
    // no extra flags, OS=255 (unknown).
    let mut header = Vec::with_capacity(data.len() / 2 + 32);
    header.extend_from_slice(&[0x1f, 0x8b, 0x08, 0x00, 0, 0, 0, 0, 0x00, 0xff]);
    let mut w = BitWriter::new(header);

    // One final fixed-Huffman block: BFINAL=1, BTYPE=01.
    w.write_bits(0b1, 1);
    w.write_bits(0b01, 2);

    let mut head = vec![-1i64; HASH_SIZE];
    let mut prev = vec![-1i64; data.len()];
    let mut pos = 0usize;
    while pos < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if pos + MIN_MATCH <= data.len() {
            let h = hash3(data, pos);
            let mut candidate = head[h];
            let mut chain = 0;
            let limit = pos.saturating_sub(WINDOW);
            while candidate >= 0 && (candidate as usize) >= limit && chain < MAX_CHAIN {
                let c = candidate as usize;
                let max = (data.len() - pos).min(MAX_MATCH);
                let mut len = 0usize;
                while len < max && data[c + len] == data[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = pos - c;
                    if len == MAX_MATCH {
                        break;
                    }
                }
                candidate = prev[c];
                chain += 1;
            }
            // Insert the current position into its chain.
            prev[pos] = head[h];
            head[h] = pos as i64;
        }
        if best_len >= MIN_MATCH {
            let lsym = length_symbol(best_len);
            let (code, bits) = lit_code(257 + lsym as u16);
            w.write_code(code, bits);
            let extra = LEN_EXTRA[lsym] as u32;
            if extra > 0 {
                w.write_bits((best_len as u64) - LEN_BASE[lsym] as u64, extra);
            }
            let dsym = dist_symbol(best_dist);
            w.write_code(dsym as u32, 5);
            let dextra = DIST_EXTRA[dsym] as u32;
            if dextra > 0 {
                w.write_bits((best_dist as u64) - DIST_BASE[dsym] as u64, dextra);
            }
            // Index the skipped positions so later matches can reach them.
            #[allow(clippy::needless_range_loop)] // `p` indexes `prev`, `head`, and `data`
            for p in pos + 1..(pos + best_len).min(data.len().saturating_sub(MIN_MATCH - 1)) {
                let h = hash3(data, p);
                prev[p] = head[h];
                head[h] = p as i64;
            }
            pos += best_len;
        } else {
            let (code, bits) = lit_code(data[pos] as u16);
            w.write_code(code, bits);
            pos += 1;
        }
    }
    // End-of-block symbol 256.
    let (code, bits) = lit_code(256);
    w.write_code(code, bits);

    let mut out = w.finish();
    // Trailer: CRC-32 of the uncompressed data, then its length mod 2^32.
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// LSB-first bit reader over a byte slice.
struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bitbuf: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bitbuf: 0,
            nbits: 0,
        }
    }

    fn read_bits(&mut self, n: u32) -> Result<u64, String> {
        while self.nbits < n {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or_else(|| "truncated deflate stream".to_string())?;
            self.bitbuf |= (byte as u64) << self.nbits;
            self.nbits += 8;
            self.pos += 1;
        }
        let v = self.bitbuf & ((1 << n) - 1);
        self.bitbuf >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Reads one bit into the MSB-first accumulator the Huffman decoders
    /// walk (codes are defined most-significant bit first).
    fn read_code_bit(&mut self, acc: u32) -> Result<u32, String> {
        Ok((acc << 1) | self.read_bits(1)? as u32)
    }

    /// Discards the partial byte, returning to a byte boundary (stored
    /// blocks are byte-aligned).
    fn align(&mut self) {
        self.bitbuf = 0;
        self.nbits = 0;
    }
}

/// Decodes one fixed literal/length symbol (the inverse of [`lit_code`]).
fn read_lit_symbol(r: &mut BitReader) -> Result<u16, String> {
    let mut acc = 0u32;
    for _ in 0..7 {
        acc = r.read_code_bit(acc)?;
    }
    if acc <= 0x17 {
        return Ok(256 + acc as u16); // 7-bit codes: 256..=279
    }
    acc = r.read_code_bit(acc)?;
    match acc {
        0x30..=0xBF => Ok(acc as u16 - 0x30), // 8-bit: literals 0..=143
        0xC0..=0xC7 => Ok(280 + (acc as u16 - 0xC0)), // 8-bit: 280..=287
        _ => {
            acc = r.read_code_bit(acc)?;
            match acc {
                0x190..=0x1FF => Ok(144 + (acc as u16 - 0x190)), // 9-bit: 144..=255
                _ => Err(format!("invalid fixed-huffman code {acc:#x}")),
            }
        }
    }
}

/// Inflates a gzip member produced by [`compress`] (or any encoder using
/// stored and/or fixed-Huffman blocks), verifying the CRC-32 and length
/// trailer.  Dynamic-Huffman blocks are rejected — this server never emits
/// them, and the decoder exists to validate this server's output.
pub fn gunzip(gz: &[u8]) -> Result<Vec<u8>, String> {
    if gz.len() < 18 {
        return Err("too short for a gzip member".to_string());
    }
    if gz[..2] != [0x1f, 0x8b] || gz[2] != 0x08 {
        return Err("not a gzip deflate member".to_string());
    }
    if gz[3] != 0 {
        return Err("gzip FLG bits unsupported".to_string());
    }
    let body = &gz[10..gz.len() - 8];
    let mut r = BitReader::new(body);
    let mut out = Vec::new();
    loop {
        let bfinal = r.read_bits(1)?;
        let btype = r.read_bits(2)?;
        match btype {
            0b00 => {
                r.align();
                let pos = r.pos;
                if pos + 4 > body.len() {
                    return Err("truncated stored block header".to_string());
                }
                let len = u16::from_le_bytes([body[pos], body[pos + 1]]) as usize;
                let nlen = u16::from_le_bytes([body[pos + 2], body[pos + 3]]);
                if !nlen != len as u16 {
                    return Err("stored block NLEN mismatch".to_string());
                }
                let start = pos + 4;
                if start + len > body.len() {
                    return Err("truncated stored block".to_string());
                }
                out.extend_from_slice(&body[start..start + len]);
                r.pos = start + len;
            }
            0b01 => loop {
                let sym = read_lit_symbol(&mut r)?;
                match sym {
                    0..=255 => out.push(sym as u8),
                    256 => break,
                    257..=285 => {
                        let lsym = (sym - 257) as usize;
                        let len =
                            LEN_BASE[lsym] as usize + r.read_bits(LEN_EXTRA[lsym] as u32)? as usize;
                        let mut dacc = 0u32;
                        for _ in 0..5 {
                            dacc = r.read_code_bit(dacc)?;
                        }
                        let dsym = dacc as usize;
                        if dsym >= 30 {
                            return Err(format!("invalid distance code {dsym}"));
                        }
                        let dist = DIST_BASE[dsym] as usize
                            + r.read_bits(DIST_EXTRA[dsym] as u32)? as usize;
                        if dist > out.len() {
                            return Err("back-reference before stream start".to_string());
                        }
                        // Byte-at-a-time: the match may overlap its source.
                        let from = out.len() - dist;
                        for i in 0..len {
                            let byte = out[from + i];
                            out.push(byte);
                        }
                    }
                    _ => return Err(format!("invalid length symbol {sym}")),
                }
            },
            0b10 => return Err("dynamic-huffman blocks unsupported".to_string()),
            _ => return Err("reserved block type".to_string()),
        }
        if bfinal == 1 {
            break;
        }
    }
    let t = &gz[gz.len() - 8..];
    let crc = u32::from_le_bytes([t[0], t[1], t[2], t[3]]);
    let isize = u32::from_le_bytes([t[4], t[5], t[6], t[7]]);
    if crc != crc32(&out) {
        return Err("trailer CRC mismatch".to_string());
    }
    if isize != out.len() as u32 {
        return Err("trailer length mismatch".to_string());
    }
    Ok(out)
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xff) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

/// The byte-at-a-time CRC-32 lookup table, built at compile time.
static CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Reference values from the IEEE CRC-32 everyone implements.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn roundtrips_small_payloads() {
        for payload in [&b""[..], b"x", b"hello world", &[0u8; 1000]] {
            assert_eq!(gunzip(&compress(payload)).unwrap(), payload);
        }
    }

    #[test]
    fn emits_fixed_huffman_not_stored_blocks() {
        let framed = compress(b"abcabcabcabc");
        // First deflate byte: BFINAL=1 (bit 0), BTYPE=01 (bits 1-2).
        assert_eq!(framed[10] & 0b111, 0b011, "final fixed-huffman block");
    }

    #[test]
    fn repetitive_text_actually_shrinks() {
        let payload = "banks_queries_submitted_total 42\n".repeat(200);
        let framed = compress(payload.as_bytes());
        assert!(
            framed.len() < payload.len() / 4,
            "{} bytes compressed to {}, expected real compression",
            payload.len(),
            framed.len()
        );
        assert_eq!(gunzip(&framed).unwrap(), payload.as_bytes());
    }

    #[test]
    fn roundtrips_binary_and_boundary_lengths() {
        // Lengths around MIN_MATCH/MAX_MATCH and the window, pseudo-random
        // bytes (mostly incompressible) and highly repetitive runs.
        let mut seed = 0x2545_F491u32;
        let mut rand_byte = move || {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            (seed >> 24) as u8
        };
        for len in [2usize, 3, 4, 257, 258, 259, 300, 40_000] {
            let random: Vec<u8> = (0..len).map(|_| rand_byte()).collect();
            assert_eq!(gunzip(&compress(&random)).unwrap(), random, "len {len}");
            let runs: Vec<u8> = (0..len).map(|i| (i / 97) as u8).collect();
            assert_eq!(gunzip(&compress(&runs)).unwrap(), runs, "runs {len}");
        }
    }

    #[test]
    fn overlapping_backreferences_roundtrip() {
        // dist < len forces the classic overlapping-copy path.
        let payload = b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaab";
        assert_eq!(gunzip(&compress(payload)).unwrap(), payload);
    }

    #[test]
    fn gunzip_rejects_corruption() {
        let mut framed = compress(b"hello world, hello world");
        assert!(gunzip(&framed[..5]).is_err(), "truncated header");
        let last = framed.len() - 1;
        framed[last] ^= 0xff; // ISIZE
        assert!(gunzip(&framed).is_err(), "length mismatch detected");
        let mut framed = compress(b"hello world, hello world");
        framed[12] ^= 0x55; // mangle compressed data
        assert!(gunzip(&framed).is_err(), "CRC or code corruption detected");
    }

    #[test]
    fn gunzip_still_inflates_stored_blocks() {
        // Hand-built stored-block member (the pre-PR-9 wire format).
        let payload = b"stored block payload";
        let mut gz = vec![0x1f, 0x8b, 0x08, 0x00, 0, 0, 0, 0, 0x00, 0xff];
        gz.push(0x01); // BFINAL=1, BTYPE=00
        let len = payload.len() as u16;
        gz.extend_from_slice(&len.to_le_bytes());
        gz.extend_from_slice(&(!len).to_le_bytes());
        gz.extend_from_slice(payload);
        gz.extend_from_slice(&crc32(payload).to_le_bytes());
        gz.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        assert_eq!(gunzip(&gz).unwrap(), payload);
    }
}
