//! A dependency-free gzip encoder for response bodies.
//!
//! The workspace vendors no compression library, so this wraps the payload
//! in a *stored* (uncompressed) DEFLATE stream inside a gzip container:
//! RFC 1952 header + trailer around RFC 1951 stored blocks.  Stored blocks
//! add ~5 bytes per 64 KiB — the point is not to shrink the body but to
//! satisfy scrapers that unconditionally send `Accept-Encoding: gzip` and
//! expect the server to honour it.  Any standard gzip decoder (curl
//! `--compressed`, Prometheus itself) inflates the result byte-for-byte.

/// Largest payload of one DEFLATE stored block (LEN is a 16-bit field).
const MAX_STORED_BLOCK: usize = 65_535;

/// Wraps `data` in a gzip member containing stored DEFLATE blocks.
///
/// ```
/// let framed = banks_server::gzip::compress(b"hello");
/// assert_eq!(&framed[..2], &[0x1f, 0x8b], "gzip magic");
/// assert!(framed.len() >= 5 + 18, "header + trailer + block framing");
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    // 10-byte header: magic, CM=8 (deflate), no flags, zero mtime,
    // no extra flags, OS=255 (unknown).
    let mut out = Vec::with_capacity(data.len() + 18 + 5 * (data.len() / MAX_STORED_BLOCK + 1));
    out.extend_from_slice(&[0x1f, 0x8b, 0x08, 0x00, 0, 0, 0, 0, 0x00, 0xff]);

    // DEFLATE stored blocks: BFINAL|BTYPE=00 byte, then LEN/NLEN (LE).
    // An empty payload still needs one (final, zero-length) block.
    let mut chunks = data.chunks(MAX_STORED_BLOCK).peekable();
    if data.is_empty() {
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xff, 0xff]);
    }
    while let Some(chunk) = chunks.next() {
        let bfinal = if chunks.peek().is_none() { 1 } else { 0 };
        let len = chunk.len() as u16;
        out.push(bfinal);
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }

    // Trailer: CRC-32 of the uncompressed data, then its length mod 2^32.
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xff) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

/// The byte-at-a-time CRC-32 lookup table, built at compile time.
static CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal inflater for *stored* DEFLATE blocks — enough to verify
    /// our own framing without a compression dependency.
    fn inflate_stored(gz: &[u8]) -> Vec<u8> {
        assert_eq!(&gz[..2], &[0x1f, 0x8b], "magic");
        assert_eq!(gz[2], 0x08, "deflate method");
        assert_eq!(gz[3], 0x00, "no flags, so the header is 10 bytes");
        let mut pos = 10;
        let mut out = Vec::new();
        loop {
            let bfinal = gz[pos] & 1;
            assert_eq!(gz[pos] >> 1, 0, "stored block type");
            let len = u16::from_le_bytes([gz[pos + 1], gz[pos + 2]]) as usize;
            let nlen = u16::from_le_bytes([gz[pos + 3], gz[pos + 4]]);
            assert_eq!(!nlen, len as u16, "NLEN is the ones' complement");
            pos += 5;
            out.extend_from_slice(&gz[pos..pos + len]);
            pos += len;
            if bfinal == 1 {
                break;
            }
        }
        let crc = u32::from_le_bytes([gz[pos], gz[pos + 1], gz[pos + 2], gz[pos + 3]]);
        let isize = u32::from_le_bytes([gz[pos + 4], gz[pos + 5], gz[pos + 6], gz[pos + 7]]);
        assert_eq!(crc, crc32(&out), "trailer CRC matches payload");
        assert_eq!(isize, out.len() as u32, "trailer length matches payload");
        assert_eq!(pos + 8, gz.len(), "nothing after the trailer");
        out
    }

    #[test]
    fn crc32_known_vectors() {
        // Reference values from the IEEE CRC-32 everyone implements.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn roundtrips_small_payloads() {
        for payload in [&b""[..], b"x", b"hello world", &[0u8; 1000]] {
            assert_eq!(inflate_stored(&compress(payload)), payload);
        }
    }

    #[test]
    fn roundtrips_multi_block_payloads() {
        // Crosses the 64 KiB stored-block bound twice.
        let payload: Vec<u8> = (0..150_000u32).map(|i| (i % 251) as u8).collect();
        let framed = compress(&payload);
        assert_eq!(inflate_stored(&framed), payload);
    }
}
