//! The Prometheus exposition of [`banks_service::ServiceMetrics`].
//!
//! `GET /metrics?format=prometheus` renders the same snapshot the JSON
//! document carries, as text format 0.0.4: counters suffixed `_total`,
//! latency distributions as `summary` families in seconds (quantile
//! samples plus `_sum`/`_count`), per-tenant rows as `tenant`-labeled
//! series, and the cost-model calibration table as
//! `engine`/`origin_bucket`-labeled series.  The writer itself
//! ([`banks_obs::PromText`]) deduplicates `HELP`/`TYPE` lines and refuses
//! duplicate series, so the output always satisfies the scrape grammar.

use banks_obs::PromText;
use banks_service::{Health, LatencySummary, ServiceMetrics};

/// Renders `m` as a complete Prometheus text-format document.
pub fn render(m: &ServiceMetrics) -> String {
    let mut p = PromText::new();

    p.counter(
        "banks_queries_submitted_total",
        "Queries accepted by submit (cache hits included).",
        m.submitted,
    );
    p.counter(
        "banks_queries_rejected_total",
        "Queries rejected by admission control (queue full).",
        m.rejected,
    );
    p.counter(
        "banks_quota_rejected_total",
        "Submissions rejected by per-tenant quotas, all tenants.",
        m.quota_rejected,
    );
    p.counter(
        "banks_queries_executed_total",
        "Queries that ran on a worker (cache misses).",
        m.executed,
    );
    p.counter(
        "banks_queries_completed_total",
        "Queries that finished, cache hits included.",
        m.completed,
    );
    p.counter(
        "banks_queries_cancelled_total",
        "Queries that ended cancelled.",
        m.cancelled,
    );
    p.counter(
        "banks_queries_truncated_total",
        "Queries cut short by a safety cap or work budget.",
        m.truncated,
    );
    p.counter(
        "banks_cache_hits_total",
        "Queries answered entirely from the result cache.",
        m.cache_hits,
    );
    p.gauge(
        "banks_cache_hit_rate",
        "Fraction of accepted queries served from the cache.",
        m.cache_hit_rate(),
    );
    p.counter(
        "banks_answers_delivered_total",
        "Ranked answers streamed to handles.",
        m.answers_delivered,
    );
    p.counter(
        "banks_nodes_explored_total",
        "Nodes explored across all executed queries.",
        m.nodes_explored,
    );
    p.gauge(
        "banks_queries_queued",
        "Queries currently waiting in the admission scheduler.",
        m.queued as f64,
    );
    p.counter(
        "banks_graph_swaps_total",
        "Graph versions swapped in since start.",
        m.swaps,
    );
    p.counter(
        "banks_mutation_batches_total",
        "Mutation batches applied.",
        m.mutation_batches,
    );
    p.counter(
        "banks_mutation_ops_accepted_total",
        "Mutation ops accepted across all applied batches.",
        m.mutation_ops_accepted,
    );
    p.counter(
        "banks_mutation_ops_rejected_total",
        "Mutation ops rejected across all applied batches.",
        m.mutation_ops_rejected,
    );
    p.gauge(
        "banks_graph_epoch",
        "Epoch of the graph currently being served.",
        m.epoch as f64,
    );
    p.gauge(
        "banks_persistence_enabled",
        "Whether durable persistence is enabled (1) or off (0).",
        if m.persistence_enabled { 1.0 } else { 0.0 },
    );
    p.gauge(
        "banks_last_checkpoint_epoch",
        "Epoch of the most recent on-disk snapshot.",
        m.last_checkpoint_epoch as f64,
    );
    p.gauge(
        "banks_wal_records",
        "Mutation batches in the WAL since the last checkpoint.",
        m.wal_records as f64,
    );
    p.gauge(
        "banks_wal_bytes",
        "Size of the write-ahead log in bytes.",
        m.wal_bytes as f64,
    );
    p.counter(
        "banks_checkpoints_total",
        "Checkpoints taken since start (boot checkpoint included).",
        m.checkpoints,
    );
    p.gauge_labeled(
        "banks_replication_role",
        "Replication role of this process (the labeled role reads 1).",
        &[("role", m.replication.role.as_str())],
        1.0,
    );
    p.gauge(
        "banks_replication_leader_epoch",
        "Newest leader epoch this process has heard of (followers only).",
        m.replication.leader_epoch as f64,
    );
    p.gauge(
        "banks_replication_applied_epoch",
        "Newest leader epoch applied locally (followers only).",
        m.replication.applied_epoch as f64,
    );
    p.gauge(
        "banks_replication_lag_records",
        "Announced leader records not yet applied locally.",
        m.replication.lag_records as f64,
    );
    p.gauge(
        "banks_replication_lag_ms",
        "How long this follower has continuously been behind, in ms.",
        m.replication.lag_ms as f64,
    );
    p.gauge(
        "banks_mutation_log_entries",
        "Applied batches held in the in-memory mutation log ring.",
        m.mutation_log_entries as f64,
    );
    p.counter(
        "banks_mutation_log_dropped_total",
        "Applied batches dropped from the mutation log ring.",
        m.mutation_log_dropped,
    );
    p.counter(
        "banks_slow_queries_total",
        "Queries whose latency crossed the slow-query threshold.",
        m.slow_queries,
    );
    p.gauge(
        "banks_health_state",
        "Overall SLO health: 0 ok, 1 degraded, 2 breached.",
        health_value(m.health),
    );
    for row in &m.slo {
        let labels = [("slo", row.name.as_str())];
        p.gauge_labeled(
            "banks_slo_state",
            "Per-objective SLO state: 0 ok, 1 degraded, 2 breached.",
            &labels,
            health_value(row.state),
        );
        p.gauge_labeled(
            "banks_slo_value",
            "Latest finite sample of the series each SLO constrains.",
            &labels,
            row.value,
        );
        p.gauge_labeled(
            "banks_slo_burn_fast",
            "Error-budget burn rate over the fast window.",
            &labels,
            row.burn_fast,
        );
        p.gauge_labeled(
            "banks_slo_burn_slow",
            "Error-budget burn rate over the slow window.",
            &labels,
            row.burn_slow,
        );
    }
    p.counter(
        "banks_trace_ring_dropped_total",
        "Query traces evicted from the debug trace ring.",
        m.trace_ring_dropped,
    );
    p.counter(
        "banks_event_log_dropped_total",
        "Structured events evicted from the event log ring.",
        m.event_log_dropped,
    );
    p.gauge(
        "banks_event_log_last_id",
        "Id of the most recently emitted structured event.",
        m.event_log_last_id as f64,
    );
    p.counter(
        "banks_watchdog_overruns_total",
        "Queries whose measured work blew past the watchdog factor.",
        m.watchdog_overruns,
    );
    p.counter(
        "banks_watchdog_queue_trips_total",
        "Times the admission-queue saturation watchdog tripped.",
        m.watchdog_queue_trips,
    );
    p.gauge(
        "banks_queue_saturation",
        "Admission queue occupancy as a fraction of its capacity.",
        m.queue_saturation,
    );
    p.gauge(
        "banks_shards",
        "Shards the served graph is partitioned into (1 = unsharded).",
        m.shards as f64,
    );
    for s in &m.shard_stats {
        let shard = s.shard.to_string();
        let labels = [("shard", shard.as_str())];
        p.gauge_labeled(
            "banks_shard_owned_nodes",
            "Nodes owned by each shard.",
            &labels,
            s.owned_nodes as f64,
        );
        p.gauge_labeled(
            "banks_shard_replica_nodes",
            "Boundary replica nodes held by each shard.",
            &labels,
            s.replica_nodes as f64,
        );
        p.gauge_labeled(
            "banks_shard_owned_edges",
            "Edges whose source is owned by each shard.",
            &labels,
            s.owned_edges as f64,
        );
        p.gauge_labeled(
            "banks_shard_cut_edges",
            "Edges crossing out of each shard (replicated at the boundary).",
            &labels,
            s.cut_edges as f64,
        );
    }

    summary(
        &mut p,
        "banks_queue_wait_seconds",
        "Queue wait (admission to worker pickup) across executed queries.",
        &m.queue_wait,
    );
    summary(
        &mut p,
        "banks_ttfa_seconds",
        "Time to first answer across executed queries that answered.",
        &m.ttfa,
    );
    summary(
        &mut p,
        "banks_mutation_apply_seconds",
        "Apply latency of successful mutation batches.",
        &m.mutation_apply,
    );
    summary(
        &mut p,
        "banks_checkpoint_seconds",
        "Latency of successful checkpoints.",
        &m.checkpoint_latency,
    );
    summary(
        &mut p,
        "banks_wal_fsync_seconds",
        "Latency of WAL fsyncs.",
        &m.wal_fsync,
    );

    for t in &m.tenants {
        let labels = [("tenant", t.tenant.as_str())];
        p.counter_labeled(
            "banks_tenant_executed_total",
            "Queries executed per tenant.",
            &labels,
            t.executed,
        );
        p.counter_labeled(
            "banks_tenant_quota_rejected_total",
            "Quota rejections per tenant.",
            &labels,
            t.quota_rejected,
        );
        p.gauge_labeled(
            "banks_tenant_mean_queue_wait_seconds",
            "Mean queue wait per tenant.",
            &labels,
            t.mean_queue_wait.as_secs_f64(),
        );
        p.gauge_labeled(
            "banks_tenant_max_queue_wait_seconds",
            "Worst queue wait per tenant.",
            &labels,
            t.max_queue_wait.as_secs_f64(),
        );
        if let Some(rate) = t.quota_rate_per_sec {
            p.gauge_labeled(
                "banks_tenant_quota_rate_per_sec",
                "Configured quota refill rate per tenant.",
                &labels,
                rate,
            );
        }
        if let Some(burst) = t.quota_burst {
            p.gauge_labeled(
                "banks_tenant_quota_burst",
                "Configured quota burst capacity per tenant.",
                &labels,
                burst as f64,
            );
        }
    }

    for row in &m.calibration {
        let bucket = row.origin_bucket.to_string();
        let labels = [("engine", row.engine.as_str()), ("origin_bucket", &bucket)];
        p.counter_labeled(
            "banks_calibration_samples_total",
            "Cost-calibration samples per (engine, origin-size bucket).",
            &labels,
            row.samples,
        );
        p.gauge_labeled(
            "banks_calibration_mean_nodes_explored",
            "Mean measured nodes explored per (engine, origin-size bucket).",
            &labels,
            row.mean_nodes_explored as f64,
        );
        p.gauge_labeled(
            "banks_calibration_correction",
            "Learned measured/estimated work correction factor.",
            &labels,
            row.correction,
        );
    }

    p.render()
}

/// Health as a numeric gauge level (severity order, alert-rule friendly).
fn health_value(h: Health) -> f64 {
    match h {
        Health::Ok => 0.0,
        Health::Degraded => 1.0,
        Health::Breached => 2.0,
    }
}

fn summary(p: &mut PromText, name: &str, help: &str, s: &LatencySummary) {
    p.summary_seconds(
        name,
        help,
        s.count,
        s.mean,
        &[("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_service::{CalibrationRow, ShardStats, SloRow, TenantMetrics};
    use std::collections::HashSet;
    use std::time::Duration;

    fn populated() -> ServiceMetrics {
        ServiceMetrics {
            submitted: 10,
            executed: 7,
            cache_hits: 3,
            slow_queries: 1,
            persistence_enabled: true,
            shards: 2,
            shard_stats: vec![ShardStats {
                shard: 0,
                owned_nodes: 40,
                replica_nodes: 6,
                owned_edges: 90,
                cut_edges: 12,
            }],
            tenants: vec![TenantMetrics {
                tenant: "acme".to_string(),
                executed: 5,
                quota_rejected: 2,
                mean_queue_wait: Duration::from_micros(120),
                max_queue_wait: Duration::from_micros(900),
                quota_rate_per_sec: Some(50.0),
                quota_burst: Some(100),
            }],
            calibration: vec![CalibrationRow {
                engine: "bidirectional".to_string(),
                origin_bucket: 3,
                origin_lo: 8,
                origin_hi: 15,
                samples: 4,
                mean_nodes_explored: 220,
                correction: 1.4,
            }],
            health: Health::Degraded,
            slo: vec![SloRow {
                name: "ttfa_p99".to_string(),
                metric: "ttfa_p99_us".to_string(),
                threshold: 250_000.0,
                value: 310_000.0,
                burn_fast: 12.5,
                burn_slow: 0.5,
                state: Health::Degraded,
            }],
            trace_ring_dropped: 4,
            event_log_dropped: 2,
            event_log_last_id: 17,
            watchdog_overruns: 1,
            watchdog_queue_trips: 1,
            queue_saturation: 0.25,
            ..ServiceMetrics::default()
        }
    }

    #[test]
    fn grammar_holds_for_a_populated_snapshot() {
        let text = render(&populated());
        assert!(text.ends_with('\n'));
        let mut seen_series = HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(
                seen_series.insert(series.to_string()),
                "duplicate series {series}"
            );
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "bad value in {line}"
            );
        }
        // every TYPE line names a family some sample belongs to
        for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let family = line.split(' ').nth(2).unwrap();
            assert!(
                seen_series
                    .iter()
                    .any(|s| s.starts_with(family) || s == family),
                "family {family} has no samples"
            );
        }
    }

    #[test]
    fn covers_tenants_summaries_and_calibration() {
        let text = render(&populated());
        assert!(text.contains("banks_queries_submitted_total 10"));
        assert!(text.contains("banks_tenant_executed_total{tenant=\"acme\"} 5"));
        assert!(text.contains("banks_tenant_quota_rate_per_sec{tenant=\"acme\"} 50"));
        assert!(text.contains("banks_queue_wait_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("banks_ttfa_seconds_count 0"));
        assert!(text.contains(
            "banks_calibration_correction{engine=\"bidirectional\",origin_bucket=\"3\"} 1.4"
        ));
        assert!(text.contains("banks_persistence_enabled 1"));
        assert!(text.contains("banks_shards 2"));
        assert!(text.contains("banks_shard_owned_nodes{shard=\"0\"} 40"));
        assert!(text.contains("banks_shard_cut_edges{shard=\"0\"} 12"));
    }

    #[test]
    fn covers_replication_series() {
        let mut m = populated();
        m.replication = banks_service::ReplicationStatus {
            role: banks_service::ReplicationRole::Follower,
            leader_epoch: 12,
            applied_epoch: 10,
            lag_records: 2,
            lag_ms: 350,
        };
        let text = render(&m);
        assert!(text.contains("banks_replication_role{role=\"follower\"} 1"));
        assert!(text.contains("banks_replication_leader_epoch 12"));
        assert!(text.contains("banks_replication_applied_epoch 10"));
        assert!(text.contains("banks_replication_lag_records 2"));
        assert!(text.contains("banks_replication_lag_ms 350"));
    }

    #[test]
    fn covers_health_slo_and_overflow_series() {
        let text = render(&populated());
        assert!(text.contains("banks_health_state 1"));
        assert!(text.contains("banks_slo_state{slo=\"ttfa_p99\"} 1"));
        assert!(text.contains("banks_slo_value{slo=\"ttfa_p99\"} 310000"));
        assert!(text.contains("banks_slo_burn_fast{slo=\"ttfa_p99\"} 12.5"));
        assert!(text.contains("banks_slo_burn_slow{slo=\"ttfa_p99\"} 0.5"));
        assert!(text.contains("banks_trace_ring_dropped_total 4"));
        assert!(text.contains("banks_event_log_dropped_total 2"));
        assert!(text.contains("banks_event_log_last_id 17"));
        assert!(text.contains("banks_watchdog_overruns_total 1"));
        assert!(text.contains("banks_watchdog_queue_trips_total 1"));
        assert!(text.contains("banks_queue_saturation 0.25"));
    }
}
