//! Request dispatch: the endpoint surface over [`banks_service::Service`].
//!
//! | endpoint | behaviour |
//! |----------|-----------|
//! | `POST /query` (also `GET`) | submit a [`QuerySpec`], stream `answer` events as SSE (each carrying its 1-based rank as the SSE `id:`, so `Last-Event-ID` resumes mid-stream), finish with a `finished` event (plus a `trace` event when `X-Banks-Trace` was sent) |
//! | `GET /metrics` | [`banks_service::ServiceMetrics`] as JSON; `?format=prometheus` renders text format 0.0.4; `Accept-Encoding: gzip` is honoured |
//! | `GET /debug/slow` | recent slow-query traces (newest first; `?limit=N`) |
//! | `GET /debug/trace/<id>` | one retained trace by query id (`7` or `q7`) |
//! | `GET /debug/slo` | the stored SLO burn-rate report: overall health + per-objective rows |
//! | `GET /debug/events` | a page of the structured event log (`?since=<id>&limit=N`) |
//! | `GET /debug/events/tail` | live SSE tail of the event log; `Last-Event-ID` (or `?since=`) resumes after a disconnect |
//! | `POST /admin/swap` | rebuild and atomically swap the served snapshot |
//! | `POST /admin/mutate` | apply a JSON [`MutationBatch`] incrementally: new epoch + per-op accept/reject; 409 + `Location` on a follower |
//! | `POST /admin/checkpoint` | force a durable snapshot and truncate the WAL |
//! | `POST /admin/slo` | replace (`{"slos":[…]}` / bare array) or upsert (single spec object) the SLO set at runtime |
//! | `GET /replication/stream` | SSE tail of the leader WAL: `record` events (hex-encoded WAL record bytes, epoch as SSE `id:`), periodic `head` events, a terminal `bootstrap` event when the cursor is behind the truncation horizon; resume via `Last-Event-ID` or `?from_epoch=` |
//! | `GET /replication/snapshot` | the newest on-disk snapshot, verbatim (`X-Banks-Snapshot-Epoch` header) — follower bootstrap |
//! | `GET /healthz` | liveness probe (epoch, workers, shards, engines) + durability status + replication status + three-state SLO health |
//!
//! Tenant and priority travel as headers (`X-Banks-Tenant`,
//! `X-Banks-Priority`), so the PR-3 scheduler and the quota layer govern
//! remote traffic exactly as in-process traffic; `X-Banks-Trace` requests
//! a per-query phase trace, echoed back with the header's value as the
//! correlation reference.  Every failure maps to a structured JSON error
//! envelope with the appropriate status code: malformed requests → 400,
//! unknown engines (with their "did you mean" suggestion) → 404, quota
//! rejections → 429 + `Retry-After`, a full admission queue or shutdown →
//! 503.
//!
//! ## Keep-alive
//!
//! The non-streaming endpoints honour `Connection: keep-alive`: a client
//! sending the header may reuse the connection for up to
//! [`KEEPALIVE_MAX_REQUESTS`] requests, with [`KEEPALIVE_IDLE`] allowed
//! between them — a metrics scraper polls without a handshake per sample,
//! and an ingest pipeline streams many small mutation batches down one
//! connection.  SSE query streams occupy their connection anyway and
//! always close; error responses close.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use banks_core::json as corejson;
use banks_core::EmissionPolicy;
use banks_graph::{GraphMutation, MutationBatch, NodeId, OpEffect};
use banks_service::{
    encode_record, parse_slo_specs, GraphSnapshot, PersistError, Priority, QueryEvent, QueryResult,
    QuerySpec, RecvTimeout, ReplicationRole, Service, SubmitError,
};

use crate::http::{self, Limits, ParseError, Request};
use crate::json::{self, JsonValue};
use crate::sse::{SseWriter, STREAM_HEADER};

/// Bound on requests served over one kept-alive connection before the
/// server closes it (defence against a connection monopolised forever).
pub const KEEPALIVE_MAX_REQUESTS: usize = 64;

/// Idle time allowed between requests on a kept-alive connection (also
/// advertised in the `Keep-Alive` response header — one constant,
/// [`http::KEEPALIVE_IDLE_SECS`], drives both).
pub const KEEPALIVE_IDLE: Duration = Duration::from_secs(http::KEEPALIVE_IDLE_SECS);

/// A callback producing the next serving snapshot for `POST /admin/swap`
/// (e.g. re-extracting the graph from the system of record).
pub type GraphSource = Box<dyn Fn() -> GraphSnapshot + Send + Sync>;

/// Everything a connection handler needs, shared across the handler pool.
pub(crate) struct ServerContext {
    pub(crate) service: Arc<Service>,
    pub(crate) graph_source: Option<GraphSource>,
    pub(crate) limits: Limits,
    /// Where writes live when this process is a follower — the `Location`
    /// a rejected `POST /admin/mutate` points at.
    pub(crate) leader_url: Option<String>,
}

/// An error destined for the wire: status, machine-readable code, message,
/// extra envelope members and extra headers.
struct HttpError {
    status: u16,
    code: &'static str,
    message: String,
    extras: Vec<(&'static str, String)>,
    headers: Vec<(&'static str, String)>,
}

impl HttpError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        HttpError {
            status,
            code,
            message: message.into(),
            extras: Vec::new(),
            headers: Vec::new(),
        }
    }

    fn bad_request(message: impl Into<String>) -> Self {
        HttpError::new(400, "bad_request", message)
    }
}

/// Serves one connection: parse, dispatch, respond — looping while the
/// client asked for (and the endpoint allows) keep-alive, closing
/// otherwise.
pub(crate) fn handle_connection(ctx: &ServerContext, stream: TcpStream) {
    // TTFA survives the hop: answers must not sit in Nagle's buffer.
    let _ = stream.set_nodelay(true);
    // A peer that stops sending mid-request cannot pin a handler forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    // Nor can one that stops *reading*: a full send buffer (suspended
    // client, zero TCP window) fails the blocked write after this bound,
    // which the stream loop treats as a disconnect and cancels the query.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = &stream;

    let mut served = 0usize;
    loop {
        let request = match http::read_request(&mut reader, &ctx.limits) {
            Ok(request) => request,
            // Idle keep-alive connections end here: either an orderly close
            // or the idle read timeout surfacing as an I/O error.
            Err(ParseError::ConnectionClosed) | Err(ParseError::Io(_)) => return,
            Err(ParseError::BadRequest(msg)) => {
                respond_error(&mut writer, &HttpError::bad_request(msg), false);
                return;
            }
            Err(ParseError::HeadTooLarge) => {
                respond_error(
                    &mut writer,
                    &HttpError::new(431, "headers_too_large", "request head too large"),
                    false,
                );
                return;
            }
            Err(ParseError::BodyTooLarge) => {
                respond_error(
                    &mut writer,
                    &HttpError::new(413, "body_too_large", "request body too large"),
                    false,
                );
                return;
            }
        };
        served += 1;

        // Opt-in persistence, for non-streaming endpoints only: the client
        // must say `Connection: keep-alive`, and the request budget bounds
        // how long one connection can monopolise a handler.
        let wants_keep_alive = request.header("connection").is_some_and(|v| {
            v.split(',')
                .any(|t| t.trim().eq_ignore_ascii_case("keep-alive"))
        });
        let keep = wants_keep_alive
            && served < KEEPALIVE_MAX_REQUESTS
            && request.path != "/query"
            && request.path != "/debug/events/tail"
            && request.path != "/replication/stream";

        // Dispatch returns whether the connection actually stays open —
        // error responses always close (and say so on the wire), so the
        // loop must agree with what the responder wrote.
        let kept = match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                respond_healthz(ctx, &mut writer, keep);
                keep
            }
            ("GET", "/metrics") => {
                respond_metrics(ctx, &request, &mut writer, keep);
                keep
            }
            ("GET", "/debug/slow") => {
                respond_slow(ctx, &request, &mut writer, keep);
                keep
            }
            ("GET", "/debug/slo") => {
                respond_slo(ctx, &mut writer, keep);
                keep
            }
            ("GET", "/debug/events") => {
                respond_events(ctx, &request, &mut writer, keep);
                keep
            }
            ("GET", "/debug/events/tail") => {
                respond_events_tail(ctx, &request, &stream);
                false
            }
            ("GET", path) if path.starts_with("/debug/trace/") => {
                respond_trace(ctx, path, &mut writer, keep)
            }
            ("POST", "/query") | ("GET", "/query") => {
                respond_query(ctx, &request, &stream);
                false
            }
            ("POST", "/admin/swap") => {
                respond_swap(ctx, &mut writer, keep);
                keep
            }
            ("POST", "/admin/mutate") => respond_mutate(ctx, &request, &mut writer, keep),
            ("POST", "/admin/checkpoint") => respond_checkpoint(ctx, &mut writer, keep),
            ("POST", "/admin/slo") => respond_slo_update(ctx, &request, &mut writer, keep),
            ("GET", "/replication/stream") => {
                respond_replication_stream(ctx, &request, &stream);
                false
            }
            ("GET", "/replication/snapshot") => {
                respond_replication_snapshot(ctx, &mut writer, keep)
            }
            (_, "/healthz")
            | (_, "/metrics")
            | (_, "/query")
            | (_, "/debug/slow")
            | (_, "/debug/slo")
            | (_, "/debug/events")
            | (_, "/debug/events/tail")
            | (_, "/admin/swap")
            | (_, "/admin/mutate")
            | (_, "/admin/checkpoint")
            | (_, "/admin/slo")
            | (_, "/replication/stream")
            | (_, "/replication/snapshot") => {
                respond_error(
                    &mut writer,
                    &HttpError::new(
                        405,
                        "method_not_allowed",
                        format!("{} not allowed on {}", request.method, request.path),
                    ),
                    false,
                );
                false
            }
            (_, path) if path.starts_with("/debug/trace/") => {
                respond_error(
                    &mut writer,
                    &HttpError::new(
                        405,
                        "method_not_allowed",
                        format!("{} not allowed on {}", request.method, request.path),
                    ),
                    false,
                );
                false
            }
            (_, path) => {
                respond_error(
                    &mut writer,
                    &HttpError::new(404, "not_found", format!("no route for {path}")),
                    false,
                );
                false
            }
        };
        if !kept {
            return;
        }
        // The next request gets the (shorter) keep-alive idle budget.
        let _ = stream.set_read_timeout(Some(KEEPALIVE_IDLE));
    }
}

fn respond_error(w: &mut impl Write, error: &HttpError, keep_alive: bool) {
    let body = json::error_body(error.status, error.code, &error.message, &error.extras);
    let headers: Vec<(&str, &str)> = error
        .headers
        .iter()
        .map(|(n, v)| (*n, v.as_str()))
        .collect();
    let _ = http::write_response(
        w,
        error.status,
        &headers,
        "application/json",
        body.as_bytes(),
        keep_alive,
    );
}

fn respond_healthz(ctx: &ServerContext, w: &mut impl Write, keep_alive: bool) {
    let engines = json::string_array(&ctx.service.engine_names());
    // Durability fields are all-zero (and `persistence` false) when the
    // service runs without a data directory, so probes read one shape
    // either way.
    let durability = ctx.service.durability();
    // `status` stays the liveness verdict ("the process answers");
    // `health` is the SLO judgment ("the process answers *well*") — a
    // probe that only checks reachability keeps working unchanged.
    let body = format!(
        "{{\"status\":\"ok\",\"health\":\"{}\",\"epoch\":{},\"workers\":{},\"shards\":{},\
         \"engines\":{},\
         \"persistence\":{},\"last_checkpoint_epoch\":{},\"wal_records\":{},\
         \"wal_bytes\":{},\"replication\":{}}}",
        ctx.service.health().as_str(),
        ctx.service.epoch(),
        ctx.service.workers(),
        ctx.service.shards(),
        engines,
        durability.enabled,
        durability.last_checkpoint_epoch,
        durability.wal_records,
        durability.wal_bytes,
        json::replication(&ctx.service.replication_status()),
    );
    let _ = http::write_response(w, 200, &[], "application/json", body.as_bytes(), keep_alive);
}

/// `POST /admin/checkpoint`: write a durable snapshot of the serving
/// version and truncate the WAL.  409 when the service has no data
/// directory; 500 (with the typed message) when the write fails.  Returns
/// whether the connection stays open — error responses close it.
fn respond_checkpoint(ctx: &ServerContext, w: &mut impl Write, keep_alive: bool) -> bool {
    let started = Instant::now();
    match ctx.service.checkpoint() {
        Ok(epoch) => {
            let body = format!(
                "{{\"checkpointed\":true,\"epoch\":{epoch},\"checkpoint_us\":{}}}",
                started.elapsed().as_micros(),
            );
            let _ =
                http::write_response(w, 200, &[], "application/json", body.as_bytes(), keep_alive);
            keep_alive
        }
        Err(PersistError::Disabled) => {
            respond_error(
                w,
                &HttpError::new(
                    409,
                    "persistence_disabled",
                    "service is running without a data directory",
                ),
                false,
            );
            false
        }
        Err(e) => {
            respond_error(
                w,
                &HttpError::new(500, "checkpoint_failed", e.to_string()),
                false,
            );
            false
        }
    }
}

/// `POST /admin/slo`: reconfigure the SLO set at runtime.
///
/// A body with a `"slos"` array (or a bare array) **replaces** the whole
/// set; a single spec object **upserts** that one spec, keeping the other
/// objectives' burn-rate history.  Specs use the same JSON shape as
/// [`banks_service::ServiceBuilder::slos_from_path`].
fn respond_slo_update(
    ctx: &ServerContext,
    request: &Request,
    w: &mut impl Write,
    keep_alive: bool,
) -> bool {
    let body = match request.body_utf8() {
        Ok(body) if !body.trim().is_empty() => body,
        Ok(_) => {
            respond_error(
                w,
                &HttpError::bad_request("empty body (expected SLO spec JSON)"),
                false,
            );
            return false;
        }
        Err(e) => {
            respond_error(w, &HttpError::bad_request(e), false);
            return false;
        }
    };
    let value = match json::parse(body) {
        Ok(value) => value,
        Err(e) => {
            respond_error(
                w,
                &HttpError::bad_request(format!("invalid JSON body: {e}")),
                false,
            );
            return false;
        }
    };
    let replace = matches!(value, JsonValue::Array(_)) || value.get("slos").is_some();
    let text = if replace {
        body.to_string()
    } else {
        format!("[{body}]")
    };
    let specs = match parse_slo_specs(&text) {
        Ok(specs) => specs,
        Err(e) => {
            respond_error(w, &HttpError::new(400, "invalid_slo_spec", e), false);
            return false;
        }
    };
    let body = if replace {
        let count = specs.len();
        ctx.service.replace_slos(specs);
        format!("{{\"replaced\":{count},\"specs\":{count}}}")
    } else {
        let name = corejson::string(&specs[0].name);
        for spec in specs {
            ctx.service.upsert_slo(spec);
        }
        format!(
            "{{\"upserted\":{name},\"specs\":{}}}",
            ctx.service.slo_specs().len()
        )
    };
    let _ = http::write_response(w, 200, &[], "application/json", body.as_bytes(), keep_alive);
    keep_alive
}

/// Lowercase hex of `bytes` — the `payload` encoding of replication
/// `record` events (the exact WAL record bytes, CRC framing included, so
/// the follower re-verifies integrity end to end).
fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0x0f) as usize] as char);
    }
    out
}

/// The `head` event payload: where the leader is, where its truncation
/// horizon is, and how many WAL records lie beyond the follower's cursor.
fn replication_head_json(ctx: &ServerContext, checkpoint_epoch: u64, pending: usize) -> String {
    format!(
        "{{\"leader_epoch\":{},\"checkpoint_epoch\":{checkpoint_epoch},\"pending\":{pending}}}",
        ctx.service.epoch(),
    )
}

/// `GET /replication/stream`: SSE tail of the leader's mutation WAL.
///
/// The cursor (epoch of the last record the follower holds) comes from
/// `Last-Event-ID` (the header wins) or `?from_epoch=`.  Each WAL record
/// past the cursor is a `record` event whose SSE `id:` is the record's
/// epoch and whose payload carries the exact WAL record bytes hex-encoded;
/// a `head` event precedes every batch and fires roughly once a second
/// while idle (keep-alive + lag signal).  A cursor behind the WAL
/// truncation horizon gets a terminal `bootstrap` event: the follower must
/// re-seed from `GET /replication/snapshot` before resuming.  409 when the
/// leader runs without persistence (there is no WAL to stream).
fn respond_replication_stream(ctx: &ServerContext, request: &Request, stream: &TcpStream) {
    let mut writer = stream;
    let mut cursor = request
        .header("last-event-id")
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .or_else(|| {
            request
                .query_param("from_epoch")
                .and_then(|raw| raw.parse::<u64>().ok())
        })
        .unwrap_or(0);
    if !ctx.service.durability().enabled {
        respond_error(
            &mut writer,
            &HttpError::new(
                409,
                "persistence_disabled",
                "replication requires the leader to run with a data directory",
            ),
            false,
        );
        return;
    }
    if writer.write_all(STREAM_HEADER.as_bytes()).is_err() {
        return;
    }
    let mut sse = SseWriter::new(writer);
    let mut idle_polls = 0u32;
    loop {
        // Re-read the horizon every pass: a checkpoint can truncate the
        // WAL at any moment, turning "caught up" into "unreachable".
        let checkpoint_epoch = ctx.service.durability().last_checkpoint_epoch;
        if cursor < checkpoint_epoch {
            let _ = sse.event(
                "bootstrap",
                &format!(
                    "{{\"checkpoint_epoch\":{checkpoint_epoch},\"leader_epoch\":{}}}",
                    ctx.service.epoch()
                ),
            );
            return;
        }
        let records = match ctx.service.replication_records_after(cursor) {
            Ok(records) => records,
            Err(_) => return,
        };
        if records.is_empty() {
            idle_polls += 1;
            if peer_disconnected(stream) {
                return;
            }
            if idle_polls.is_multiple_of(10)
                && sse
                    .event("head", &replication_head_json(ctx, checkpoint_epoch, 0))
                    .is_err()
            {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
            continue;
        }
        idle_polls = 0;
        if sse
            .event(
                "head",
                &replication_head_json(ctx, checkpoint_epoch, records.len()),
            )
            .is_err()
        {
            return;
        }
        for record in records {
            let payload = to_hex(&encode_record(
                record.seq,
                record.parent_epoch,
                record.epoch,
                &record.batch,
            ));
            let data = format!(
                "{{\"seq\":{},\"parent_epoch\":{},\"epoch\":{},\"payload\":\"{payload}\"}}",
                record.seq, record.parent_epoch, record.epoch,
            );
            if sse.event_with_id("record", record.epoch, &data).is_err() {
                return;
            }
            cursor = record.epoch;
        }
    }
}

/// `GET /replication/snapshot`: the newest on-disk snapshot, verbatim —
/// what a bootstrapping follower decodes and installs.  The snapshot's
/// epoch rides in `X-Banks-Snapshot-Epoch`.  409 without persistence, 404
/// before the first checkpoint has been written.
fn respond_replication_snapshot(ctx: &ServerContext, w: &mut impl Write, keep_alive: bool) -> bool {
    match ctx.service.newest_snapshot_file() {
        Ok(Some((epoch, path))) => match std::fs::read(&path) {
            Ok(bytes) => {
                let epoch_header = epoch.to_string();
                let _ = http::write_response(
                    w,
                    200,
                    &[("X-Banks-Snapshot-Epoch", epoch_header.as_str())],
                    "application/octet-stream",
                    &bytes,
                    keep_alive,
                );
                keep_alive
            }
            Err(e) => {
                respond_error(
                    w,
                    &HttpError::new(500, "snapshot_read_failed", e.to_string()),
                    false,
                );
                false
            }
        },
        Ok(None) => {
            respond_error(
                w,
                &HttpError::new(404, "no_snapshot", "no snapshot has been written yet"),
                false,
            );
            false
        }
        Err(PersistError::Disabled) => {
            respond_error(
                w,
                &HttpError::new(
                    409,
                    "persistence_disabled",
                    "service is running without a data directory",
                ),
                false,
            );
            false
        }
        Err(e) => {
            respond_error(
                w,
                &HttpError::new(500, "snapshot_list_failed", e.to_string()),
                false,
            );
            false
        }
    }
}

/// `GET /metrics`: JSON by default, Prometheus text format 0.0.4 with
/// `?format=prometheus`.  A client advertising `Accept-Encoding: gzip`
/// gets the body DEFLATE-compressed in gzip framing (see [`crate::gzip`]).
fn respond_metrics(ctx: &ServerContext, request: &Request, w: &mut impl Write, keep_alive: bool) {
    let metrics = ctx.service.metrics();
    let (body, content_type) = match request.query_param("format").as_deref() {
        Some("prometheus") => (
            crate::prom::render(&metrics),
            "text/plain; version=0.0.4; charset=utf-8",
        ),
        _ => (json::metrics(&metrics), "application/json"),
    };
    if accepts_gzip(request) {
        let compressed = crate::gzip::compress(body.as_bytes());
        let _ = http::write_response(
            w,
            200,
            &[("Content-Encoding", "gzip")],
            content_type,
            &compressed,
            keep_alive,
        );
    } else {
        let _ = http::write_response(w, 200, &[], content_type, body.as_bytes(), keep_alive);
    }
}

/// Whether the client listed `gzip` in `Accept-Encoding` (q-values beyond
/// an explicit `gzip;q=0` refusal are not weighed — any mention opts in).
fn accepts_gzip(request: &Request) -> bool {
    request.header("accept-encoding").is_some_and(|v| {
        v.split(',').any(|token| {
            let mut parts = token.split(';');
            let coding = parts.next().unwrap_or("").trim();
            let refused = parts.any(|p| {
                p.trim().eq_ignore_ascii_case("q=0") || p.trim().eq_ignore_ascii_case("q=0.0")
            });
            coding.eq_ignore_ascii_case("gzip") && !refused
        })
    })
}

/// `GET /debug/slow`: the retained slow-query traces, newest first.
fn respond_slow(ctx: &ServerContext, request: &Request, w: &mut impl Write, keep_alive: bool) {
    let limit = request
        .query_param("limit")
        .and_then(|raw| raw.parse::<usize>().ok())
        .unwrap_or(32);
    let traces = ctx.service.slow_traces(limit);
    let mut body = format!(
        "{{\"slow_query_threshold_us\":{},\"count\":{},\"traces\":[",
        ctx.service.slow_query_threshold().as_micros(),
        traces.len(),
    );
    for (i, trace) in traces.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&json::query_trace(trace));
    }
    body.push_str("]}");
    let _ = http::write_response(w, 200, &[], "application/json", body.as_bytes(), keep_alive);
}

/// `GET /debug/slo`: the stored burn-rate report — overall health, the
/// collector cadence that produced it, and one row per objective.  The
/// report is the one the collector wrote on its last tick (evaluation
/// happens on the collector thread, where transitions become events), so
/// this endpoint is a read, never a judgment.
fn respond_slo(ctx: &ServerContext, w: &mut impl Write, keep_alive: bool) {
    let report = ctx.service.slo_report();
    let mut body = format!(
        "{{\"health\":\"{}\",\"collector_cadence_ms\":{},\"slos\":[",
        report.health.as_str(),
        ctx.service.collector_cadence().as_millis(),
    );
    for (i, row) in report.rows.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"name\":{},\"metric\":{},\"state\":\"{}\",\"threshold\":{},\
             \"value\":{},\"burn_fast\":{},\"burn_slow\":{}}}",
            corejson::string(&row.name),
            corejson::string(&row.metric),
            row.state.as_str(),
            corejson::number(row.threshold),
            corejson::number(row.value),
            corejson::number(row.burn_fast),
            corejson::number(row.burn_slow),
        ));
    }
    body.push_str("]}");
    let _ = http::write_response(w, 200, &[], "application/json", body.as_bytes(), keep_alive);
}

/// One event as the JSON object both `/debug/events` and the SSE tail
/// serve (same shape on both transports, like answers on `/query`).
fn event_json(event: &banks_service::Event) -> String {
    format!(
        "{{\"id\":{},\"at_unix_ms\":{},\"level\":\"{}\",\"kind\":{},\"message\":{}}}",
        event.id,
        event.at_unix_ms,
        event.level.as_str(),
        corejson::string(event.kind),
        corejson::string(&event.message),
    )
}

/// Cap on one `/debug/events` page (and one tail drain batch).
const EVENTS_PAGE_LIMIT: usize = 1024;

/// `GET /debug/events?since=<id>&limit=N`: a page of the structured event
/// log, oldest first, ids strictly greater than `since`.  The envelope
/// carries `last_id` (the newest id ever assigned — the cursor for the
/// next poll) and `dropped` (ring evictions), so a poller can both page
/// and detect loss.
fn respond_events(ctx: &ServerContext, request: &Request, w: &mut impl Write, keep_alive: bool) {
    let since = request
        .query_param("since")
        .and_then(|raw| raw.parse::<u64>().ok())
        .unwrap_or(0);
    let limit = request
        .query_param("limit")
        .and_then(|raw| raw.parse::<usize>().ok())
        .unwrap_or(256)
        .min(EVENTS_PAGE_LIMIT);
    let events = ctx.service.events().since(since, limit);
    let mut body = format!(
        "{{\"since\":{since},\"last_id\":{},\"dropped\":{},\"count\":{},\"events\":[",
        ctx.service.events().last_id(),
        ctx.service.events().dropped(),
        events.len(),
    );
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&event_json(event));
    }
    body.push_str("]}");
    let _ = http::write_response(w, 200, &[], "application/json", body.as_bytes(), keep_alive);
}

/// `GET /debug/events/tail`: live SSE tail of the event log.
///
/// Every frame is an `event` event whose SSE `id:` is the log id, so a
/// conforming client that reconnects with `Last-Event-ID` resumes exactly
/// where it left off (a `?since=<id>` query parameter does the same for
/// hand-rolled clients; the header wins when both are present).  History
/// after the cursor is replayed first, then the handler polls the log,
/// probing the peer and emitting keep-alive comments while idle so an
/// abandoned tail releases its handler.
fn respond_events_tail(ctx: &ServerContext, request: &Request, stream: &TcpStream) {
    let mut writer = stream;
    let mut cursor = request
        .header("last-event-id")
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .or_else(|| {
            request
                .query_param("since")
                .and_then(|raw| raw.parse::<u64>().ok())
        })
        .unwrap_or(0);
    if writer.write_all(STREAM_HEADER.as_bytes()).is_err() {
        return;
    }
    let mut sse = SseWriter::new(writer);
    let mut idle_polls = 0u32;
    loop {
        let batch = ctx.service.events().since(cursor, EVENTS_PAGE_LIMIT);
        if batch.is_empty() {
            // Idle: probe the peer now, keep-alive it roughly once a
            // second (every tenth 100 ms poll) — same liveness discipline
            // as the query stream, scaled to the tail's poll cadence.
            idle_polls += 1;
            if peer_disconnected(stream) {
                return;
            }
            if idle_polls.is_multiple_of(10) && sse.comment("keepalive").is_err() {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
            continue;
        }
        idle_polls = 0;
        for event in batch {
            if sse
                .event_with_id("event", event.id, &event_json(&event))
                .is_err()
            {
                return;
            }
            cursor = event.id;
        }
    }
}

/// `GET /debug/trace/<id>`: one retained trace by query id (`7` and the
/// display form `q7` both work).  404 once the ring has evicted it (or if
/// it was never retained — traces are kept only when requested or slow).
fn respond_trace(ctx: &ServerContext, path: &str, w: &mut impl Write, keep_alive: bool) -> bool {
    let raw = path.trim_start_matches("/debug/trace/");
    let id = raw.strip_prefix('q').unwrap_or(raw).parse::<u64>();
    let trace = match id {
        Ok(id) => ctx.service.trace(banks_service::QueryId(id)),
        Err(_) => {
            respond_error(
                w,
                &HttpError::bad_request(format!("bad query id {raw:?} (expected 7 or q7)")),
                false,
            );
            return false;
        }
    };
    match trace {
        Some(trace) => {
            let body = json::query_trace(&trace);
            let _ =
                http::write_response(w, 200, &[], "application/json", body.as_bytes(), keep_alive);
            keep_alive
        }
        None => {
            respond_error(
                w,
                &HttpError::new(
                    404,
                    "trace_not_found",
                    format!("no retained trace for query {raw} (evicted, or never traced)"),
                ),
                false,
            );
            false
        }
    }
}

fn respond_swap(ctx: &ServerContext, w: &mut impl Write, keep_alive: bool) {
    let started = Instant::now();
    let previous_epoch = ctx.service.epoch();
    // Build the new snapshot *before* touching the serving lock: queries
    // keep flowing on the old version during the (potentially long)
    // prestige/index derivation.
    let snapshot = match &ctx.graph_source {
        Some(source) => source(),
        // No source configured: reindex the currently-served graph (a
        // clone-swap still gets a fresh epoch, per the swap contract).
        None => GraphSnapshot::with_defaults(ctx.service.snapshot().graph().clone()),
    };
    let epoch = ctx.service.swap_snapshot(snapshot);
    let body = format!(
        "{{\"swapped\":true,\"epoch\":{epoch},\"previous_epoch\":{previous_epoch},\
         \"rebuild_us\":{}}}",
        started.elapsed().as_micros(),
    );
    let _ = http::write_response(w, 200, &[], "application/json", body.as_bytes(), keep_alive);
}

/// `POST /admin/mutate`: apply a JSON mutation batch incrementally.
///
/// Body shape:
///
/// ```json
/// {"ops": [
///   {"op": "add_node", "kind": "paper", "label": "Recovery"},
///   {"op": "add_edge", "from": 7, "to": 12, "weight": 1.5},
///   {"op": "remove_edge", "from": 3, "to": 4},
///   {"op": "set_label", "node": 9, "label": "renamed"},
///   {"op": "set_weight", "from": 1, "to": 2, "weight": 2.0},
///   {"op": "remove_node", "node": 6}
/// ]}
/// ```
///
/// The response reports the epoch transition plus per-op accept/reject
/// results; a malformed *body* is a 400 before anything is applied, while
/// a semantically invalid *op* (unknown node, missing edge) is applied
/// batch semantics: it is rejected individually and the rest proceed.
fn respond_mutate(
    ctx: &ServerContext,
    request: &Request,
    w: &mut impl Write,
    keep_alive: bool,
) -> bool {
    // A follower's graph is the leader's graph: accepting a local write
    // would fork the replicated history.  Redirect the writer instead.
    if ctx.service.replication_status().role == ReplicationRole::Follower {
        let mut error = HttpError::new(
            409,
            "not_leader",
            "this process is a read replica; apply mutations on the leader",
        );
        if let Some(leader) = &ctx.leader_url {
            let base = leader.trim_end_matches('/');
            error
                .headers
                .push(("Location", format!("{base}/admin/mutate")));
            error.extras.push(("leader", corejson::string(leader)));
        }
        respond_error(w, &error, false);
        return false;
    }
    let started = Instant::now();
    let batch = match parse_mutation_body(request) {
        Ok(batch) => batch,
        Err(error) => {
            respond_error(w, &error, false);
            return false;
        }
    };
    let report = ctx.service.apply_mutations(&batch);
    let mut results = String::from("[");
    for (i, result) in report.outcome.results.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        match result {
            Ok(effect) => {
                results.push_str(&format!(
                    "{{\"index\":{i},\"status\":\"accepted\",{}}}",
                    op_effect_json(effect)
                ));
            }
            Err(error) => {
                results.push_str(&format!(
                    "{{\"index\":{i},\"status\":\"rejected\",\"error\":{}}}",
                    corejson::string(&error.to_string())
                ));
            }
        }
    }
    results.push(']');
    let body = format!(
        "{{\"swapped\":{},\"epoch\":{},\"previous_epoch\":{},\"accepted\":{},\
         \"rejected\":{},\"apply_us\":{},\"results\":{results}}}",
        report.swapped,
        report.epoch,
        report.previous_epoch,
        report.outcome.accepted(),
        report.outcome.rejected(),
        started.elapsed().as_micros(),
    );
    let _ = http::write_response(w, 200, &[], "application/json", body.as_bytes(), keep_alive);
    keep_alive
}

fn op_effect_json(effect: &OpEffect) -> String {
    match effect {
        OpEffect::NodeAdded(node) => format!("\"effect\":\"node_added\",\"node\":{node}"),
        OpEffect::EdgeAdded { from, to } => {
            format!("\"effect\":\"edge_added\",\"from\":{from},\"to\":{to}")
        }
        OpEffect::EdgesRemoved { from, to, count } => {
            format!("\"effect\":\"edges_removed\",\"from\":{from},\"to\":{to},\"count\":{count}")
        }
        OpEffect::LabelSet(node) => format!("\"effect\":\"label_set\",\"node\":{node}"),
        OpEffect::WeightSet { from, to, count } => {
            format!("\"effect\":\"weight_set\",\"from\":{from},\"to\":{to},\"count\":{count}")
        }
        OpEffect::NodeRemoved {
            node,
            edges_removed,
        } => {
            format!("\"effect\":\"node_removed\",\"node\":{node},\"edges_removed\":{edges_removed}")
        }
    }
}

/// Parses the `POST /admin/mutate` body into a [`MutationBatch`].
fn parse_mutation_body(request: &Request) -> Result<MutationBatch, HttpError> {
    let body = request.body_utf8().map_err(HttpError::bad_request)?;
    if body.trim().is_empty() {
        return Err(HttpError::bad_request(
            "empty body (expected a JSON object with an \"ops\" array)",
        ));
    }
    let value =
        json::parse(body).map_err(|e| HttpError::bad_request(format!("invalid JSON body: {e}")))?;
    let ops = match value.get("ops") {
        Some(JsonValue::Array(items)) => items,
        Some(_) => return Err(HttpError::bad_request("\"ops\" must be an array")),
        None => {
            return Err(HttpError::bad_request(
                "body must contain \"ops\" (an array of mutation objects)",
            ))
        }
    };
    let mut batch = MutationBatch::new();
    for (i, item) in ops.iter().enumerate() {
        batch.push(parse_mutation_op(i, item)?);
    }
    Ok(batch)
}

fn parse_mutation_op(i: usize, item: &JsonValue) -> Result<GraphMutation, HttpError> {
    let op = item.get("op").and_then(JsonValue::as_str).ok_or_else(|| {
        HttpError::bad_request(format!("ops[{i}] must be an object with an \"op\" string"))
    })?;
    let string_field = |field: &str| -> Result<String, HttpError> {
        item.get(field)
            .and_then(JsonValue::as_str)
            .map(|s| s.to_string())
            .ok_or_else(|| {
                HttpError::bad_request(format!("ops[{i}] ({op}): \"{field}\" must be a string"))
            })
    };
    let node_field = |field: &str| -> Result<NodeId, HttpError> {
        item.get(field)
            .and_then(JsonValue::as_usize)
            .filter(|v| *v <= u32::MAX as usize)
            .map(|v| NodeId(v as u32))
            .ok_or_else(|| {
                HttpError::bad_request(format!(
                    "ops[{i}] ({op}): \"{field}\" must be a node id (non-negative integer)"
                ))
            })
    };
    let weight_field = |field: &str| -> Result<f64, HttpError> {
        item.get(field).and_then(JsonValue::as_f64).ok_or_else(|| {
            HttpError::bad_request(format!("ops[{i}] ({op}): \"{field}\" must be a number"))
        })
    };
    match op {
        "add_node" => Ok(GraphMutation::AddNode {
            kind: string_field("kind")?,
            label: string_field("label")?,
        }),
        "add_edge" => Ok(GraphMutation::AddEdge {
            from: node_field("from")?,
            to: node_field("to")?,
            weight: match item.get("weight") {
                Some(_) => Some(weight_field("weight")?),
                None => None,
            },
        }),
        "remove_edge" => Ok(GraphMutation::RemoveEdge {
            from: node_field("from")?,
            to: node_field("to")?,
        }),
        "set_label" => Ok(GraphMutation::SetLabel {
            node: node_field("node")?,
            label: string_field("label")?,
        }),
        "set_weight" => Ok(GraphMutation::SetWeight {
            from: node_field("from")?,
            to: node_field("to")?,
            weight: weight_field("weight")?,
        }),
        "remove_node" => Ok(GraphMutation::RemoveNode {
            node: node_field("node")?,
        }),
        other => Err(HttpError::bad_request(format!(
            "ops[{i}]: unknown op {other:?} (expected add_node, add_edge, remove_edge, \
             set_label, set_weight or remove_node)"
        ))),
    }
}

/// Builds the [`QuerySpec`] a request describes, or the error to send back.
fn build_spec(request: &Request) -> Result<QuerySpec, HttpError> {
    let mut spec = if request.method == "GET" {
        spec_from_query_string(request)?
    } else {
        spec_from_json_body(request)?
    };
    if let Some(tenant) = request.header("x-banks-tenant") {
        spec = spec.tenant(tenant);
    }
    if let Some(raw) = request.header("x-banks-priority") {
        let priority: Priority = raw.parse().map_err(|e: String| HttpError::bad_request(e))?;
        spec = spec.priority(priority);
    }
    if let Some(reference) = request.header("x-banks-trace") {
        spec = spec.trace(reference);
    }
    Ok(spec)
}

fn spec_from_query_string(request: &Request) -> Result<QuerySpec, HttpError> {
    let q = request
        .query_param("q")
        .filter(|q| !q.trim().is_empty())
        .ok_or_else(|| HttpError::bad_request("missing query parameter \"q\""))?;
    let mut spec = QuerySpec::parse(&q);
    if let Some(raw) = request.query_param("top_k") {
        let top_k: usize = raw
            .parse()
            .map_err(|_| HttpError::bad_request(format!("top_k is not an integer: {raw:?}")))?;
        spec = spec.top_k(top_k);
    }
    if let Some(raw) = request.query_param("answer_work_budget") {
        let budget: usize = raw.parse().map_err(|_| {
            HttpError::bad_request(format!("answer_work_budget is not an integer: {raw:?}"))
        })?;
        spec = spec.answer_work_budget(budget);
    }
    if let Some(raw) = request.query_param("emission") {
        let mut params = spec.params;
        params.emission = parse_emission(&raw)?;
        spec = spec.params(params);
    }
    if let Some(engine) = request.query_param("engine") {
        spec = spec.engine(engine);
    }
    Ok(spec)
}

/// The wire names of [`EmissionPolicy`]: how eagerly buffered answers are
/// released.  `immediate` gives the lowest time-to-first-answer; the
/// default `exact-bound` is the paper's no-better-answer-possible gate.
fn parse_emission(raw: &str) -> Result<EmissionPolicy, HttpError> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "immediate" => Ok(EmissionPolicy::Immediate),
        "heuristic" => Ok(EmissionPolicy::Heuristic),
        "exact-bound" | "exact" | "" => Ok(EmissionPolicy::ExactBound),
        other => Err(HttpError::bad_request(format!(
            "unknown emission policy {other:?} (expected immediate, heuristic or exact-bound)"
        ))),
    }
}

fn spec_from_json_body(request: &Request) -> Result<QuerySpec, HttpError> {
    let body = request.body_utf8().map_err(HttpError::bad_request)?;
    if body.trim().is_empty() {
        return Err(HttpError::bad_request(
            "empty body (expected a JSON object with \"q\" or \"keywords\")",
        ));
    }
    let value =
        json::parse(body).map_err(|e| HttpError::bad_request(format!("invalid JSON body: {e}")))?;
    if !matches!(value, JsonValue::Object(_)) {
        return Err(HttpError::bad_request("body must be a JSON object"));
    }

    let mut spec = match (value.get("q"), value.get("keywords")) {
        (Some(q), _) => {
            let q = q
                .as_str()
                .ok_or_else(|| HttpError::bad_request("\"q\" must be a string"))?;
            if q.trim().is_empty() {
                return Err(HttpError::bad_request("\"q\" must not be empty"));
            }
            QuerySpec::parse(q)
        }
        (None, Some(JsonValue::Array(items))) => {
            let keywords: Vec<&str> = items
                .iter()
                .map(|item| {
                    item.as_str()
                        .ok_or_else(|| HttpError::bad_request("\"keywords\" must be strings"))
                })
                .collect::<Result<_, _>>()?;
            if keywords.is_empty() {
                return Err(HttpError::bad_request("\"keywords\" must not be empty"));
            }
            QuerySpec::keywords(keywords)
        }
        (None, Some(_)) => {
            return Err(HttpError::bad_request("\"keywords\" must be an array"));
        }
        (None, None) => {
            return Err(HttpError::bad_request(
                "body must contain \"q\" (string) or \"keywords\" (array)",
            ));
        }
    };

    if let Some(raw) = value.get("top_k") {
        let top_k = raw
            .as_usize()
            .ok_or_else(|| HttpError::bad_request("\"top_k\" must be a non-negative integer"))?;
        spec = spec.top_k(top_k);
    }
    if let Some(raw) = value.get("answer_work_budget") {
        let budget = raw.as_usize().ok_or_else(|| {
            HttpError::bad_request("\"answer_work_budget\" must be a non-negative integer")
        })?;
        spec = spec.answer_work_budget(budget);
    }
    if let Some(raw) = value.get("emission") {
        let raw = raw
            .as_str()
            .ok_or_else(|| HttpError::bad_request("\"emission\" must be a string"))?;
        let mut params = spec.params;
        params.emission = parse_emission(raw)?;
        spec = spec.params(params);
    }
    if let Some(raw) = value.get("engine") {
        let engine = raw
            .as_str()
            .ok_or_else(|| HttpError::bad_request("\"engine\" must be a string"))?;
        spec = spec.engine(engine);
    }
    Ok(spec)
}

/// Maps a [`SubmitError`] onto the wire: status, code, retry hints.
fn submit_error(err: SubmitError) -> HttpError {
    match err {
        SubmitError::UnknownEngine(e) => {
            let mut error = HttpError::new(404, "unknown_engine", e.to_string());
            error.extras.push(("known", json::string_array(&e.known)));
            error.extras.push((
                "suggestion",
                e.suggestion
                    .map_or_else(|| "null".to_string(), corejson::string),
            ));
            error
        }
        SubmitError::QuotaExceeded {
            tenant,
            retry_after,
        } => {
            let mut error = HttpError::new(
                429,
                "quota_exceeded",
                format!("tenant {tenant:?} is over its admission quota"),
            );
            let secs = retry_after.as_secs_f64().ceil().max(1.0) as u64;
            error.headers.push(("Retry-After", secs.to_string()));
            error
                .extras
                .push(("retry_after_ms", retry_after.as_millis().to_string()));
            error.extras.push(("tenant", corejson::string(&tenant)));
            error
        }
        SubmitError::QueueFull { capacity } => {
            let mut error = HttpError::new(
                503,
                "queue_full",
                format!("admission queue full ({capacity} queries waiting)"),
            );
            error.headers.push(("Retry-After", "1".to_string()));
            error.extras.push(("capacity", capacity.to_string()));
            error
        }
        SubmitError::ShuttingDown => {
            HttpError::new(503, "shutting_down", "service is shutting down")
        }
    }
}

/// `POST /query`: submit and stream.
fn respond_query(ctx: &ServerContext, request: &Request, stream: &TcpStream) {
    let mut writer = stream;
    let spec = match build_spec(request) {
        Ok(spec) => spec,
        Err(error) => {
            respond_error(&mut writer, &error, false);
            return;
        }
    };
    let handle = match ctx.service.submit(spec) {
        Ok(handle) => handle,
        Err(err) => {
            respond_error(&mut writer, &submit_error(err), false);
            return;
        }
    };

    if writer.write_all(STREAM_HEADER.as_bytes()).is_err() {
        handle.cancel();
        return;
    }
    // Answer frames carry their 1-based rank as the SSE `id:`.  A client
    // reconnecting with `Last-Event-ID: K` has already consumed the first
    // K answers of this stream; the engine is deterministic for a fixed
    // epoch (and the result cache makes the re-run cheap), so the handler
    // re-executes and suppresses what was already delivered.
    let skip = request
        .header("last-event-id")
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .unwrap_or(0);
    let mut delivered = 0u64;
    let mut sse = SseWriter::new(writer);
    // A dead client must cancel the query even when the engine emits
    // nothing for a long stretch (or nothing at all), so the receive is
    // *bounded*: on every timeout tick the handler probes the peer — a
    // cheap nonblocking peek, plus an SSE keep-alive comment whose write
    // failure catches what the peek cannot (e.g. a peer that left stray
    // bytes in the receive buffer before vanishing).
    loop {
        match handle.recv_timeout(Duration::from_millis(250)) {
            Ok(QueryEvent::Answer(answer)) => {
                delivered += 1;
                if delivered <= skip {
                    continue;
                }
                // The SSE payload is rendered by the same banks-core
                // function an in-process consumer would use: the stream is
                // byte-identical to the in-process encoding.
                if peer_disconnected(stream)
                    || sse
                        .event_with_id("answer", delivered, &corejson::ranked_answer(&answer))
                        .is_err()
                {
                    // The client is gone: cancel cooperatively so the
                    // engine stops within one expansion step instead of
                    // computing answers nobody will read.
                    handle.cancel();
                    break;
                }
            }
            Ok(QueryEvent::Finished(result)) => {
                let _ = sse.event("finished", &result_json(&result));
                // The phase trace, when the submission asked for one
                // (X-Banks-Trace), rides the same stream after `finished`
                // so clients correlate latency without a second request.
                if let Some(trace) = &result.trace {
                    let _ = sse.event("trace", &json::query_trace(trace));
                }
                break;
            }
            Err(RecvTimeout::Closed) => break,
            Err(RecvTimeout::TimedOut) => {
                if peer_disconnected(stream) || sse.comment("keepalive").is_err() {
                    handle.cancel();
                    break;
                }
            }
        }
    }
}

/// The `finished` event payload.
fn result_json(result: &QueryResult) -> String {
    let ttfa = result
        .time_to_first_answer
        .map_or_else(|| "null".to_string(), |d| d.as_micros().to_string());
    format!(
        "{{\"cache_hit\":{},\"epoch\":{},\"queue_wait_us\":{},\
         \"time_to_first_answer_us\":{ttfa},\"stats\":{}}}",
        result.cache_hit,
        result.epoch,
        result.queue_wait.as_micros(),
        corejson::search_stats(&result.stats),
    )
}

/// Whether the SSE peer has gone away.
///
/// SSE clients send nothing after the request, so any readable state is
/// either EOF / reset (peer closed — the signal we want) or stray pipelined
/// bytes (ignored).  A non-blocking one-byte `peek` distinguishes the
/// cases without consuming anything.  A peer that parked stray bytes in
/// the buffer and *then* vanished defeats the peek (it keeps returning
/// the buffered byte); the periodic keep-alive write in the stream loop
/// catches that case through its write error.
fn peer_disconnected(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let verdict = match stream.peek(&mut probe) {
        Ok(0) => true,                                                 // orderly FIN
        Ok(_) => false,                                                // stray bytes
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false, // healthy and idle
        Err(_) => true,                                                // reset
    };
    if stream.set_nonblocking(false).is_err() {
        return true;
    }
    verdict
}
