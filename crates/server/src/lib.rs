//! # banks-server
//!
//! The network front-end over [`banks_service::Service`]: a
//! dependency-free HTTP/1.1 server on [`std::net::TcpListener`] that turns
//! the service's handle/event model into **server-sent events**, so remote
//! clients get the same incrementally-streamed answers — and the same
//! time-to-first-answer — an in-process caller gets.  This is the
//! deployment mode BANKS-style systems assume: interactive keyword search
//! over a database, served to browsers.
//!
//! Everything is hand-rolled over `std` (the workspace vendors no HTTP or
//! JSON dependency): request parsing with strict resource limits
//! ([`http`]), a minimal JSON parser and the response encodings
//! ([`json`]), SSE framing with flush-per-answer ([`sse`]), and a
//! thread-pool listener with graceful drain ([`Server`]).
//!
//! ## Endpoints
//!
//! | method + path | behaviour |
//! |---------------|-----------|
//! | `POST /query` (also `GET`) | submit a query; stream `answer` SSE events incrementally (each with its 1-based rank as the SSE id, so `Last-Event-ID` resumes without duplicates), then one `finished` event — plus a `trace` event when `X-Banks-Trace` was sent |
//! | `GET /metrics` | [`banks_service::ServiceMetrics`] as JSON (per-tenant rows, latency percentiles, calibration table, SLO rows, overflow counters); `?format=prometheus` for text format 0.0.4; real DEFLATE gzip on `Accept-Encoding: gzip` |
//! | `GET /debug/slow` | recent slow-query traces, newest first (`?limit=N`) |
//! | `GET /debug/trace/<id>` | one retained [`banks_service::QueryTrace`] by query id |
//! | `GET /debug/slo` | the SLO burn-rate report: three-state health + per-objective value/burn/state rows |
//! | `GET /debug/events` | a page of the structured event log (`?since=<id>&limit=N`), with `last_id`/`dropped` cursors |
//! | `GET /debug/events/tail` | live SSE tail of the event log; reconnect with `Last-Event-ID` (or `?since=`) to resume |
//! | `POST /admin/swap` | rebuild and atomically swap the served [`banks_service::GraphSnapshot`] |
//! | `POST /admin/mutate` | apply a JSON [`banks_graph::MutationBatch`] incrementally: delta snapshot, fresh epoch, per-op accept/reject counts — on a follower, **409** with a `Location` pointing at the leader |
//! | `POST /admin/checkpoint` | force a durable snapshot + WAL truncation (409 when persistence is off) |
//! | `POST /admin/slo` | reconfigure SLOs at runtime: a `{"slos":[…]}` body replaces the set, a single spec object upserts one objective |
//! | `GET /replication/stream` | SSE tail of the mutation WAL for followers: `record` events carry hex WAL record bytes with the record epoch as the SSE id (`Last-Event-ID` / `?from_epoch=` resumes); `head` events announce leader epoch + pending records; a cursor behind the truncation horizon gets a terminal `bootstrap` event |
//! | `GET /replication/snapshot` | the newest on-disk snapshot verbatim (epoch in `X-Banks-Snapshot-Epoch`) — follower bootstrap seed |
//! | `GET /healthz` | liveness: status, SLO `health` verdict, serving epoch, worker count, shard count, engine names, durability (`last_checkpoint_epoch`, `wal_records`, `wal_bytes`), replication role + lag |
//!
//! `POST /query` takes a JSON body — `{"q":"jim gray","top_k":5}` or
//! `{"keywords":["jim","gray"],"engine":"si-backward"}` — while `GET
//! /query?q=jim+gray&top_k=5` serves the same stream to `EventSource`-style
//! clients.  Scheduling identity rides in headers: `X-Banks-Tenant` names
//! the tenant for fair share and quotas, `X-Banks-Priority`
//! (`interactive` / `normal` / `batch`) the class — remote traffic is
//! governed by the same scheduler and token buckets as in-process
//! submissions.
//!
//! The non-streaming endpoints honour `Connection: keep-alive` (bounded
//! request count, 5 s idle timeout), so metrics scrapers and mutation
//! ingest pipelines can reuse one connection; SSE streams and error
//! responses always close.
//!
//! ## Error surface
//!
//! Every failure is a structured JSON envelope
//! (`{"error":{"status":…,"code":…,"message":…}}`) with the right status:
//! malformed requests **400**, unknown engines **404** (carrying the
//! registry's known names and its "did you mean" suggestion), per-tenant
//! quota rejections **429** with `Retry-After`, a full admission queue or
//! a shutting-down service **503**.
//!
//! ## Cancellation and shutdown
//!
//! A client that drops its connection mid-stream cancels the query: the
//! handler notices the dead peer, cancels the
//! [`banks_core::CancelToken`], and the engine stops within one expansion
//! step — remote disconnects cost one step of wasted work, not a full
//! query.  [`Server::shutdown`] (or drop) stops accepting, lets in-flight
//! streams finish, and drains the service.

#![deny(missing_docs)]

pub mod gzip;
pub mod http;
pub mod json;
pub mod prom;
pub mod routes;
pub mod server;
pub mod sse;

pub use http::{Limits, ParseError, Request};
pub use json::JsonValue;
pub use routes::GraphSource;
pub use server::{Server, ServerBuilder};
pub use sse::SseWriter;
