//! Server-sent event framing (the `text/event-stream` wire format).
//!
//! The service's handle/event model maps one-to-one onto SSE: each
//! [`banks_service::QueryEvent::Answer`] becomes an `answer` event, the
//! terminal [`banks_service::QueryEvent::Finished`] a `finished` event.
//! Two properties matter for time-to-first-answer — the paper's headline
//! metric — to survive the network hop:
//!
//! * **one write + flush per event** — an answer leaves the process the
//!   moment the engine emits it, never parked in a userspace buffer behind
//!   the next answer;
//! * **correct boundaries** — every event is terminated by a blank line,
//!   and payload newlines are split across `data:` lines per the SSE spec,
//!   so a conforming client (`EventSource`, `curl -N`) reassembles exactly
//!   the payload the server rendered.

use std::io::Write;

/// The response head that precedes an SSE stream.
pub const STREAM_HEADER: &str = "HTTP/1.1 200 OK\r\n\
    Content-Type: text/event-stream\r\n\
    Cache-Control: no-cache\r\n\
    Connection: close\r\n\r\n";

/// Writes SSE frames to an underlying writer, flushing per event.
pub struct SseWriter<W: Write> {
    writer: W,
}

impl<W: Write> SseWriter<W> {
    /// Wraps `writer`.  The caller has already sent [`STREAM_HEADER`].
    pub fn new(writer: W) -> Self {
        SseWriter { writer }
    }

    /// Writes one event frame and flushes it.
    ///
    /// The frame is assembled in memory and sent with a single `write_all`,
    /// so a frame is never interleaved with another thread's bytes and the
    /// transport sees exactly one packet burst per answer.
    pub fn event(&mut self, name: &str, data: &str) -> std::io::Result<()> {
        let mut frame = String::with_capacity(data.len() + name.len() + 16);
        frame.push_str("event: ");
        frame.push_str(name);
        frame.push('\n');
        for line in data.split('\n') {
            frame.push_str("data: ");
            frame.push_str(line);
            frame.push('\n');
        }
        frame.push('\n');
        self.writer.write_all(frame.as_bytes())?;
        self.writer.flush()
    }

    /// Writes one event frame carrying an `id:` field and flushes it.
    ///
    /// The id is what makes a stream *resumable*: a conforming client
    /// remembers the last id it saw and offers it back on reconnect as the
    /// `Last-Event-ID` header, and the server replays only what follows.
    pub fn event_with_id(&mut self, name: &str, id: u64, data: &str) -> std::io::Result<()> {
        let mut frame = String::with_capacity(data.len() + name.len() + 32);
        frame.push_str("event: ");
        frame.push_str(name);
        frame.push('\n');
        frame.push_str("id: ");
        frame.push_str(&id.to_string());
        frame.push('\n');
        for line in data.split('\n') {
            frame.push_str("data: ");
            frame.push_str(line);
            frame.push('\n');
        }
        frame.push('\n');
        self.writer.write_all(frame.as_bytes())?;
        self.writer.flush()
    }

    /// Writes a comment frame (`: text`) — the SSE keep-alive idiom; a
    /// client parser ignores it, but the write proves the peer is still
    /// there.
    pub fn comment(&mut self, text: &str) -> std::io::Result<()> {
        self.writer.write_all(format!(": {text}\n\n").as_bytes())?;
        self.writer.flush()
    }

    /// The underlying writer.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.writer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer recording both the bytes and the flush boundaries.
    #[derive(Default)]
    struct Recorder {
        bytes: Vec<u8>,
        flushes: usize,
        writes: usize,
    }

    impl Write for Recorder {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.writes += 1;
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.flushes += 1;
            Ok(())
        }
    }

    #[test]
    fn events_are_framed_with_blank_line_boundaries() {
        let mut sse = SseWriter::new(Recorder::default());
        sse.event("answer", "{\"rank\":0}").unwrap();
        sse.event("finished", "{\"ok\":true}").unwrap();
        let text = String::from_utf8(sse.get_mut().bytes.clone()).unwrap();
        assert_eq!(
            text,
            "event: answer\ndata: {\"rank\":0}\n\n\
             event: finished\ndata: {\"ok\":true}\n\n"
        );
    }

    #[test]
    fn each_event_is_one_write_and_one_flush() {
        let mut sse = SseWriter::new(Recorder::default());
        for i in 0..5 {
            sse.event("answer", &format!("{{\"rank\":{i}}}")).unwrap();
        }
        assert_eq!(sse.get_mut().writes, 5, "one write_all per event");
        assert_eq!(sse.get_mut().flushes, 5, "flush-per-answer");
    }

    #[test]
    fn multiline_payloads_split_across_data_lines() {
        let mut sse = SseWriter::new(Recorder::default());
        sse.event("answer", "line one\nline two").unwrap();
        let text = String::from_utf8(sse.get_mut().bytes.clone()).unwrap();
        assert_eq!(text, "event: answer\ndata: line one\ndata: line two\n\n");
    }

    #[test]
    fn id_carrying_events_put_the_id_before_the_data() {
        let mut sse = SseWriter::new(Recorder::default());
        sse.event_with_id("answer", 3, "{\"rank\":2}").unwrap();
        let text = String::from_utf8(sse.get_mut().bytes.clone()).unwrap();
        assert_eq!(text, "event: answer\nid: 3\ndata: {\"rank\":2}\n\n");
        assert_eq!(sse.get_mut().writes, 1, "one write_all per event");
    }

    #[test]
    fn comments_frame_as_keepalives() {
        let mut sse = SseWriter::new(Recorder::default());
        sse.comment("ping").unwrap();
        let text = String::from_utf8(sse.get_mut().bytes.clone()).unwrap();
        assert_eq!(text, ": ping\n\n");
        assert_eq!(sse.get_mut().flushes, 1);
    }

    #[test]
    fn stream_header_declares_event_stream() {
        assert!(STREAM_HEADER.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(STREAM_HEADER.contains("Content-Type: text/event-stream\r\n"));
        assert!(STREAM_HEADER.ends_with("\r\n\r\n"));
    }
}
