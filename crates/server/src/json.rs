//! JSON for the wire: a minimal parser for request bodies and encoders for
//! the response shapes the front-end emits.
//!
//! Answer/stats *fragments* render in [`banks_core::json`] (shared with the
//! in-process stream, which is what makes the SSE payloads byte-identical
//! to in-process encodings).  This module owns the transport-side pieces:
//!
//! * [`parse`] — a strict recursive-descent JSON parser covering the full
//!   value grammar (objects, arrays, strings with escapes, numbers, bools,
//!   null).  Request bodies are small (the parser is guarded by the HTTP
//!   body limit) and flat, but parsing the whole grammar costs little and
//!   avoids a "works until someone nests a value" cliff;
//! * [`metrics`] — the `GET /metrics` encoding of
//!   [`banks_service::ServiceMetrics`];
//! * [`error_body`] — the uniform error envelope every non-2xx response
//!   carries.

use std::collections::BTreeMap;

use banks_core::json as corejson;
use banks_service::{LatencySummary, QueryTrace, ServiceMetrics};

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.  Keys are unique (last occurrence wins), sorted by the
    /// map, which is fine for request bodies where order carries no
    /// meaning.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// Member `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

/// Nesting bound: request bodies are flat; anything deeper than this is an
/// attack or a bug, and a recursion bound beats a stack overflow.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected {:?} at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // high surrogate: a \uXXXX *low* surrogate
                                // must follow; anything else is malformed
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&second) {
                                        char::from_u32(
                                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape at offset {}", self.pos)
                            })?);
                            continue;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at offset {}", self.pos))
                }
                Some(_) => {
                    // copy one UTF-8 scalar (input is &str, so boundaries are valid)
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }
}

/// Renders [`ServiceMetrics`] as the `GET /metrics` JSON document.
pub fn metrics(m: &ServiceMetrics) -> String {
    let mut buf = String::with_capacity(512);
    buf.push_str(&format!(
        "{{\"submitted\":{},\"rejected\":{},\"quota_rejected\":{},\"executed\":{},\
         \"completed\":{},\"cancelled\":{},\"truncated\":{},\"cache_hits\":{},\
         \"cache_hit_rate\":{},\"answers_delivered\":{},\"nodes_explored\":{},\
         \"queued\":{},\"swaps\":{},\"mutation_batches\":{},\
         \"mutation_ops_accepted\":{},\"mutation_ops_rejected\":{},\"epoch\":{}",
        m.submitted,
        m.rejected,
        m.quota_rejected,
        m.executed,
        m.completed,
        m.cancelled,
        m.truncated,
        m.cache_hits,
        corejson::number(m.cache_hit_rate()),
        m.answers_delivered,
        m.nodes_explored,
        m.queued,
        m.swaps,
        m.mutation_batches,
        m.mutation_ops_accepted,
        m.mutation_ops_rejected,
        m.epoch,
    ));
    buf.push_str(&format!(
        ",\"persistence_enabled\":{},\"last_checkpoint_epoch\":{},\
         \"wal_records\":{},\"wal_bytes\":{},\"checkpoints\":{},\
         \"mutation_log_entries\":{},\"mutation_log_dropped\":{},\
         \"slow_queries\":{}",
        m.persistence_enabled,
        m.last_checkpoint_epoch,
        m.wal_records,
        m.wal_bytes,
        m.checkpoints,
        m.mutation_log_entries,
        m.mutation_log_dropped,
        m.slow_queries,
    ));
    buf.push_str(&format!(
        ",\"health\":\"{}\",\"trace_ring_dropped\":{},\"event_log_dropped\":{},\
         \"event_log_last_id\":{},\"watchdog_overruns\":{},\
         \"watchdog_queue_trips\":{},\"queue_saturation\":{}",
        m.health.as_str(),
        m.trace_ring_dropped,
        m.event_log_dropped,
        m.event_log_last_id,
        m.watchdog_overruns,
        m.watchdog_queue_trips,
        corejson::number(m.queue_saturation),
    ));
    buf.push_str(",\"slo\":[");
    for (i, row) in m.slo.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&format!(
            "{{\"name\":{},\"metric\":{},\"state\":\"{}\",\"threshold\":{},\
             \"value\":{},\"burn_fast\":{},\"burn_slow\":{}}}",
            corejson::string(row.name),
            corejson::string(row.metric),
            row.state.as_str(),
            corejson::number(row.threshold),
            corejson::number(row.value),
            corejson::number(row.burn_fast),
            corejson::number(row.burn_slow),
        ));
    }
    buf.push(']');
    buf.push_str(&format!(",\"shards\":{},\"shard_stats\":[", m.shards));
    for (i, s) in m.shard_stats.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&format!(
            "{{\"shard\":{},\"owned_nodes\":{},\"replica_nodes\":{},\
             \"owned_edges\":{},\"cut_edges\":{}}}",
            s.shard, s.owned_nodes, s.replica_nodes, s.owned_edges, s.cut_edges,
        ));
    }
    buf.push(']');
    for (name, summary) in [
        ("queue_wait", &m.queue_wait),
        ("ttfa", &m.ttfa),
        ("mutation_apply", &m.mutation_apply),
        ("checkpoint_latency", &m.checkpoint_latency),
        ("wal_fsync", &m.wal_fsync),
    ] {
        buf.push_str(&format!(",\"{name}\":{}", latency_summary(summary)));
    }
    buf.push_str(",\"calibration\":[");
    for (i, row) in m.calibration.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&format!(
            "{{\"engine\":{},\"origin_bucket\":{},\"origin_lo\":{},\"origin_hi\":{},\
             \"samples\":{},\"mean_nodes_explored\":{},\"correction\":{}}}",
            corejson::string(&row.engine),
            row.origin_bucket,
            row.origin_lo,
            row.origin_hi,
            row.samples,
            row.mean_nodes_explored,
            corejson::number(row.correction),
        ));
    }
    buf.push(']');
    buf.push_str(",\"tenants\":[");
    for (i, t) in m.tenants.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&format!(
            "{{\"tenant\":{},\"executed\":{},\"quota_rejected\":{},\
             \"mean_queue_wait_us\":{},\"max_queue_wait_us\":{},\
             \"quota_rate_per_sec\":{},\"quota_burst\":{}}}",
            corejson::string(&t.tenant),
            t.executed,
            t.quota_rejected,
            corejson::duration_us(t.mean_queue_wait),
            corejson::duration_us(t.max_queue_wait),
            t.quota_rate_per_sec
                .map_or_else(|| "null".to_string(), corejson::number),
            t.quota_burst
                .map_or_else(|| "null".to_string(), |b| b.to_string()),
        ));
    }
    buf.push_str("]}");
    buf
}

/// Renders a [`LatencySummary`] as the `{"count":…,"mean_us":…,…}` object
/// every latency distribution in the metrics document uses.
fn latency_summary(s: &LatencySummary) -> String {
    format!(
        "{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p90_us\":{},\
         \"p99_us\":{},\"max_us\":{}}}",
        s.count,
        corejson::duration_us(s.mean),
        corejson::duration_us(s.p50),
        corejson::duration_us(s.p90),
        corejson::duration_us(s.p99),
        corejson::duration_us(s.max),
    )
}

/// Renders a [`QueryTrace`] — the payload of the SSE `trace` event and of
/// `GET /debug/trace/<id>`.
pub fn query_trace(t: &QueryTrace) -> String {
    let mut buf = format!(
        "{{\"id\":{},\"client_ref\":{},\"tenant\":{},\"engine\":{},\
         \"cache_hit\":{},\"slow\":{},\"epoch\":{},\"total_us\":{}",
        t.id,
        t.client_ref
            .as_deref()
            .map_or_else(|| "null".to_string(), corejson::string),
        t.tenant
            .as_deref()
            .map_or_else(|| "null".to_string(), corejson::string),
        corejson::string(&t.engine),
        t.cache_hit,
        t.slow,
        t.epoch,
        t.total_us,
    );
    buf.push_str(",\"spans\":[");
    for (i, span) in t.spans.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&format!(
            "{{\"name\":{},\"start_us\":{},\"end_us\":{}}}",
            corejson::string(span.name),
            span.start_us,
            span.end_us,
        ));
    }
    buf.push_str("],\"counters\":{");
    for (i, (name, value)) in t.counters.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&format!("{}:{value}", corejson::string(name)));
    }
    buf.push_str("}}");
    buf
}

/// Renders a slice of strings as a JSON array of string literals.
pub fn string_array<S: AsRef<str>>(items: &[S]) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&corejson::string(item.as_ref()));
    }
    buf.push(']');
    buf
}

/// Renders the uniform error envelope:
/// `{"error":{"status":…,"code":…,"message":…,…extras}}`.
///
/// `extras` are pre-rendered JSON fragments appended verbatim as additional
/// members of the error object (e.g. `("suggestion", "\"bidirectional\"")`).
pub fn error_body(status: u16, code: &str, message: &str, extras: &[(&str, String)]) -> String {
    let mut buf = format!(
        "{{\"error\":{{\"status\":{status},\"code\":{},\"message\":{}",
        corejson::string(code),
        corejson::string(message),
    );
    for (key, fragment) in extras {
        buf.push_str(&format!(",{}:{}", corejson::string(key), fragment));
    }
    buf.push_str("}}");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_bodies() {
        let v = parse(r#"{"q":"jim gray","top_k":5,"engine":"si-backward"}"#).unwrap();
        assert_eq!(v.get("q").and_then(JsonValue::as_str), Some("jim gray"));
        assert_eq!(v.get("top_k").and_then(JsonValue::as_usize), Some(5));
        assert_eq!(
            v.get("engine").and_then(JsonValue::as_str),
            Some("si-backward")
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nested_values_and_arrays() {
        let v =
            parse(r#"{"keywords":["jim","gray"],"opts":{"deep":[1,2.5,-3]},"b":true,"n":null}"#)
                .unwrap();
        match v.get("keywords") {
            Some(JsonValue::Array(items)) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0].as_str(), Some("jim"));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(
            v.get("opts").and_then(|o| o.get("deep")),
            Some(&JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::Number(2.5),
                JsonValue::Number(-3.0)
            ]))
        );
        assert_eq!(v.get("b"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
    }

    #[test]
    fn parses_string_escapes() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        // surrogate pair for U+1F600, raw and escaped
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        let v = parse(r#""\uD83D\uDE00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_surrogates() {
        for bad in [
            r#""\uD800""#,       // lone high surrogate
            r#""\uD800A""#,      // high surrogate + non-surrogate (not U+10041!)
            r#""\uDC00""#,       // lone low surrogate
            r#""\uD800\uD800""#, // high + high
        ] {
            assert!(parse(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            r#"{"a"}"#,
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "[1 2]",
            r#""unterminated"#,
            "tru",
            "01a",
            r#"{"a":1} trailing"#,
            r#""bad \x escape""#,
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn roundtrips_core_encodings() {
        // what banks-core renders, this parser accepts — the two halves of
        // the wire agree
        let stats = banks_core::SearchStats {
            nodes_explored: 42,
            truncated: true,
            ..Default::default()
        };
        let v = parse(&banks_core::json::search_stats(&stats)).unwrap();
        assert_eq!(
            v.get("nodes_explored").and_then(JsonValue::as_usize),
            Some(42)
        );
        assert_eq!(v.get("truncated"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn metrics_encoding_is_parseable_and_complete() {
        let m = ServiceMetrics::default();
        let v = parse(&metrics(&m)).unwrap();
        for key in [
            "submitted",
            "rejected",
            "quota_rejected",
            "executed",
            "cache_hits",
            "queued",
            "swaps",
            "mutation_batches",
            "mutation_ops_accepted",
            "mutation_ops_rejected",
            "epoch",
            "persistence_enabled",
            "last_checkpoint_epoch",
            "wal_records",
            "wal_bytes",
            "checkpoints",
            "mutation_log_entries",
            "mutation_log_dropped",
            "slow_queries",
            "shards",
            "health",
            "trace_ring_dropped",
            "event_log_dropped",
            "event_log_last_id",
            "watchdog_overruns",
            "watchdog_queue_trips",
            "queue_saturation",
        ] {
            assert!(v.get(key).is_some(), "metrics must include {key}");
        }
        assert_eq!(
            v.get("health").and_then(JsonValue::as_str),
            Some("ok"),
            "default snapshot is healthy"
        );
        assert_eq!(v.get("slo"), Some(&JsonValue::Array(vec![])));
        assert_eq!(v.get("shard_stats"), Some(&JsonValue::Array(vec![])));
        for summary in [
            "queue_wait",
            "ttfa",
            "mutation_apply",
            "checkpoint_latency",
            "wal_fsync",
        ] {
            for field in ["count", "mean_us", "p50_us", "p90_us", "p99_us", "max_us"] {
                assert!(
                    v.get(summary).and_then(|q| q.get(field)).is_some(),
                    "metrics must include {summary}.{field}"
                );
            }
        }
        assert_eq!(v.get("tenants"), Some(&JsonValue::Array(vec![])));
        assert_eq!(v.get("calibration"), Some(&JsonValue::Array(vec![])));
    }

    #[test]
    fn trace_encoding_is_parseable() {
        let mut t = QueryTrace {
            id: 7,
            client_ref: Some("req-1".to_string()),
            tenant: None,
            engine: "bidirectional".to_string(),
            cache_hit: false,
            slow: true,
            epoch: 3,
            total_us: 1500,
            ..QueryTrace::default()
        };
        t.push_span("queue", 10, 40);
        t.push_span("expand", 40, 1400);
        t.push_counter("heap_pops", 123);
        let v = parse(&query_trace(&t)).unwrap();
        assert_eq!(v.get("id").and_then(JsonValue::as_usize), Some(7));
        assert_eq!(
            v.get("client_ref").and_then(JsonValue::as_str),
            Some("req-1")
        );
        assert_eq!(v.get("tenant"), Some(&JsonValue::Null));
        assert_eq!(v.get("slow"), Some(&JsonValue::Bool(true)));
        match v.get("spans") {
            Some(JsonValue::Array(spans)) => {
                assert_eq!(spans.len(), 2);
                assert_eq!(
                    spans[1].get("name").and_then(JsonValue::as_str),
                    Some("expand")
                );
                assert_eq!(
                    spans[1].get("end_us").and_then(JsonValue::as_usize),
                    Some(1400)
                );
            }
            other => panic!("expected spans array, got {other:?}"),
        }
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("heap_pops"))
                .and_then(JsonValue::as_usize),
            Some(123)
        );
    }

    #[test]
    fn error_envelope_shape() {
        let body = error_body(
            404,
            "unknown_engine",
            "unknown engine \"bidr\"",
            &[("suggestion", "\"bidirectional\"".to_string())],
        );
        let v = parse(&body).unwrap();
        let err = v.get("error").expect("error object");
        assert_eq!(err.get("status").and_then(JsonValue::as_usize), Some(404));
        assert_eq!(
            err.get("code").and_then(JsonValue::as_str),
            Some("unknown_engine")
        );
        assert_eq!(
            err.get("suggestion").and_then(JsonValue::as_str),
            Some("bidirectional")
        );
    }
}
