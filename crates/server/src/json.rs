//! JSON for the wire: response encoders for the shapes the front-end
//! emits, plus a re-export of the shared parser.
//!
//! Answer/stats *fragments* render in [`banks_core::json`] (shared with the
//! in-process stream, which is what makes the SSE payloads byte-identical
//! to in-process encodings), and [`parse`]/[`JsonValue`] live there too so
//! every crate round-trips through one grammar.  This module owns the
//! transport-side encoders:
//!
//! * [`metrics`] — the `GET /metrics` encoding of
//!   [`banks_service::ServiceMetrics`];
//! * [`error_body`] — the uniform error envelope every non-2xx response
//!   carries.

use banks_core::json as corejson;
use banks_service::{LatencySummary, QueryTrace, ReplicationStatus, ServiceMetrics};

pub use banks_core::json::{parse, JsonValue};

/// Renders a [`ReplicationStatus`] as the JSON object both the metrics
/// document and `/healthz` carry under `"replication"`.
pub fn replication(r: &ReplicationStatus) -> String {
    format!(
        "{{\"role\":\"{}\",\"leader_epoch\":{},\"applied_epoch\":{},\
         \"lag_records\":{},\"lag_ms\":{}}}",
        r.role.as_str(),
        r.leader_epoch,
        r.applied_epoch,
        r.lag_records,
        r.lag_ms,
    )
}

/// Renders [`ServiceMetrics`] as the `GET /metrics` JSON document.
pub fn metrics(m: &ServiceMetrics) -> String {
    let mut buf = String::with_capacity(512);
    buf.push_str(&format!(
        "{{\"submitted\":{},\"rejected\":{},\"quota_rejected\":{},\"executed\":{},\
         \"completed\":{},\"cancelled\":{},\"truncated\":{},\"cache_hits\":{},\
         \"cache_hit_rate\":{},\"answers_delivered\":{},\"nodes_explored\":{},\
         \"queued\":{},\"swaps\":{},\"mutation_batches\":{},\
         \"mutation_ops_accepted\":{},\"mutation_ops_rejected\":{},\"epoch\":{}",
        m.submitted,
        m.rejected,
        m.quota_rejected,
        m.executed,
        m.completed,
        m.cancelled,
        m.truncated,
        m.cache_hits,
        corejson::number(m.cache_hit_rate()),
        m.answers_delivered,
        m.nodes_explored,
        m.queued,
        m.swaps,
        m.mutation_batches,
        m.mutation_ops_accepted,
        m.mutation_ops_rejected,
        m.epoch,
    ));
    buf.push_str(&format!(
        ",\"persistence_enabled\":{},\"last_checkpoint_epoch\":{},\
         \"wal_records\":{},\"wal_bytes\":{},\"checkpoints\":{},\
         \"mutation_log_entries\":{},\"mutation_log_dropped\":{},\
         \"slow_queries\":{}",
        m.persistence_enabled,
        m.last_checkpoint_epoch,
        m.wal_records,
        m.wal_bytes,
        m.checkpoints,
        m.mutation_log_entries,
        m.mutation_log_dropped,
        m.slow_queries,
    ));
    buf.push_str(&format!(",\"replication\":{}", replication(&m.replication)));
    buf.push_str(&format!(
        ",\"health\":\"{}\",\"trace_ring_dropped\":{},\"event_log_dropped\":{},\
         \"event_log_last_id\":{},\"watchdog_overruns\":{},\
         \"watchdog_queue_trips\":{},\"queue_saturation\":{}",
        m.health.as_str(),
        m.trace_ring_dropped,
        m.event_log_dropped,
        m.event_log_last_id,
        m.watchdog_overruns,
        m.watchdog_queue_trips,
        corejson::number(m.queue_saturation),
    ));
    buf.push_str(",\"slo\":[");
    for (i, row) in m.slo.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&format!(
            "{{\"name\":{},\"metric\":{},\"state\":\"{}\",\"threshold\":{},\
             \"value\":{},\"burn_fast\":{},\"burn_slow\":{}}}",
            corejson::string(&row.name),
            corejson::string(&row.metric),
            row.state.as_str(),
            corejson::number(row.threshold),
            corejson::number(row.value),
            corejson::number(row.burn_fast),
            corejson::number(row.burn_slow),
        ));
    }
    buf.push(']');
    buf.push_str(&format!(",\"shards\":{},\"shard_stats\":[", m.shards));
    for (i, s) in m.shard_stats.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&format!(
            "{{\"shard\":{},\"owned_nodes\":{},\"replica_nodes\":{},\
             \"owned_edges\":{},\"cut_edges\":{}}}",
            s.shard, s.owned_nodes, s.replica_nodes, s.owned_edges, s.cut_edges,
        ));
    }
    buf.push(']');
    for (name, summary) in [
        ("queue_wait", &m.queue_wait),
        ("ttfa", &m.ttfa),
        ("mutation_apply", &m.mutation_apply),
        ("checkpoint_latency", &m.checkpoint_latency),
        ("wal_fsync", &m.wal_fsync),
    ] {
        buf.push_str(&format!(",\"{name}\":{}", latency_summary(summary)));
    }
    buf.push_str(",\"calibration\":[");
    for (i, row) in m.calibration.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&format!(
            "{{\"engine\":{},\"origin_bucket\":{},\"origin_lo\":{},\"origin_hi\":{},\
             \"samples\":{},\"mean_nodes_explored\":{},\"correction\":{}}}",
            corejson::string(&row.engine),
            row.origin_bucket,
            row.origin_lo,
            row.origin_hi,
            row.samples,
            row.mean_nodes_explored,
            corejson::number(row.correction),
        ));
    }
    buf.push(']');
    buf.push_str(",\"tenants\":[");
    for (i, t) in m.tenants.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&format!(
            "{{\"tenant\":{},\"executed\":{},\"quota_rejected\":{},\
             \"mean_queue_wait_us\":{},\"max_queue_wait_us\":{},\
             \"quota_rate_per_sec\":{},\"quota_burst\":{}}}",
            corejson::string(&t.tenant),
            t.executed,
            t.quota_rejected,
            corejson::duration_us(t.mean_queue_wait),
            corejson::duration_us(t.max_queue_wait),
            t.quota_rate_per_sec
                .map_or_else(|| "null".to_string(), corejson::number),
            t.quota_burst
                .map_or_else(|| "null".to_string(), |b| b.to_string()),
        ));
    }
    buf.push_str("]}");
    buf
}

/// Renders a [`LatencySummary`] as the `{"count":…,"mean_us":…,…}` object
/// every latency distribution in the metrics document uses.
fn latency_summary(s: &LatencySummary) -> String {
    format!(
        "{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p90_us\":{},\
         \"p99_us\":{},\"max_us\":{}}}",
        s.count,
        corejson::duration_us(s.mean),
        corejson::duration_us(s.p50),
        corejson::duration_us(s.p90),
        corejson::duration_us(s.p99),
        corejson::duration_us(s.max),
    )
}

/// Renders a [`QueryTrace`] — the payload of the SSE `trace` event and of
/// `GET /debug/trace/<id>`.
pub fn query_trace(t: &QueryTrace) -> String {
    let mut buf = format!(
        "{{\"id\":{},\"client_ref\":{},\"tenant\":{},\"engine\":{},\
         \"cache_hit\":{},\"slow\":{},\"epoch\":{},\"total_us\":{}",
        t.id,
        t.client_ref
            .as_deref()
            .map_or_else(|| "null".to_string(), corejson::string),
        t.tenant
            .as_deref()
            .map_or_else(|| "null".to_string(), corejson::string),
        corejson::string(&t.engine),
        t.cache_hit,
        t.slow,
        t.epoch,
        t.total_us,
    );
    buf.push_str(",\"spans\":[");
    for (i, span) in t.spans.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&format!(
            "{{\"name\":{},\"start_us\":{},\"end_us\":{}}}",
            corejson::string(span.name),
            span.start_us,
            span.end_us,
        ));
    }
    buf.push_str("],\"counters\":{");
    for (i, (name, value)) in t.counters.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&format!("{}:{value}", corejson::string(name)));
    }
    buf.push_str("}}");
    buf
}

/// Renders a slice of strings as a JSON array of string literals.
pub fn string_array<S: AsRef<str>>(items: &[S]) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&corejson::string(item.as_ref()));
    }
    buf.push(']');
    buf
}

/// Renders the uniform error envelope:
/// `{"error":{"status":…,"code":…,"message":…,…extras}}`.
///
/// `extras` are pre-rendered JSON fragments appended verbatim as additional
/// members of the error object (e.g. `("suggestion", "\"bidirectional\"")`).
pub fn error_body(status: u16, code: &str, message: &str, extras: &[(&str, String)]) -> String {
    let mut buf = format!(
        "{{\"error\":{{\"status\":{status},\"code\":{},\"message\":{}",
        corejson::string(code),
        corejson::string(message),
    );
    for (key, fragment) in extras {
        buf.push_str(&format!(",{}:{}", corejson::string(key), fragment));
    }
    buf.push_str("}}");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_encoding_is_parseable_and_complete() {
        let m = ServiceMetrics::default();
        let v = parse(&metrics(&m)).unwrap();
        for key in [
            "submitted",
            "rejected",
            "quota_rejected",
            "executed",
            "cache_hits",
            "queued",
            "swaps",
            "mutation_batches",
            "mutation_ops_accepted",
            "mutation_ops_rejected",
            "epoch",
            "persistence_enabled",
            "last_checkpoint_epoch",
            "wal_records",
            "wal_bytes",
            "checkpoints",
            "mutation_log_entries",
            "mutation_log_dropped",
            "slow_queries",
            "shards",
            "health",
            "trace_ring_dropped",
            "event_log_dropped",
            "event_log_last_id",
            "watchdog_overruns",
            "watchdog_queue_trips",
            "queue_saturation",
        ] {
            assert!(v.get(key).is_some(), "metrics must include {key}");
        }
        let replication = v.get("replication").expect("replication object");
        assert_eq!(
            replication.get("role").and_then(JsonValue::as_str),
            Some("standalone"),
            "default snapshot is standalone"
        );
        for key in ["leader_epoch", "applied_epoch", "lag_records", "lag_ms"] {
            assert!(
                replication.get(key).and_then(JsonValue::as_usize).is_some(),
                "replication must include {key}"
            );
        }
        assert_eq!(
            v.get("health").and_then(JsonValue::as_str),
            Some("ok"),
            "default snapshot is healthy"
        );
        assert_eq!(v.get("slo"), Some(&JsonValue::Array(vec![])));
        assert_eq!(v.get("shard_stats"), Some(&JsonValue::Array(vec![])));
        for summary in [
            "queue_wait",
            "ttfa",
            "mutation_apply",
            "checkpoint_latency",
            "wal_fsync",
        ] {
            for field in ["count", "mean_us", "p50_us", "p90_us", "p99_us", "max_us"] {
                assert!(
                    v.get(summary).and_then(|q| q.get(field)).is_some(),
                    "metrics must include {summary}.{field}"
                );
            }
        }
        assert_eq!(v.get("tenants"), Some(&JsonValue::Array(vec![])));
        assert_eq!(v.get("calibration"), Some(&JsonValue::Array(vec![])));
    }

    #[test]
    fn trace_encoding_is_parseable() {
        let mut t = QueryTrace {
            id: 7,
            client_ref: Some("req-1".to_string()),
            tenant: None,
            engine: "bidirectional".to_string(),
            cache_hit: false,
            slow: true,
            epoch: 3,
            total_us: 1500,
            ..QueryTrace::default()
        };
        t.push_span("queue", 10, 40);
        t.push_span("expand", 40, 1400);
        t.push_counter("heap_pops", 123);
        let v = parse(&query_trace(&t)).unwrap();
        assert_eq!(v.get("id").and_then(JsonValue::as_usize), Some(7));
        assert_eq!(
            v.get("client_ref").and_then(JsonValue::as_str),
            Some("req-1")
        );
        assert_eq!(v.get("tenant"), Some(&JsonValue::Null));
        assert_eq!(v.get("slow"), Some(&JsonValue::Bool(true)));
        match v.get("spans") {
            Some(JsonValue::Array(spans)) => {
                assert_eq!(spans.len(), 2);
                assert_eq!(
                    spans[1].get("name").and_then(JsonValue::as_str),
                    Some("expand")
                );
                assert_eq!(
                    spans[1].get("end_us").and_then(JsonValue::as_usize),
                    Some(1400)
                );
            }
            other => panic!("expected spans array, got {other:?}"),
        }
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("heap_pops"))
                .and_then(JsonValue::as_usize),
            Some(123)
        );
    }

    #[test]
    fn error_envelope_shape() {
        let body = error_body(
            404,
            "unknown_engine",
            "unknown engine \"bidr\"",
            &[("suggestion", "\"bidirectional\"".to_string())],
        );
        let v = parse(&body).unwrap();
        let err = v.get("error").expect("error object");
        assert_eq!(err.get("status").and_then(JsonValue::as_usize), Some(404));
        assert_eq!(
            err.get("code").and_then(JsonValue::as_str),
            Some("unknown_engine")
        );
        assert_eq!(
            err.get("suggestion").and_then(JsonValue::as_str),
            Some("bidirectional")
        );
    }
}
