//! A hand-rolled HTTP/1.1 request parser over any [`BufRead`].
//!
//! The workspace carries no external dependencies, so the transport layer
//! is written against `std` only.  The parser is deliberately narrow — the
//! subset the BANKS front-end needs — but strict about it:
//!
//! * request line + headers are read line-by-line with a hard cap on the
//!   total head size ([`Limits::max_head_bytes`]), so a client cannot make
//!   the server buffer without bound;
//! * bodies require `Content-Length` (chunked transfer encoding is
//!   rejected) and are capped by [`Limits::max_body_bytes`];
//! * partial reads are handled by construction: every read goes through
//!   `BufRead`, which retries short reads until a full line/body arrives;
//! * methods must be ASCII-uppercase tokens — binary garbage on the wire
//!   fails fast with [`ParseError::BadRequest`] instead of being echoed
//!   into some later error message.
//!
//! Connection reuse: a client that sends `Connection: keep-alive` may
//! issue further requests on the same connection to the non-streaming
//! endpoints (`/metrics`, `/healthz`, `/admin/*`), bounded by a request
//! count and an idle timeout (see the dispatch loop in `routes`).  SSE
//! query streams hold their connection for the stream's lifetime and
//! always close, and error responses close — the conservative cases stay
//! exactly as before keep-alive existed.

use std::io::{BufRead, Write};

/// Idle seconds a kept-alive connection is allowed between requests.
/// Single source of truth: advertised in the `Keep-Alive` response header
/// by [`write_response`] and enforced (as the socket read timeout between
/// requests) by the dispatch loop in `routes`.
pub const KEEPALIVE_IDLE_SECS: u64 = 5;

/// Parser resource bounds.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Cap on the request line plus all headers, in bytes.
    pub max_head_bytes: usize,
    /// Cap on the declared `Content-Length`, in bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// The connection closed before a full request arrived.  Closing
    /// without sending anything is how well-behaved clients abandon a
    /// connection, so this is not answered with an error response.
    ConnectionClosed,
    /// The bytes on the wire are not a valid HTTP/1.x request.
    BadRequest(String),
    /// The request line + headers exceed [`Limits::max_head_bytes`]
    /// (HTTP 431).
    HeadTooLarge,
    /// The declared body exceeds [`Limits::max_body_bytes`] (HTTP 413).
    BodyTooLarge,
    /// An I/O error while reading.
    Io(std::io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::ConnectionClosed => write!(f, "connection closed before a full request"),
            ParseError::BadRequest(msg) => write!(f, "malformed request: {msg}"),
            ParseError::HeadTooLarge => write!(f, "request head too large"),
            ParseError::BodyTooLarge => write!(f, "request body too large"),
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// The request method, e.g. `GET` (always uppercase ASCII).
    pub method: String,
    /// The decoded path component of the target, e.g. `/query`.
    pub path: String,
    /// The raw query string (no leading `?`; empty when absent).
    pub query: String,
    /// Header `(name, value)` pairs; names lower-cased at parse time.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let wanted = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == wanted)
            .map(|(_, v)| v.as_str())
    }

    /// The percent-decoded value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<String> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k) == name).then(|| percent_decode(v))
        })
    }

    /// The body as UTF-8, or a description of why it is not.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("body is not valid utf-8: {e}"))
    }
}

/// Decodes `%XX` escapes and `+` (space) in a query-string component.
/// Invalid escapes pass through verbatim — for a search front-end, being
/// lenient about a stray `%` in a keyword beats rejecting the query.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b {
        Some(b @ b'0'..=b'9') => Some(b - b'0'),
        Some(b @ b'a'..=b'f') => Some(b - b'a' + 10),
        Some(b @ b'A'..=b'F') => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Reads one line (up to LF), stripping the trailing CRLF/LF.  Counts the
/// raw bytes consumed against `budget`.
fn read_line(
    reader: &mut impl BufRead,
    budget: &mut usize,
    started: bool,
) -> Result<String, ParseError> {
    let mut raw = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if raw.is_empty() && !started {
                    return Err(ParseError::ConnectionClosed);
                }
                return Err(ParseError::BadRequest(
                    "connection closed mid-line".to_string(),
                ));
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(ParseError::HeadTooLarge);
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    break;
                }
                raw.push(byte[0]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| ParseError::BadRequest("non-utf8 header line".to_string()))
}

/// Reads and parses one request from `reader`.
///
/// Blocks until a full request (head + declared body) has arrived; short
/// reads from the transport are retried, so a client trickling the request
/// byte-by-byte parses identically to one sending it in a single write.
pub fn read_request(reader: &mut impl BufRead, limits: &Limits) -> Result<Request, ParseError> {
    let mut budget = limits.max_head_bytes;

    let request_line = read_line(reader, &mut budget, false)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::BadRequest("missing request target".to_string()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| ParseError::BadRequest("missing HTTP version".to_string()))?;
    if parts.next().is_some() {
        return Err(ParseError::BadRequest(
            "request line has extra fields".to_string(),
        ));
    }
    if method.is_empty() || method.len() > 16 || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::BadRequest(format!(
            "bad method {:?}",
            method.chars().take(16).collect::<String>()
        )));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::BadRequest(format!("bad version {version:?}")));
    }
    if !target.starts_with('/') {
        return Err(ParseError::BadRequest(format!("bad target {target:?}")));
    }
    let (raw_path, raw_query) = target.split_once('?').unwrap_or((target.as_str(), ""));
    let path = percent_decode(raw_path);
    let query = raw_query.to_string();

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut budget, true)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::BadRequest(format!("header without colon: {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadRequest(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };

    if let Some(te) = request.header("transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Err(ParseError::BadRequest(format!(
                "unsupported transfer-encoding {te:?}"
            )));
        }
    }
    if let Some(raw_len) = request.header("content-length") {
        let len: usize = raw_len
            .parse()
            .map_err(|_| ParseError::BadRequest(format!("bad content-length {raw_len:?}")))?;
        if len > limits.max_body_bytes {
            return Err(ParseError::BodyTooLarge);
        }
        let mut body = vec![0u8; len];
        reader
            .read_exact(&mut body)
            .map_err(|_| ParseError::BadRequest("connection closed mid-body".to_string()))?;
        request.body = body;
    }
    Ok(request)
}

/// Human-readable reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response (status line, headers, body).  Always adds
/// `Content-Length`; the `Connection` header reflects `keep_alive` (a
/// kept-alive response also advertises the idle timeout via `Keep-Alive`).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason_phrase(status));
    head.push_str(&format!("Content-Type: {content_type}\r\n"));
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if keep_alive {
        head.push_str(&format!(
            "Connection: keep-alive\r\nKeep-Alive: timeout={KEEPALIVE_IDLE_SECS}\r\n\r\n"
        ));
    } else {
        head.push_str("Connection: close\r\n\r\n");
    }
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Read};

    /// A reader that hands out at most `chunk` bytes per `read` call —
    /// simulates a client trickling the request across many TCP segments.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.chunk).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw), &Limits::default())
    }

    #[test]
    fn parses_a_get_with_query_string() {
        let req = parse(b"GET /query?q=jim+gray&top_k=5 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(req.query_param("q").as_deref(), Some("jim gray"));
        assert_eq!(req.query_param("top_k").as_deref(), Some("5"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /query HTTP/1.1\r\nContent-Length: 11\r\nX-Banks-Tenant: ui\r\n\r\nhello world",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello world");
        assert_eq!(req.header("x-banks-tenant"), Some("ui"));
        assert_eq!(req.header("X-BANKS-TENANT"), Some("ui"), "case-insensitive");
    }

    #[test]
    fn partial_reads_reassemble_identically() {
        let raw: &[u8] =
            b"POST /query HTTP/1.1\r\nContent-Length: 17\r\nHost: localhost\r\n\r\n{\"q\":\"jim gray\"}!";
        for chunk in [1, 2, 3, 7] {
            let mut reader = BufReader::new(Trickle {
                data: raw,
                pos: 0,
                chunk,
            });
            let req = read_request(&mut reader, &Limits::default())
                .unwrap_or_else(|e| panic!("chunk={chunk}: {e}"));
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/query");
            assert_eq!(req.body, b"{\"q\":\"jim gray\"}!");
        }
    }

    #[test]
    fn rejects_bad_verbs() {
        for raw in [
            &b"get / HTTP/1.1\r\n\r\n"[..],              // lowercase
            &b"G@T / HTTP/1.1\r\n\r\n"[..],              // junk char
            &b"\x16\x03\x01\x02 / HTTP/1.1\r\n\r\n"[..], // TLS bytes on a plain port
            &b"TOOLONGAMETHODNAMEXX / HTTP/1.1\r\n\r\n"[..],
        ] {
            assert!(
                matches!(parse(raw), Err(ParseError::BadRequest(_))),
                "should reject {raw:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_request_lines_and_versions() {
        assert!(matches!(
            parse(b"GET /\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2.0\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET no-slash HTTP/1.1\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1 extra\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_heads_are_cut_off() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 20_000));
        // a single huge header line blows the default 16 KiB head budget
        raw.extend_from_slice(b": v\r\n\r\n");
        assert!(matches!(parse(&raw), Err(ParseError::HeadTooLarge)));

        // ... and so do many small headers
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..2000 {
            raw.extend_from_slice(format!("x-filler-{i}: value\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(parse(&raw), Err(ParseError::HeadTooLarge)));
    }

    #[test]
    fn oversized_bodies_are_rejected_by_declaration() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            Limits::default().max_body_bytes + 1
        );
        // rejected before reading a single body byte
        assert!(matches!(
            parse(raw.as_bytes()),
            Err(ParseError::BodyTooLarge)
        ));
    }

    #[test]
    fn truncated_requests_fail_cleanly() {
        assert!(matches!(parse(b""), Err(ParseError::ConnectionClosed)));
        assert!(matches!(parse(b"GET / HT"), Err(ParseError::BadRequest(_))));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ParseError::BadRequest(_))
        ));
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("jim+gray"), "jim gray");
        assert_eq!(percent_decode("a%20b%2Fc"), "a b/c");
        assert_eq!(
            percent_decode("100%"),
            "100%",
            "dangling escape passes through"
        );
        assert_eq!(percent_decode("%zz"), "%zz", "bad hex passes through");
        assert_eq!(
            percent_decode("caf%C3%A9"),
            "café",
            "utf-8 sequences decode"
        );
    }

    #[test]
    fn write_response_frames_correctly() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            &[("Retry-After", "7")],
            "application/json",
            b"{}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 7\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn write_response_advertises_keep_alive_when_asked() {
        let mut out = Vec::new();
        write_response(&mut out, 200, &[], "application/json", b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Keep-Alive: timeout=5\r\n"));
        assert!(!text.contains("Connection: close"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
