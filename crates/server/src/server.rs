//! The listener: accept loop, connection-handler pool, graceful shutdown.
//!
//! One acceptor thread feeds accepted connections through a channel to a
//! fixed pool of handler threads; each handler serves one connection at a
//! time (parse → dispatch → respond → close).  An SSE query stream
//! occupies its handler for the query's lifetime — the pool size is
//! therefore the bound on concurrent *streams*, while the service's worker
//! pool bounds concurrent *engine work* and its admission queue + quotas
//! bound everything else.
//!
//! ## Graceful shutdown
//!
//! [`Server::shutdown`] stops accepting, then lets every already-accepted
//! connection finish — in-flight SSE streams run to their `finished` event
//! rather than being cut mid-answer — then drains the service
//! ([`banks_service::Service::drain`]) so no engine work is abandoned:
//!
//! 1. the shutdown flag flips; a wake-up connection unblocks `accept`;
//! 2. the acceptor drops the channel sender and exits;
//! 3. handlers drain the channel and exit when it closes;
//! 4. `Service::drain` waits out any remaining queued/executing queries.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use banks_service::{GraphSnapshot, Service};

use crate::http::Limits;
use crate::routes::{handle_connection, GraphSource, ServerContext};

/// Configures and spawns a [`Server`].
pub struct ServerBuilder {
    service: Arc<Service>,
    addr: String,
    handler_threads: usize,
    limits: Limits,
    graph_source: Option<GraphSource>,
    leader_url: Option<String>,
}

impl ServerBuilder {
    /// The address to bind (default `127.0.0.1:0`: loopback, OS-assigned
    /// port — read it back with [`Server::local_addr`]).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Number of connection-handler threads (default 8; at least 1).  This
    /// bounds concurrent HTTP connections, including long-lived SSE
    /// streams; up to 2× this many accepted connections wait in a bounded
    /// hand-off queue, and everything beyond that stays in the kernel
    /// accept backlog (the acceptor blocks rather than buffer without
    /// limit).
    pub fn handler_threads(mut self, threads: usize) -> Self {
        self.handler_threads = threads.max(1);
        self
    }

    /// Overrides the HTTP parser limits (head/body byte caps).
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Installs the snapshot factory behind `POST /admin/swap` — typically
    /// "re-extract the graph from the system of record and derive prestige
    /// and index".  Without one, a swap reindexes the currently-served
    /// graph (still a fresh epoch, per the swap contract).
    pub fn graph_source(
        mut self,
        source: impl Fn() -> GraphSnapshot + Send + Sync + 'static,
    ) -> Self {
        self.graph_source = Some(Box::new(source));
        self
    }

    /// Declares the leader this process replicates from.  A follower
    /// rejects `POST /admin/mutate` with `409 Conflict`; when the leader's
    /// base URL is known, the response carries a `Location` header pointing
    /// at the leader's mutate endpoint so write traffic can be redirected.
    pub fn leader_url(mut self, url: impl Into<String>) -> Self {
        self.leader_url = Some(url.into());
        self
    }

    /// Binds the listener and spawns the acceptor + handler threads.
    pub fn spawn(self) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&self.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let context = Arc::new(ServerContext {
            service: Arc::clone(&self.service),
            graph_source: self.graph_source,
            limits: self.limits,
            leader_url: self.leader_url,
        });

        // A *bounded* hand-off queue: when every handler is busy and the
        // queue is full, the acceptor blocks, the kernel accept backlog
        // fills, and the OS refuses further connections — backpressure
        // ends at the TCP layer instead of as unbounded open fds here.
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            sync_channel(self.handler_threads * 2);
        let rx = Arc::new(Mutex::new(rx));
        let handlers = (0..self.handler_threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let context = Arc::clone(&context);
                std::thread::Builder::new()
                    .name(format!("banks-http-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only to pop; serving happens
                        // unlocked so handlers work in parallel.
                        let stream = rx.lock().expect("conn queue lock").recv();
                        match stream {
                            Ok(stream) => handle_connection(&context, stream),
                            Err(_) => return, // acceptor gone, queue drained
                        }
                    })
                    .expect("spawn handler thread")
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("banks-accept".to_string())
                .spawn(move || {
                    // `tx` moves in here: when this thread returns, the
                    // channel closes and the handlers wind down.
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        match stream {
                            Ok(stream) => {
                                if tx.send(stream).is_err() {
                                    return;
                                }
                            }
                            // Transient accept errors (EMFILE, aborted
                            // handshakes) must not kill the server — but a
                            // persistent one (fd exhaustion) must not spin
                            // the acceptor at full CPU either.
                            Err(_) => {
                                std::thread::sleep(Duration::from_millis(50));
                                continue;
                            }
                        }
                    }
                })
                .expect("spawn acceptor thread")
        };

        Ok(Server {
            local_addr,
            service: self.service,
            shutdown,
            acceptor: Some(acceptor),
            handlers,
        })
    }
}

/// The HTTP/SSE front-end: a running listener over an
/// [`Arc<Service>`](banks_service::Service).
///
/// ```
/// use std::io::{Read, Write};
/// use std::sync::Arc;
///
/// use banks_graph::GraphBuilder;
/// use banks_server::Server;
/// use banks_service::Service;
///
/// let mut b = GraphBuilder::new();
/// let author = b.add_node("author", "Jim Gray");
/// let paper = b.add_node("paper", "Granularity of locks");
/// let writes = b.add_node("writes", "w0");
/// b.add_edge(writes, author).unwrap();
/// b.add_edge(writes, paper).unwrap();
///
/// let service = Arc::new(Service::builder(b.build_default()).workers(2).build());
/// let server = Server::builder(Arc::clone(&service)).spawn().unwrap();
///
/// // Any HTTP client works; here, a raw socket.
/// let mut conn = std::net::TcpStream::connect(server.local_addr()).unwrap();
/// conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
/// let mut response = String::new();
/// conn.read_to_string(&mut response).unwrap();
/// assert!(response.starts_with("HTTP/1.1 200 OK"));
/// assert!(response.contains("\"status\":\"ok\""));
///
/// server.shutdown();
/// ```
pub struct Server {
    local_addr: SocketAddr,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts configuring a server over `service`.
    pub fn builder(service: Arc<Service>) -> ServerBuilder {
        ServerBuilder {
            service,
            addr: "127.0.0.1:0".to_string(),
            handler_threads: 8,
            limits: Limits::default(),
            graph_source: None,
            leader_url: None,
        }
    }

    /// The bound address (useful with the default OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service this server fronts (shared: submit in-process, read
    /// metrics, swap graphs — the server observes every effect).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Graceful shutdown: stop accepting, finish every accepted connection
    /// (in-flight SSE streams included), drain the service.  Equivalent to
    /// dropping the server, but explicit.
    pub fn shutdown(self) {}

    fn begin_shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock `accept` so the acceptor observes the flag.  The wake-up
        // connection is closed immediately; if it raced an actual accept,
        // the handler simply sees ConnectionClosed and moves on.  A bind
        // to the unspecified address (0.0.0.0 / ::) is not connectable on
        // every platform, so the wake targets loopback on the same port.
        let mut wake_addr = self.local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let woke = TcpStream::connect_timeout(&wake_addr, Duration::from_secs(1)).is_ok();
        if woke {
            if let Some(acceptor) = self.acceptor.take() {
                let _ = acceptor.join();
            }
            for handler in self.handlers.drain(..) {
                let _ = handler.join();
            }
        } else {
            // The acceptor could not be woken (firewalled loopback, dead
            // listener): joining would hang forever.  Detach the threads —
            // the flag is set, so the acceptor exits at its next accept
            // and takes the handlers with it — and still drain the engine
            // work below.
            self.acceptor.take();
            self.handlers.clear();
        }
        self.service.drain();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.begin_shutdown();
    }
}
