#![allow(missing_docs)]

//! Criterion bench for the Figure 5 sample-query comparison: the three
//! engines on a mixed-frequency DBLP query (rare authors + frequent term).

use criterion::{criterion_group, criterion_main, Criterion};

use banks_bench::experiments::{BenchScale, Environment};
use banks_bench::metrics::{run_engine_on_case, EngineKind};
use banks_core::SearchParams;
use banks_datagen::workload::OriginBias;
use banks_datagen::{WorkloadConfig, WorkloadGenerator};

fn bench_figure5(c: &mut Criterion) {
    let env = Environment::prepare(BenchScale::Tiny);
    let mut generator = WorkloadGenerator::new(&env.data, 501);
    let case = generator
        .generate(&WorkloadConfig {
            num_queries: 1,
            num_keywords: 3,
            origin_bias: OriginBias::Frequent,
            ..WorkloadConfig::default()
        })
        .into_iter()
        .next()
        .expect("workload query");
    let params = SearchParams::with_top_k(10).max_explored(200_000);

    let mut group = c.benchmark_group("figure5_sample_query");
    group.sample_size(10);
    for kind in [
        EngineKind::MiBackward,
        EngineKind::SiBackward,
        EngineKind::Bidirectional,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                run_engine_on_case(
                    kind,
                    env.data.dataset.graph(),
                    &env.prestige,
                    env.data.dataset.index(),
                    &case,
                    &params,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure5);
criterion_main!(benches);
