#![allow(missing_docs)]

//! Criterion bench for Figure 6(a): MI-Backward vs SI-Backward as the
//! number of keywords grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use banks_bench::experiments::{BenchScale, Environment};
use banks_bench::metrics::{run_engine_on_case, EngineKind};
use banks_core::SearchParams;
use banks_datagen::{WorkloadConfig, WorkloadGenerator};

fn bench_figure6a(c: &mut Criterion) {
    let env = Environment::prepare(BenchScale::Tiny);
    let params = SearchParams::with_top_k(10).max_explored(200_000);

    let mut group = c.benchmark_group("figure6a_mi_vs_si");
    group.sample_size(10);
    for num_keywords in [2usize, 4, 6] {
        let mut generator = WorkloadGenerator::new(&env.data, 600 + num_keywords as u64);
        let case = generator
            .generate(&WorkloadConfig {
                num_queries: 1,
                num_keywords,
                compute_ground_truth: false,
                ..WorkloadConfig::default()
            })
            .into_iter()
            .next()
            .expect("workload query");
        for kind in [EngineKind::MiBackward, EngineKind::SiBackward] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), num_keywords),
                &case,
                |b, case| {
                    b.iter(|| {
                        run_engine_on_case(
                            kind,
                            env.data.dataset.graph(),
                            &env.prestige,
                            env.data.dataset.index(),
                            case,
                            &params,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_figure6a);
criterion_main!(benches);
