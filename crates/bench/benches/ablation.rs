#![allow(missing_docs)]

//! Criterion bench for the ablation knobs: activation attenuation µ and the
//! emission policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use banks_bench::experiments::{BenchScale, Environment};
use banks_bench::metrics::{run_engine_on_case, EngineKind};
use banks_core::{EmissionPolicy, SearchParams};
use banks_datagen::{WorkloadConfig, WorkloadGenerator};

fn bench_ablation(c: &mut Criterion) {
    let env = Environment::prepare(BenchScale::Tiny);
    let mut generator = WorkloadGenerator::new(&env.data, 950);
    let case = generator
        .generate(&WorkloadConfig {
            num_queries: 1,
            num_keywords: 3,
            compute_ground_truth: false,
            ..WorkloadConfig::default()
        })
        .into_iter()
        .next()
        .expect("workload query");

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for mu in [0.1f64, 0.5, 0.9] {
        let params = SearchParams::with_top_k(10).max_explored(200_000).mu(mu);
        group.bench_with_input(
            BenchmarkId::new("mu", format!("{mu:.1}")),
            &case,
            |b, case| {
                b.iter(|| {
                    run_engine_on_case(
                        EngineKind::Bidirectional,
                        env.data.dataset.graph(),
                        &env.prestige,
                        env.data.dataset.index(),
                        case,
                        &params,
                    )
                })
            },
        );
    }
    for (label, policy) in [
        ("exact", EmissionPolicy::ExactBound),
        ("heuristic", EmissionPolicy::Heuristic),
        ("immediate", EmissionPolicy::Immediate),
    ] {
        let params = SearchParams::with_top_k(10)
            .max_explored(200_000)
            .emission(policy);
        group.bench_with_input(BenchmarkId::new("emission", label), &case, |b, case| {
            b.iter(|| {
                run_engine_on_case(
                    EngineKind::Bidirectional,
                    env.data.dataset.graph(),
                    &env.prestige,
                    env.data.dataset.index(),
                    case,
                    &params,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
