#![allow(missing_docs)]

//! Criterion bench for Figure 6(c): the join-order experiment over keyword
//! frequency categories.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use banks_bench::experiments::{BenchScale, Environment};
use banks_bench::metrics::{run_engine_on_case, EngineKind};
use banks_core::SearchParams;
use banks_datagen::{KeywordCategory, WorkloadGenerator};

fn bench_figure6c(c: &mut Criterion) {
    let env = Environment::prepare(BenchScale::Tiny);
    let params = SearchParams::with_top_k(10).max_explored(200_000);

    let combos: Vec<(&str, [KeywordCategory; 4])> = vec![
        (
            "TTTL",
            [
                KeywordCategory::Tiny,
                KeywordCategory::Tiny,
                KeywordCategory::Tiny,
                KeywordCategory::Large,
            ],
        ),
        (
            "LLLL",
            [
                KeywordCategory::Large,
                KeywordCategory::Large,
                KeywordCategory::Large,
                KeywordCategory::Large,
            ],
        ),
    ];

    let mut group = c.benchmark_group("figure6c_join_order");
    group.sample_size(10);
    for (label, combo) in &combos {
        let mut generator = WorkloadGenerator::new(&env.data, 700);
        let Some(case) = generator.generate_categorised(combo, 1).into_iter().next() else {
            continue;
        };
        for kind in [EngineKind::SiBackward, EngineKind::Bidirectional] {
            group.bench_with_input(BenchmarkId::new(kind.name(), label), &case, |b, case| {
                b.iter(|| {
                    run_engine_on_case(
                        kind,
                        env.data.dataset.graph(),
                        &env.prestige,
                        env.data.dataset.index(),
                        case,
                        &params,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_figure6c);
criterion_main!(benches);
