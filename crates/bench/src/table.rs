//! Minimal fixed-width text-table formatting for experiment output.

/// A simple text table with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells render empty, extra cells are kept).
    pub fn add_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate().take(columns) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>width$}  "));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * columns));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio with one decimal, or `-` when undefined.
pub fn fmt_ratio(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.1}"),
        _ => "-".to_string(),
    }
}

/// Formats a duration in milliseconds with two decimals.
pub fn fmt_ms(duration: std::time::Duration) -> String {
    format!("{:.2}", duration.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["query", "ratio"]);
        t.add_row(["DQ1", "3.5"]);
        t.add_row(["a-very-long-query-name", "12.0"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("query"));
        assert!(lines[2].ends_with("3.5"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.add_row(["1"]);
        t.add_row(["1", "2", "3", "4"]);
        let rendered = t.render();
        assert!(rendered.lines().count() >= 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ratio(Some(2.46913)), "2.5");
        assert_eq!(fmt_ratio(None), "-");
        assert_eq!(fmt_ratio(Some(f64::INFINITY)), "-");
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.50");
    }
}
