//! Regenerates the paper's tables and figures on the synthetic datasets.
//!
//! ```text
//! cargo run --release -p banks-bench --bin reproduce -- [experiment] [--scale tiny|small|medium]
//! ```
//!
//! `experiment` is one of `figure5`, `figure6a`, `figure6b`, `figure6c`,
//! `recall`, `anomaly`, `ablation`, or `all` (default).

use banks_bench::experiments::{self, BenchScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut scale = BenchScale::Small;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().map(String::as_str).unwrap_or("small");
                scale = BenchScale::parse(value).unwrap_or_else(|| {
                    eprintln!("unknown scale {value:?}, expected tiny|small|medium");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [figure5|figure6a|figure6b|figure6c|recall|anomaly|ablation|all] [--scale tiny|small|medium]"
                );
                return;
            }
            other => experiment = other.to_string(),
        }
    }

    let run = |name: &str| {
        println!("==============================================================");
        println!("Experiment {name} {}", experiments::scale_note(scale));
        println!("==============================================================");
        let report = match name {
            "figure5" => experiments::figure5(scale),
            "figure6a" => experiments::figure6a(scale),
            "figure6b" => experiments::figure6b(scale),
            "figure6c" => experiments::figure6c(scale),
            "recall" => experiments::recall(scale),
            "anomaly" => experiments::anomaly(scale),
            "ablation" => experiments::ablation(scale),
            other => format!("unknown experiment {other:?}"),
        };
        println!("{report}");
    };

    if experiment == "all" {
        for name in [
            "figure5", "figure6a", "figure6b", "figure6c", "recall", "anomaly", "ablation",
        ] {
            run(name);
        }
    } else {
        run(&experiment);
    }
}
