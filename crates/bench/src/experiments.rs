//! The experiments of Section 5, one function per table/figure.

use banks_core::{EmissionPolicy, SearchParams};
use banks_datagen::workload::OriginBias;
use banks_datagen::{
    DblpConfig, DblpDataset, ImdbConfig, ImdbDataset, KeywordCategory, PatentsConfig,
    PatentsDataset, QueryCase, WorkloadConfig, WorkloadGenerator,
};
use banks_graph::GraphStats;
use banks_prestige::{compute_pagerank, PageRankConfig, PrestigeVector};
use banks_relational::SparseSearch;

use crate::metrics::{average, run_engine_on_case, EngineKind, QueryMetrics};
use crate::table::{fmt_ms, fmt_ratio, Table};

/// Dataset scale used by the experiments.  The paper runs on the full DBLP /
/// IMDB / US-Patents dumps (millions of nodes); the reproduction defaults to
/// laptop-scale synthetic graphs with the same structure, and the scale can
/// be raised for closer-to-paper sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchScale {
    /// A few thousand nodes: used by unit tests and the Criterion benches.
    Tiny,
    /// Tens of thousands of nodes (default for the `reproduce` binary).
    Small,
    /// Hundreds of thousands of nodes.
    Medium,
}

impl BenchScale {
    /// Parses from a command-line string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tiny" => Some(BenchScale::Tiny),
            "small" => Some(BenchScale::Small),
            "medium" => Some(BenchScale::Medium),
            _ => None,
        }
    }

    /// DBLP generator configuration at this scale.
    pub fn dblp_config(&self) -> DblpConfig {
        match self {
            BenchScale::Tiny => DblpConfig {
                num_authors: 400,
                num_papers: 800,
                num_conferences: 8,
                seed: 71,
                ..DblpConfig::default()
            },
            BenchScale::Small => DblpConfig {
                num_authors: 3_000,
                num_papers: 6_000,
                num_conferences: 25,
                seed: 71,
                ..DblpConfig::default()
            },
            BenchScale::Medium => DblpConfig {
                num_authors: 20_000,
                num_papers: 40_000,
                num_conferences: 60,
                seed: 71,
                ..DblpConfig::default()
            },
        }
    }

    /// Queries per experiment cell at this scale.
    pub fn queries_per_cell(&self) -> usize {
        match self {
            BenchScale::Tiny => 2,
            BenchScale::Small => 5,
            BenchScale::Medium => 8,
        }
    }
}

/// A prepared evaluation environment: the DBLP-like dataset plus its
/// precomputed prestige.
pub struct Environment {
    /// The dataset.
    pub data: DblpDataset,
    /// Precomputed biased-PageRank prestige (Section 2.3).
    pub prestige: PrestigeVector,
}

impl Environment {
    /// Generates the environment for a scale.
    pub fn prepare(scale: BenchScale) -> Self {
        let data = DblpDataset::generate(scale.dblp_config());
        let (prestige, _) = compute_pagerank(data.dataset.graph(), PageRankConfig::default());
        Environment { data, prestige }
    }

    /// One-line description of the graph.
    pub fn describe(&self) -> String {
        let stats = GraphStats::compute(self.data.dataset.graph());
        format!(
            "DBLP-like graph: {} nodes, {} directed edges, max fan-in {}",
            stats.num_nodes, stats.num_directed_edges, stats.max_forward_indegree
        )
    }

    fn measure(&self, kind: EngineKind, case: &QueryCase, params: &SearchParams) -> QueryMetrics {
        run_engine_on_case(
            kind,
            self.data.dataset.graph(),
            &self.prestige,
            self.data.dataset.index(),
            case,
            params,
        )
    }
}

/// Default measurement parameters: top-10 answers (the paper measures to the
/// last relevant or the tenth relevant result) with a safety cap so that the
/// multi-iterator baseline cannot run away on large-origin queries.
fn measurement_params() -> SearchParams {
    SearchParams::with_top_k(10).max_explored(500_000)
}

// ===================================================================
// Figure 5 — sample queries
// ===================================================================

/// Reproduces the Figure 5 table: a set of sample queries with mixed keyword
/// frequencies over the DBLP-, IMDB- and Patents-like datasets, reporting
/// the MI/SI time ratio, the SI/Bidirectional ratios (nodes explored, nodes
/// touched, generation time, output time), the absolute times and the
/// Sparse lower bound.
pub fn figure5(scale: BenchScale) -> String {
    let env = Environment::prepare(scale);
    let mut out = String::new();
    out.push_str(&format!("{}\n\n", env.describe()));

    let mut table = Table::new([
        "query",
        "#kw",
        "origin-sizes",
        "RelAns",
        "MI/SI time",
        "SI/Bidir expl",
        "SI/Bidir touch",
        "SI/Bidir gen",
        "SI/Bidir out",
        "SI ms",
        "Bidir ms",
        "Bidir TTFA ms",
        "Sparse-LB ms",
        "#CN",
    ]);

    let cases = figure5_cases(&env, scale);
    for (label, case) in &cases {
        let params = measurement_params();
        let mi = env.measure(EngineKind::MiBackward, case, &params);
        let si = env.measure(EngineKind::SiBackward, case, &params);
        let bi = env.measure(EngineKind::Bidirectional, case, &params);

        // Sparse lower bound: evaluate all candidate networks up to the
        // relevant answer size over the relational database.
        let keywords: Vec<&str> = case.keywords.iter().map(String::as_str).collect();
        let sparse = SparseSearch::with_max_size(case.answer_size.max(3))
            .run(&env.data.dataset.db, &keywords);

        table.add_row([
            label.clone(),
            case.num_keywords().to_string(),
            format!("{:?}", case.origin_sizes),
            case.relevant.len().to_string(),
            fmt_ratio(QueryMetrics::time_ratio(mi.output_time, si.output_time)),
            fmt_ratio(ratio(si.nodes_explored, bi.nodes_explored)),
            fmt_ratio(ratio(si.nodes_touched, bi.nodes_touched)),
            fmt_ratio(QueryMetrics::time_ratio(
                si.generation_time,
                bi.generation_time,
            )),
            fmt_ratio(QueryMetrics::time_ratio(si.output_time, bi.output_time)),
            fmt_ms(si.output_time),
            fmt_ms(bi.output_time),
            fmt_ms(bi.time_to_first),
            fmt_ms(sparse.duration),
            sparse.num_candidate_networks.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\nIMDB- and Patents-like spot checks (SI/Bidir nodes-explored ratio):\n");
    out.push_str(&figure5_other_datasets(scale));
    out
}

fn ratio(numerator: usize, denominator: usize) -> Option<f64> {
    if denominator == 0 {
        None
    } else {
        Some(numerator as f64 / denominator as f64)
    }
}

/// Builds DQ-style sample queries with controlled keyword frequency mixes.
fn figure5_cases(env: &Environment, scale: BenchScale) -> Vec<(String, QueryCase)> {
    let mut generator = WorkloadGenerator::new(&env.data, 501);
    let mut cases = Vec::new();

    // DQ1/DQ3-style: two keywords, one rare author + one selective word.
    for (i, case) in generator
        .generate(&WorkloadConfig {
            num_queries: 2,
            num_keywords: 2,
            origin_bias: OriginBias::Rare,
            ..WorkloadConfig::default()
        })
        .into_iter()
        .enumerate()
    {
        cases.push((format!("DQ{} (rare,rare)", i * 2 + 1), case));
    }
    // DQ5/DQ7-style: 4 keywords mixing rare authors with frequent terms.
    for (i, case) in generator
        .generate(&WorkloadConfig {
            num_queries: 2,
            num_keywords: 4,
            origin_bias: OriginBias::Frequent,
            ..WorkloadConfig::default()
        })
        .into_iter()
        .enumerate()
    {
        cases.push((format!("DQ{} (rare+freq)", i * 2 + 5), case));
    }
    // DQ9-style: 6 keywords.
    for case in generator.generate(&WorkloadConfig {
        num_queries: 1,
        num_keywords: 6,
        origin_bias: OriginBias::Any,
        ..WorkloadConfig::default()
    }) {
        cases.push(("DQ9 (6 keywords)".to_string(), case));
    }
    // Anomaly-style symmetric rare query appears in figure5 as well.
    if scale != BenchScale::Tiny {
        if let Some(case) = generator.symmetric_rare_query(10) {
            cases.push(("DQx (C.Mohan-like)".to_string(), case));
        }
    }
    cases
}

/// IMDB- and Patents-like spot checks corresponding to the IQ/UQ rows.
fn figure5_other_datasets(scale: BenchScale) -> String {
    let (imdb_cfg, patents_cfg) = match scale {
        BenchScale::Tiny => (
            ImdbConfig {
                num_persons: 400,
                num_movies: 300,
                seed: 5,
                ..ImdbConfig::default()
            },
            PatentsConfig {
                num_inventors: 300,
                num_patents: 500,
                seed: 5,
                ..PatentsConfig::default()
            },
        ),
        _ => (ImdbConfig::default(), PatentsConfig::default()),
    };

    let mut table = Table::new([
        "query",
        "SI expl",
        "Bidir expl",
        "SI/Bidir expl",
        "SI ms",
        "Bidir ms",
    ]);

    // IQ1-style: actor name + movie title word + frequent term.
    let imdb = ImdbDataset::generate(imdb_cfg);
    let prestige = PrestigeVector::uniform_for(imdb.dataset.graph());
    let db = &imdb.dataset.db;
    let actor = db.referenced_row(imdb.casts, 0, 1).unwrap_or(0);
    let movie = db.referenced_row(imdb.casts, 0, 2).unwrap_or(0);
    let title_word = db
        .row_text(imdb.movie, movie)
        .to_lowercase()
        .split_whitespace()
        .next()
        .unwrap_or("database")
        .to_string();
    let case = QueryCase {
        keywords: vec![
            db.row_text(imdb.person, actor).to_lowercase(),
            title_word,
            "database".into(),
        ],
        planted_nodes: vec![imdb
            .dataset
            .extraction
            .node_of(banks_relational::TupleId::new(imdb.movie, movie))],
        relevant: vec![vec![imdb
            .dataset
            .extraction
            .node_of(banks_relational::TupleId::new(imdb.movie, movie))]],
        origin_sizes: vec![1, 1, 1],
        answer_size: 3,
    };
    let params = measurement_params();
    let si = run_engine_on_case(
        EngineKind::SiBackward,
        imdb.dataset.graph(),
        &prestige,
        imdb.dataset.index(),
        &case,
        &params,
    );
    let bi = run_engine_on_case(
        EngineKind::Bidirectional,
        imdb.dataset.graph(),
        &prestige,
        imdb.dataset.index(),
        &case,
        &params,
    );
    table.add_row([
        "IQ1 (actor+title+freq)".to_string(),
        si.nodes_explored.to_string(),
        bi.nodes_explored.to_string(),
        fmt_ratio(ratio(si.nodes_explored, bi.nodes_explored)),
        fmt_ms(si.total_time),
        fmt_ms(bi.total_time),
    ]);

    // UQ1-style: company name + frequent technical term.
    let patents = PatentsDataset::generate(patents_cfg);
    let prestige = PrestigeVector::uniform_for(patents.dataset.graph());
    let db = &patents.dataset.db;
    let company_word = db
        .row_text(patents.assignee, 0)
        .to_lowercase()
        .split_whitespace()
        .next()
        .unwrap_or("corporation")
        .to_string();
    let case = QueryCase {
        keywords: vec![company_word, "recovery".into()],
        planted_nodes: vec![patents
            .dataset
            .extraction
            .node_of(banks_relational::TupleId::new(patents.assignee, 0))],
        relevant: vec![vec![patents
            .dataset
            .extraction
            .node_of(banks_relational::TupleId::new(patents.assignee, 0))]],
        origin_sizes: vec![1, 1],
        answer_size: 2,
    };
    let si = run_engine_on_case(
        EngineKind::SiBackward,
        patents.dataset.graph(),
        &prestige,
        patents.dataset.index(),
        &case,
        &params,
    );
    let bi = run_engine_on_case(
        EngineKind::Bidirectional,
        patents.dataset.graph(),
        &prestige,
        patents.dataset.index(),
        &case,
        &params,
    );
    table.add_row([
        "UQ1 (company+freq)".to_string(),
        si.nodes_explored.to_string(),
        bi.nodes_explored.to_string(),
        fmt_ratio(ratio(si.nodes_explored, bi.nodes_explored)),
        fmt_ms(si.total_time),
        fmt_ms(bi.total_time),
    ]);

    table.render()
}

// ===================================================================
// Figure 6(a) and 6(b) — keyword-count sweeps
// ===================================================================

fn keyword_sweep(
    env: &Environment,
    scale: BenchScale,
    numerator: EngineKind,
    denominator: EngineKind,
) -> Table {
    let mut table = Table::new([
        "#keywords",
        "small-origin ratio",
        "large-origin ratio",
        "small-origin expl ratio",
        "large-origin expl ratio",
    ]);
    let per_cell = scale.queries_per_cell();
    let params = measurement_params();
    for num_keywords in 2..=7usize {
        let mut row = vec![num_keywords.to_string()];
        let mut explored_ratios = Vec::new();
        for bias in [OriginBias::Rare, OriginBias::Frequent] {
            let mut generator = WorkloadGenerator::new(&env.data, 600 + num_keywords as u64);
            let cases = generator.generate(&WorkloadConfig {
                num_queries: per_cell,
                num_keywords,
                origin_bias: bias,
                ..WorkloadConfig::default()
            });
            let num_metrics: Vec<QueryMetrics> = cases
                .iter()
                .map(|c| env.measure(numerator, c, &params))
                .collect();
            let den_metrics: Vec<QueryMetrics> = cases
                .iter()
                .map(|c| env.measure(denominator, c, &params))
                .collect();
            let num_avg = average(&num_metrics);
            let den_avg = average(&den_metrics);
            row.push(fmt_ratio(QueryMetrics::time_ratio(
                num_avg.output_time,
                den_avg.output_time,
            )));
            explored_ratios.push(fmt_ratio(ratio(
                num_avg.nodes_explored,
                den_avg.nodes_explored,
            )));
        }
        row.extend(explored_ratios);
        table.add_row(row);
    }
    table
}

/// Figure 6(a): MI-Backward / SI-Backward average time ratio vs number of
/// keywords, split into small-origin and large-origin query classes.
pub fn figure6a(scale: BenchScale) -> String {
    let env = Environment::prepare(scale);
    let mut out = format!(
        "{}\nMI-Bkwd / SI-Bkwd ratios (higher = SI wins bigger)\n\n",
        env.describe()
    );
    out.push_str(
        &keyword_sweep(&env, scale, EngineKind::MiBackward, EngineKind::SiBackward).render(),
    );
    out
}

/// Figure 6(b): SI-Backward / Bidirectional average time ratio vs number of
/// keywords.
pub fn figure6b(scale: BenchScale) -> String {
    let env = Environment::prepare(scale);
    let mut out = format!(
        "{}\nSI-Bkwd / Bidirectional ratios (higher = Bidirectional wins bigger)\n\n",
        env.describe()
    );
    out.push_str(
        &keyword_sweep(
            &env,
            scale,
            EngineKind::SiBackward,
            EngineKind::Bidirectional,
        )
        .render(),
    );
    out
}

// ===================================================================
// Figure 6(c) — join-order experiment over keyword categories
// ===================================================================

/// Figure 6(c): time and nodes-explored ratios of SI-Backward over
/// Bidirectional for 4-keyword queries whose keyword frequencies follow
/// fixed category combinations (tiny/small/medium/large).
pub fn figure6c(scale: BenchScale) -> String {
    let env = Environment::prepare(scale);
    let combos: Vec<(&str, [KeywordCategory; 4])> = vec![
        (
            "A=(T,T,T,L)",
            [
                KeywordCategory::Tiny,
                KeywordCategory::Tiny,
                KeywordCategory::Tiny,
                KeywordCategory::Large,
            ],
        ),
        (
            "B=(T,T,L,L)",
            [
                KeywordCategory::Tiny,
                KeywordCategory::Tiny,
                KeywordCategory::Large,
                KeywordCategory::Large,
            ],
        ),
        (
            "C=(T,S,S,S)",
            [
                KeywordCategory::Tiny,
                KeywordCategory::Small,
                KeywordCategory::Small,
                KeywordCategory::Small,
            ],
        ),
        (
            "D=(T,M,M,M)",
            [
                KeywordCategory::Tiny,
                KeywordCategory::Medium,
                KeywordCategory::Medium,
                KeywordCategory::Medium,
            ],
        ),
        (
            "E=(S,S,S,S)",
            [
                KeywordCategory::Small,
                KeywordCategory::Small,
                KeywordCategory::Small,
                KeywordCategory::Small,
            ],
        ),
        (
            "F=(M,M,M,M)",
            [
                KeywordCategory::Medium,
                KeywordCategory::Medium,
                KeywordCategory::Medium,
                KeywordCategory::Medium,
            ],
        ),
        (
            "G=(M,L,L,L)",
            [
                KeywordCategory::Medium,
                KeywordCategory::Large,
                KeywordCategory::Large,
                KeywordCategory::Large,
            ],
        ),
        (
            "H=(L,L,L,L)",
            [
                KeywordCategory::Large,
                KeywordCategory::Large,
                KeywordCategory::Large,
                KeywordCategory::Large,
            ],
        ),
    ];

    let mut table = Table::new([
        "combo",
        "queries",
        "SI/Bidir time",
        "SI/Bidir expl",
        "SI expl",
        "Bidir expl",
    ]);
    let per_cell = scale.queries_per_cell();
    let params = measurement_params();
    for (label, combo) in &combos {
        let mut generator = WorkloadGenerator::new(&env.data, 700);
        let cases = generator.generate_categorised(combo, per_cell);
        if cases.is_empty() {
            table.add_row([
                label.to_string(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let si: Vec<QueryMetrics> = cases
            .iter()
            .map(|c| env.measure(EngineKind::SiBackward, c, &params))
            .collect();
        let bi: Vec<QueryMetrics> = cases
            .iter()
            .map(|c| env.measure(EngineKind::Bidirectional, c, &params))
            .collect();
        let si_avg = average(&si);
        let bi_avg = average(&bi);
        table.add_row([
            label.to_string(),
            cases.len().to_string(),
            fmt_ratio(QueryMetrics::time_ratio(
                si_avg.output_time,
                bi_avg.output_time,
            )),
            fmt_ratio(ratio(si_avg.nodes_explored, bi_avg.nodes_explored)),
            si_avg.nodes_explored.to_string(),
            bi_avg.nodes_explored.to_string(),
        ]);
    }
    format!(
        "{}\nJoin-order experiment: 4 keywords, planted answer size 3\n\n{}",
        env.describe(),
        table.render()
    )
}

// ===================================================================
// Section 5.7 — recall / precision
// ===================================================================

/// Section 5.7: recall and precision of MI-Backward and Bidirectional
/// against the relationally derived ground truth.
pub fn recall(scale: BenchScale) -> String {
    let env = Environment::prepare(scale);
    let per_cell = scale.queries_per_cell() * 2;
    let mut table = Table::new([
        "#keywords",
        "engine",
        "recall",
        "precision@full-recall",
        "relevant found",
    ]);
    // A generous output budget so ordering effects do not mask recall.
    let params = SearchParams::with_top_k(50).max_explored(500_000);
    for num_keywords in [2usize, 4] {
        let mut generator = WorkloadGenerator::new(&env.data, 800 + num_keywords as u64);
        let cases = generator.generate(&WorkloadConfig {
            num_queries: per_cell,
            num_keywords,
            ..WorkloadConfig::default()
        });
        for kind in [EngineKind::MiBackward, EngineKind::Bidirectional] {
            let metrics: Vec<QueryMetrics> = cases
                .iter()
                .map(|c| env.measure(kind, c, &params))
                .collect();
            let avg = average(&metrics);
            table.add_row([
                num_keywords.to_string(),
                kind.name().to_string(),
                format!("{:.2}", avg.recall),
                format!("{:.2}", avg.precision),
                avg.relevant_found.to_string(),
            ]);
        }
    }
    format!("{}\n\n{}", env.describe(), table.render())
}

// ===================================================================
// Section 5.5 — symmetric rare-keyword anomaly
// ===================================================================

/// Section 5.5: the "C. Mohan Rothermel" anomaly — two rare keywords with
/// large fan-in, where forward search cannot help and Bidirectional may do
/// slightly more work than SI-Backward.
pub fn anomaly(scale: BenchScale) -> String {
    let env = Environment::prepare(scale);
    let mut generator = WorkloadGenerator::new(&env.data, 900);
    let Some(case) = generator.symmetric_rare_query(10) else {
        return "anomaly: could not build the symmetric rare query".to_string();
    };
    let params = measurement_params();
    let si = env.measure(EngineKind::SiBackward, &case, &params);
    let bi = env.measure(EngineKind::Bidirectional, &case, &params);
    let mut table = Table::new(["engine", "explored", "touched", "time ms"]);
    table.add_row([
        EngineKind::SiBackward.name().to_string(),
        si.nodes_explored.to_string(),
        si.nodes_touched.to_string(),
        fmt_ms(si.total_time),
    ]);
    table.add_row([
        EngineKind::Bidirectional.name().to_string(),
        bi.nodes_explored.to_string(),
        bi.nodes_touched.to_string(),
        fmt_ms(bi.total_time),
    ]);
    format!(
        "{}\nquery: {:?} (both keywords rare, both authors prolific)\n\n{}",
        env.describe(),
        case.keywords,
        table.render()
    )
}

// ===================================================================
// Ablations — µ, dmax, λ, emission policy
// ===================================================================

/// Ablation sweeps over the design knobs DESIGN.md calls out: the activation
/// attenuation µ, the depth cutoff dmax, the prestige exponent λ, and the
/// emission policy (exact bound vs heuristic vs immediate).
pub fn ablation(scale: BenchScale) -> String {
    let env = Environment::prepare(scale);
    let mut generator = WorkloadGenerator::new(&env.data, 950);
    let cases = generator.generate(&WorkloadConfig {
        num_queries: scale.queries_per_cell() * 2,
        num_keywords: 3,
        ..WorkloadConfig::default()
    });
    let run = |params: &SearchParams| -> QueryMetrics {
        let metrics: Vec<QueryMetrics> = cases
            .iter()
            .map(|c| env.measure(EngineKind::Bidirectional, c, params))
            .collect();
        average(&metrics)
    };

    let mut out = format!("{}\n\n", env.describe());

    let mut table = Table::new(["µ", "explored", "gen ms", "out ms", "recall"]);
    for mu in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let avg = run(&measurement_params().mu(mu));
        table.add_row([
            format!("{mu:.1}"),
            avg.nodes_explored.to_string(),
            fmt_ms(avg.generation_time),
            fmt_ms(avg.output_time),
            format!("{:.2}", avg.recall),
        ]);
    }
    out.push_str("µ sweep (activation attenuation):\n");
    out.push_str(&table.render());

    let mut table = Table::new(["dmax", "explored", "out ms", "recall"]);
    for dmax in [2usize, 4, 6, 8, 10] {
        let avg = run(&measurement_params().dmax(dmax));
        table.add_row([
            dmax.to_string(),
            avg.nodes_explored.to_string(),
            fmt_ms(avg.output_time),
            format!("{:.2}", avg.recall),
        ]);
    }
    out.push_str("\ndmax sweep (depth cutoff):\n");
    out.push_str(&table.render());

    let mut table = Table::new(["λ", "explored", "out ms", "recall"]);
    for lambda in [0.0, 0.2, 0.5, 1.0] {
        let avg = run(&measurement_params().lambda(lambda));
        table.add_row([
            format!("{lambda:.1}"),
            avg.nodes_explored.to_string(),
            fmt_ms(avg.output_time),
            format!("{:.2}", avg.recall),
        ]);
    }
    out.push_str("\nλ sweep (prestige exponent):\n");
    out.push_str(&table.render());

    let mut table = Table::new(["emission", "gen ms", "out ms", "recall"]);
    for (label, policy) in [
        ("exact-bound", EmissionPolicy::ExactBound),
        ("heuristic", EmissionPolicy::Heuristic),
        ("immediate", EmissionPolicy::Immediate),
    ] {
        let avg = run(&measurement_params().emission(policy));
        table.add_row([
            label.to_string(),
            fmt_ms(avg.generation_time),
            fmt_ms(avg.output_time),
            format!("{:.2}", avg.recall),
        ]);
    }
    out.push_str("\nemission policy (generation vs output time):\n");
    out.push_str(&table.render());
    out
}

/// Default wall-clock budget note appended by the `reproduce` binary.
pub fn scale_note(scale: BenchScale) -> String {
    format!(
        "(scale = {scale:?}; absolute numbers are hardware- and scale-dependent, the paper's \
claims concern the ratios and their trends)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole experiment suite runs end-to-end at tiny scale.  This keeps
    /// every experiment covered by `cargo test` without taking minutes.
    #[test]
    fn experiments_run_at_tiny_scale() {
        let f5 = figure5(BenchScale::Tiny);
        assert!(f5.contains("DQ1"));
        assert!(f5.contains("IQ1"));
        assert!(f5.contains("UQ1"));

        let f6c = figure6c(BenchScale::Tiny);
        assert!(f6c.contains("A=(T,T,T,L)"));

        let rec = recall(BenchScale::Tiny);
        assert!(rec.contains("Bidirectional"));

        let ano = anomaly(BenchScale::Tiny);
        assert!(ano.contains("explored"));
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(BenchScale::parse("tiny"), Some(BenchScale::Tiny));
        assert_eq!(BenchScale::parse("small"), Some(BenchScale::Small));
        assert_eq!(BenchScale::parse("medium"), Some(BenchScale::Medium));
        assert_eq!(BenchScale::parse("bogus"), None);
        assert!(BenchScale::Tiny.queries_per_cell() < BenchScale::Medium.queries_per_cell());
    }
}
