//! Per-query measurement helpers shared by all experiments.

use std::time::Duration;

use banks_core::{EngineRegistry, GroundTruth, SearchEngine, SearchOutcome, SearchParams};
use banks_datagen::QueryCase;
use banks_graph::DataGraph;
use banks_prestige::PrestigeVector;
use banks_textindex::{InvertedIndex, KeywordMatches};

/// The three engines compared throughout the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Multi-iterator Backward expanding search (BANKS-I).
    MiBackward,
    /// Single-iterator Backward search (Section 4.6).
    SiBackward,
    /// Bidirectional expanding search (the paper's contribution).
    Bidirectional,
}

impl EngineKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::MiBackward => "MI-Bkwd",
            EngineKind::SiBackward => "SI-Bkwd",
            EngineKind::Bidirectional => "Bidirectional",
        }
    }

    /// The engine's name in [`EngineRegistry::with_default_engines`].
    pub fn registry_name(&self) -> &'static str {
        match self {
            EngineKind::MiBackward => "mi-backward",
            EngineKind::SiBackward => "si-backward",
            EngineKind::Bidirectional => "bidirectional",
        }
    }

    /// Instantiates the engine through the default registry (built once —
    /// this runs inside criterion-timed loops).
    pub fn engine(&self) -> Box<dyn SearchEngine> {
        static REGISTRY: std::sync::OnceLock<EngineRegistry> = std::sync::OnceLock::new();
        REGISTRY
            .get_or_init(EngineRegistry::with_default_engines)
            .create(self.registry_name())
            .expect("default registry covers every EngineKind")
    }
}

/// The paper's per-query metrics (Section 5.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryMetrics {
    /// Nodes popped from the frontier queues.
    pub nodes_explored: usize,
    /// Nodes inserted into the frontier queues.
    pub nodes_touched: usize,
    /// Wall-clock time of the whole search.
    pub total_time: Duration,
    /// Time at which the last relevant answer (or the tenth, whichever is
    /// earlier) was *generated*.
    pub generation_time: Duration,
    /// Time at which that answer was *output*.
    pub output_time: Duration,
    /// Time at which the very first answer was output (the paper's
    /// Figure 5/6 time-to-first-answer metric; the full search duration
    /// when no answer was produced).
    pub time_to_first: Duration,
    /// Number of relevant answers found.
    pub relevant_found: usize,
    /// Recall against the case's ground truth.
    pub recall: f64,
    /// Precision over the produced output.
    pub precision: f64,
}

impl QueryMetrics {
    /// Extracts the metrics from a finished search, measuring times at the
    /// last relevant answer exactly as the paper does (falling back to the
    /// full search duration if no relevant answer was produced).
    pub fn from_outcome(outcome: &SearchOutcome, ground_truth: &GroundTruth) -> Self {
        let rp = ground_truth.evaluate(outcome);
        let mut generation_time = outcome.stats.duration;
        let mut output_time = outcome.stats.duration;
        // Identify relevant answers in output order and take the tenth (or
        // last) one as the measurement point.
        let mut relevant_seen = 0usize;
        for answer in &outcome.answers {
            if ground_truth.is_relevant(&answer.tree.nodes()) {
                relevant_seen += 1;
                generation_time = answer.timing.generated_at;
                output_time = answer.timing.output_at;
                if relevant_seen >= 10 {
                    break;
                }
            }
        }
        QueryMetrics {
            nodes_explored: outcome.stats.nodes_explored,
            nodes_touched: outcome.stats.nodes_touched,
            total_time: outcome.stats.duration,
            generation_time,
            output_time,
            time_to_first: outcome
                .time_to_first_answer()
                .unwrap_or(outcome.stats.duration),
            relevant_found: rp.relevant_found,
            recall: rp.recall,
            precision: rp.precision,
        }
    }

    /// Ratio of two durations (other / self), `None` if degenerate.
    pub fn time_ratio(numerator: Duration, denominator: Duration) -> Option<f64> {
        let d = denominator.as_secs_f64();
        if d <= 0.0 {
            None
        } else {
            Some(numerator.as_secs_f64() / d)
        }
    }
}

/// Runs one engine on one workload case and measures it.
pub fn run_engine_on_case(
    kind: EngineKind,
    graph: &DataGraph,
    prestige: &PrestigeVector,
    index: &InvertedIndex,
    case: &QueryCase,
    params: &SearchParams,
) -> QueryMetrics {
    let matches = KeywordMatches::resolve(graph, index, &case.query());
    let ground_truth = GroundTruth::from_sets(case.relevant.clone());
    let outcome = kind.engine().search(graph, prestige, &matches, params);
    QueryMetrics::from_outcome(&outcome, &ground_truth)
}

/// Averages a slice of per-query metrics (times averaged arithmetically).
pub fn average(metrics: &[QueryMetrics]) -> QueryMetrics {
    if metrics.is_empty() {
        return QueryMetrics::default();
    }
    let n = metrics.len() as f64;
    let avg_duration = |f: fn(&QueryMetrics) -> Duration| {
        Duration::from_secs_f64(metrics.iter().map(|m| f(m).as_secs_f64()).sum::<f64>() / n)
    };
    QueryMetrics {
        nodes_explored: (metrics.iter().map(|m| m.nodes_explored).sum::<usize>() as f64 / n)
            as usize,
        nodes_touched: (metrics.iter().map(|m| m.nodes_touched).sum::<usize>() as f64 / n) as usize,
        total_time: avg_duration(|m| m.total_time),
        generation_time: avg_duration(|m| m.generation_time),
        output_time: avg_duration(|m| m.output_time),
        time_to_first: avg_duration(|m| m.time_to_first),
        relevant_found: (metrics.iter().map(|m| m.relevant_found).sum::<usize>() as f64 / n).round()
            as usize,
        recall: metrics.iter().map(|m| m.recall).sum::<f64>() / n,
        precision: metrics.iter().map(|m| m.precision).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_datagen::{DblpConfig, DblpDataset, WorkloadConfig, WorkloadGenerator};

    #[test]
    fn engine_kinds_instantiate_through_the_registry() {
        assert_eq!(EngineKind::MiBackward.name(), "MI-Bkwd");
        assert_eq!(EngineKind::SiBackward.name(), "SI-Bkwd");
        assert_eq!(EngineKind::Bidirectional.name(), "Bidirectional");
        let expected = ["MI-Backward", "SI-Backward", "Bidirectional"];
        for (kind, engine_name) in [
            EngineKind::MiBackward,
            EngineKind::SiBackward,
            EngineKind::Bidirectional,
        ]
        .iter()
        .zip(expected)
        {
            assert_eq!(kind.engine().name(), engine_name);
        }
    }

    #[test]
    fn metrics_from_a_real_query() {
        let data = DblpDataset::generate(DblpConfig::tiny());
        let prestige = PrestigeVector::uniform_for(data.dataset.graph());
        let mut generator = WorkloadGenerator::new(&data, 9);
        let case = generator
            .generate(&WorkloadConfig {
                num_queries: 1,
                num_keywords: 2,
                ..Default::default()
            })
            .into_iter()
            .next()
            .unwrap();
        let metrics = run_engine_on_case(
            EngineKind::Bidirectional,
            data.dataset.graph(),
            &prestige,
            data.dataset.index(),
            &case,
            &SearchParams::with_top_k(20),
        );
        assert!(metrics.nodes_explored > 0);
        assert!(metrics.recall > 0.0);
        assert!(metrics.generation_time <= metrics.output_time);
        assert!(metrics.output_time <= metrics.total_time + Duration::from_millis(1));
        assert!(
            metrics.time_to_first <= metrics.output_time,
            "the first answer cannot be output after the measured relevant answer"
        );
    }

    #[test]
    fn averaging() {
        let a = QueryMetrics {
            nodes_explored: 10,
            recall: 1.0,
            ..Default::default()
        };
        let b = QueryMetrics {
            nodes_explored: 30,
            recall: 0.5,
            ..Default::default()
        };
        let avg = average(&[a, b]);
        assert_eq!(avg.nodes_explored, 20);
        assert!((avg.recall - 0.75).abs() < 1e-12);
        assert_eq!(average(&[]).nodes_explored, 0);
        assert_eq!(
            QueryMetrics::time_ratio(Duration::from_secs(2), Duration::from_secs(1)),
            Some(2.0)
        );
        assert_eq!(
            QueryMetrics::time_ratio(Duration::from_secs(2), Duration::ZERO),
            None
        );
    }
}
