//! # banks-bench
//!
//! Benchmark harness that regenerates every table and figure of the
//! BANKS-II evaluation (Section 5 of the paper) on the synthetic datasets:
//!
//! * [`figure5`] — the sample-query table (DQ/IQ/UQ rows): MI-vs-SI and
//!   SI-vs-Bidirectional ratios, absolute times and the Sparse lower bound,
//! * [`figure6a`] — MI-Backward / SI-Backward time ratio vs number of
//!   keywords, for small-origin and large-origin query classes,
//! * [`figure6b`] — SI-Backward / Bidirectional time ratio vs number of
//!   keywords,
//! * [`figure6c`] — the join-order experiment over keyword-frequency
//!   categories (tiny/small/medium/large),
//! * [`recall`] — the recall/precision experiment of Section 5.7,
//! * [`anomaly`] — the symmetric rare-keyword query of Section 5.5 where
//!   Bidirectional loses,
//! * [`ablation`] — sweeps over µ, dmax, λ and the emission policy.
//!
//! Each experiment returns plain-text rows (also consumed by the `reproduce`
//! binary and the Criterion benches).  Absolute times are hardware- and
//! scale-dependent; the paper's claims are about *ratios* and orderings,
//! which is what the rows report.

pub mod experiments;
pub mod metrics;
pub mod table;

pub use experiments::{
    ablation, anomaly, figure5, figure6a, figure6b, figure6c, recall, BenchScale,
};
pub use metrics::{run_engine_on_case, EngineKind, QueryMetrics};
pub use table::Table;
