//! Relational → graph extraction (Section 2.1 of the paper).
//!
//! "For each row `r` in a database that we need to represent, the data graph
//! has a corresponding node `u_r` ... For each pair of tuples `r1` and `r2`
//! such that there is a foreign key from `r1` to `r2`, the graph contains an
//! edge from `u_{r1}` to `u_{r2}`."
//!
//! The extraction also builds the keyword index over the text attributes and
//! registers every relation name as a pseudo term (so that a query term
//! matching a table name matches every tuple of that table), and keeps the
//! tuple ↔ node correspondence so relationally-derived ground truth can be
//! translated into graph node sets.

use banks_graph::{DataGraph, ExpansionPolicy, GraphBuilder, NodeId};
use banks_textindex::{IndexBuilder, InvertedIndex};

use crate::database::{Database, TupleId};
use crate::schema::TableId;

/// The product of extracting a [`Database`] into graph form.
#[derive(Clone, Debug)]
pub struct GraphExtraction {
    /// The data graph (tuples as nodes, foreign keys as edges, backward
    /// edges per the expansion policy).
    pub graph: DataGraph,
    /// Keyword index over the tuples' text attributes.
    pub index: InvertedIndex,
    /// `node_offsets[t]` is the node id of row 0 of table `t`; rows are laid
    /// out contiguously per table.
    node_offsets: Vec<u32>,
}

impl GraphExtraction {
    /// Extracts a database with the paper's default expansion policy.
    pub fn extract(db: &Database) -> Self {
        Self::extract_with_policy(db, ExpansionPolicy::paper_default())
    }

    /// Extracts a database with an explicit expansion policy.
    pub fn extract_with_policy(db: &Database, policy: ExpansionPolicy) -> Self {
        let schema = db.schema();
        let mut builder = GraphBuilder::with_capacity(db.total_rows(), db.total_rows());
        let mut index_builder = IndexBuilder::with_default_tokenizer();

        // Pass 1: nodes, laid out table by table.
        let mut node_offsets = Vec::with_capacity(schema.num_tables());
        for (table_id, table) in schema.tables() {
            node_offsets.push(builder.num_nodes() as u32);
            let kind = builder.kind(&table.name);
            for row in db.rows(table_id) {
                let text = db.row_text(table_id, row);
                let label = if text.is_empty() {
                    format!("{}#{row}", table.name)
                } else {
                    text.clone()
                };
                let node = builder.add_node_with_kind(kind, label);
                if !text.is_empty() {
                    index_builder.add_text(node, &text);
                }
            }
        }

        // Relation names as pseudo terms.
        let offsets = node_offsets.clone();
        for (table_id, table) in schema.tables() {
            // kind ids were interned in pass 1 in the same order as tables
            let kind = banks_graph::KindId(table_id.0);
            index_builder.add_relation_name(&table.name, kind);
        }

        // Pass 2: edges from foreign keys.
        for (table_id, table) in schema.tables() {
            for fk in &table.foreign_keys {
                for row in db.rows(table_id) {
                    if let Some(target_row) = db.referenced_row(table_id, row, fk.column) {
                        let from = NodeId(offsets[table_id.index()] + row);
                        let to = NodeId(offsets[fk.target.index()] + target_row);
                        builder
                            .add_edge(from, to)
                            .expect("extraction produced an out-of-range edge");
                    }
                }
            }
        }

        let graph = builder.build(policy);
        let index = index_builder.build();
        GraphExtraction {
            graph,
            index,
            node_offsets,
        }
    }

    /// The graph node corresponding to a tuple.
    pub fn node_of(&self, tuple: TupleId) -> NodeId {
        NodeId(self.node_offsets[tuple.table.index()] + tuple.row)
    }

    /// The tuple corresponding to a graph node.
    pub fn tuple_of(&self, node: NodeId) -> TupleId {
        let mut table_idx = 0usize;
        for (i, offset) in self.node_offsets.iter().enumerate() {
            if node.0 >= *offset {
                table_idx = i;
            } else {
                break;
            }
        }
        TupleId {
            table: TableId(table_idx as u16),
            row: node.0 - self.node_offsets[table_idx],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DatabaseSchema;
    use banks_graph::EdgeKind;

    fn tiny_db() -> (Database, TableId, TableId, TableId) {
        let mut schema = DatabaseSchema::new();
        let author = schema.add_simple_table("author", &["name"], &[]).unwrap();
        let paper = schema.add_simple_table("paper", &["title"], &[]).unwrap();
        let writes = schema
            .add_simple_table("writes", &[], &[("aid", author), ("pid", paper)])
            .unwrap();
        let mut db = Database::new(schema);
        db.insert(author, vec!["Jim Gray".into()]).unwrap();
        db.insert(author, vec!["David Fernandez".into()]).unwrap();
        db.insert(paper, vec!["Transaction recovery".into()])
            .unwrap();
        db.insert(paper, vec!["Parametric query optimization".into()])
            .unwrap();
        db.insert(writes, vec![0u32.into(), 0u32.into()]).unwrap();
        db.insert(writes, vec![1u32.into(), 1u32.into()]).unwrap();
        (db, author, paper, writes)
    }

    #[test]
    fn nodes_and_edges_mirror_tuples_and_fks() {
        let (db, author, paper, writes) = tiny_db();
        let ext = GraphExtraction::extract(&db);
        assert_eq!(ext.graph.num_nodes(), db.total_rows());
        // 2 FK columns * 2 writes rows = 4 forward edges
        assert_eq!(ext.graph.num_original_edges(), 4);
        assert_eq!(ext.graph.num_directed_edges(), 8);

        // writes row 0 points at author 0 and paper 0
        let w0 = ext.node_of(TupleId::new(writes, 0));
        let a0 = ext.node_of(TupleId::new(author, 0));
        let p0 = ext.node_of(TupleId::new(paper, 0));
        assert!(ext
            .graph
            .out_edges(w0)
            .any(|e| e.to == a0 && e.kind == EdgeKind::Forward));
        assert!(ext
            .graph
            .out_edges(w0)
            .any(|e| e.to == p0 && e.kind == EdgeKind::Forward));
    }

    #[test]
    fn node_kinds_and_labels_come_from_tables() {
        let (db, author, _, writes) = tiny_db();
        let ext = GraphExtraction::extract(&db);
        let a1 = ext.node_of(TupleId::new(author, 1));
        assert_eq!(ext.graph.node_kind_name(a1), "author");
        assert_eq!(ext.graph.node_label(a1), "David Fernandez");
        // writes rows have no text columns -> synthetic label
        let w0 = ext.node_of(TupleId::new(writes, 0));
        assert_eq!(ext.graph.node_kind_name(w0), "writes");
        assert!(ext.graph.node_label(w0).starts_with("writes#"));
    }

    #[test]
    fn index_covers_text_and_relation_names() {
        let (db, author, paper, _) = tiny_db();
        let ext = GraphExtraction::extract(&db);
        let a0 = ext.node_of(TupleId::new(author, 0));
        assert_eq!(ext.index.matching_nodes(&ext.graph, "gray"), vec![a0]);
        // relation name 'paper' matches both paper tuples
        let papers = ext.index.matching_nodes(&ext.graph, "paper");
        assert_eq!(papers.len(), 2);
        assert!(papers.contains(&ext.node_of(TupleId::new(paper, 0))));
    }

    #[test]
    fn tuple_node_roundtrip() {
        let (db, author, paper, writes) = tiny_db();
        let ext = GraphExtraction::extract(&db);
        for table in [author, paper, writes] {
            for row in db.rows(table) {
                let tuple = TupleId::new(table, row);
                assert_eq!(ext.tuple_of(ext.node_of(tuple)), tuple);
            }
        }
    }
}
