//! Cell values.

use std::fmt;

/// A single cell value.  Only the types needed by the paper's datasets are
/// supported: integers (ids, years, counts) and text (names, titles).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Missing value.
    Null,
    /// 64-bit integer (also used for foreign-key row references).
    Int(i64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// Text content, if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Text("abc".into()).as_text(), Some("abc"));
        assert_eq!(Value::Int(7).as_text(), None);
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Text("x".into()).as_int(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(String::from("hi")), Value::Text("hi".into()));
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Text("t".into()).to_string(), "t");
    }
}
