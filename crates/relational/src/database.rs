//! The in-memory database: typed rows, foreign-key indexes and keyword
//! selections.

use std::collections::HashMap;

use banks_textindex::Tokenizer;

use crate::error::RelationalError;
use crate::schema::{ColumnType, DatabaseSchema, TableId};
use crate::value::Value;
use crate::Result;

/// Row identifier within a table (its insertion position).
pub type RowId = u32;

/// Globally unique tuple identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// The table.
    pub table: TableId,
    /// The row within the table.
    pub row: RowId,
}

impl TupleId {
    /// Creates a tuple id.
    pub fn new(table: TableId, row: RowId) -> Self {
        TupleId { table, row }
    }
}

#[derive(Clone, Debug, Default)]
struct TableData {
    rows: Vec<Vec<Value>>,
    /// Per foreign-key column: target row id -> referencing row ids.
    fk_indexes: HashMap<usize, HashMap<RowId, Vec<RowId>>>,
}

/// An in-memory relational database instance.
#[derive(Clone, Debug)]
pub struct Database {
    schema: DatabaseSchema,
    tables: Vec<TableData>,
    tokenizer: Tokenizer,
}

impl Database {
    /// Creates an empty database for a schema.
    ///
    /// # Panics
    /// Panics if the schema fails validation (programming error in the
    /// caller; the dataset generators construct schemas statically).
    pub fn new(schema: DatabaseSchema) -> Self {
        schema.validate().expect("invalid schema");
        let tables = vec![TableData::default(); schema.num_tables()];
        Database {
            schema,
            tables,
            tokenizer: Tokenizer::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The tokenizer used for keyword selections.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Inserts a row and returns its row id.
    pub fn insert(&mut self, table: TableId, values: Vec<Value>) -> Result<RowId> {
        let schema = self.schema.table(table);
        if values.len() != schema.columns.len() {
            return Err(RelationalError::RowShapeMismatch {
                table: schema.name.clone(),
                message: format!(
                    "expected {} values, got {}",
                    schema.columns.len(),
                    values.len()
                ),
            });
        }
        for (column, value) in schema.columns.iter().zip(values.iter()) {
            let ok = matches!(
                (column.column_type, value),
                (_, Value::Null)
                    | (ColumnType::Int, Value::Int(_))
                    | (ColumnType::Text, Value::Text(_))
            );
            if !ok {
                return Err(RelationalError::RowShapeMismatch {
                    table: schema.name.clone(),
                    message: format!("column {} has incompatible value {value}", column.name),
                });
            }
        }
        let data = &mut self.tables[table.index()];
        let row_id = data.rows.len() as RowId;
        // maintain FK indexes
        for fk in &schema.foreign_keys {
            if let Some(target_row) = values[fk.column].as_int() {
                data.fk_indexes
                    .entry(fk.column)
                    .or_default()
                    .entry(target_row as RowId)
                    .or_default()
                    .push(row_id);
            }
        }
        data.rows.push(values);
        Ok(row_id)
    }

    /// Number of rows in a table.
    pub fn num_rows(&self, table: TableId) -> usize {
        self.tables[table.index()].rows.len()
    }

    /// Total number of tuples across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows.len()).sum()
    }

    /// A row's values.
    pub fn row(&self, table: TableId, row: RowId) -> Option<&[Value]> {
        self.tables[table.index()]
            .rows
            .get(row as usize)
            .map(|r| r.as_slice())
    }

    /// A single cell.
    pub fn cell(&self, tuple: TupleId, column: usize) -> Option<&Value> {
        self.row(tuple.table, tuple.row).and_then(|r| r.get(column))
    }

    /// Iterates over the row ids of a table.
    pub fn rows(&self, table: TableId) -> impl Iterator<Item = RowId> {
        0..self.num_rows(table) as RowId
    }

    /// Concatenated text content of a row (all text columns joined by a
    /// space) — this is what gets indexed for keyword search.
    pub fn row_text(&self, table: TableId, row: RowId) -> String {
        let schema = self.schema.table(table);
        let values = &self.tables[table.index()].rows[row as usize];
        schema
            .text_columns()
            .into_iter()
            .filter_map(|c| values[c].as_text())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Row ids of `table` whose text contains the (already normalised)
    /// keyword — the relational equivalent of a keyword selection.  A
    /// multi-word keyword must have all of its words present.
    pub fn keyword_selection(&self, table: TableId, keyword: &str) -> Vec<RowId> {
        let terms = self.tokenizer.tokenize(keyword);
        if terms.is_empty() {
            return Vec::new();
        }
        self.rows(table)
            .filter(|row| {
                let tokens = self.tokenizer.tokenize(&self.row_text(table, *row));
                terms.iter().all(|t| tokens.contains(t))
            })
            .collect()
    }

    /// Rows of `table` referencing `target_row` through the foreign key in
    /// column `fk_column` (uses the maintained index).
    pub fn referencing_rows(
        &self,
        table: TableId,
        fk_column: usize,
        target_row: RowId,
    ) -> &[RowId] {
        self.tables[table.index()]
            .fk_indexes
            .get(&fk_column)
            .and_then(|idx| idx.get(&target_row))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The row referenced by `row`'s foreign key in `fk_column`, if set.
    pub fn referenced_row(&self, table: TableId, row: RowId, fk_column: usize) -> Option<RowId> {
        self.row(table, row)
            .and_then(|values| values.get(fk_column))
            .and_then(Value::as_int)
            .map(|v| v as RowId)
    }

    /// Verifies referential integrity of every foreign key.
    pub fn check_integrity(&self) -> Result<()> {
        for (table_id, schema) in self.schema.tables() {
            for fk in &schema.foreign_keys {
                for row in self.rows(table_id) {
                    if let Some(target) = self.referenced_row(table_id, row, fk.column) {
                        if (target as usize) >= self.num_rows(fk.target) {
                            return Err(RelationalError::DanglingReference {
                                table: schema.name.clone(),
                                column: schema.columns[fk.column].name.clone(),
                                target,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DatabaseSchema;

    fn tiny_db() -> (Database, TableId, TableId, TableId) {
        let mut schema = DatabaseSchema::new();
        let author = schema.add_simple_table("author", &["name"], &[]).unwrap();
        let paper = schema.add_simple_table("paper", &["title"], &[]).unwrap();
        let writes = schema
            .add_simple_table("writes", &[], &[("aid", author), ("pid", paper)])
            .unwrap();
        let mut db = Database::new(schema);
        let a0 = db.insert(author, vec!["Jim Gray".into()]).unwrap();
        let a1 = db.insert(author, vec!["David Fernandez".into()]).unwrap();
        let p0 = db
            .insert(paper, vec!["Transaction recovery".into()])
            .unwrap();
        let p1 = db
            .insert(paper, vec!["Parametric query optimization".into()])
            .unwrap();
        db.insert(writes, vec![a0.into(), p0.into()]).unwrap();
        db.insert(writes, vec![a1.into(), p1.into()]).unwrap();
        db.insert(writes, vec![a0.into(), p1.into()]).unwrap();
        (db, author, paper, writes)
    }

    #[test]
    fn insert_and_read_back() {
        let (db, author, paper, writes) = tiny_db();
        assert_eq!(db.num_rows(author), 2);
        assert_eq!(db.num_rows(paper), 2);
        assert_eq!(db.num_rows(writes), 3);
        assert_eq!(db.total_rows(), 7);
        assert_eq!(db.row(author, 0).unwrap()[0].as_text(), Some("Jim Gray"));
        assert_eq!(
            db.cell(TupleId::new(writes, 1), 0).unwrap().as_int(),
            Some(1)
        );
        assert!(db.row(author, 5).is_none());
        assert!(db.check_integrity().is_ok());
    }

    #[test]
    fn rejects_bad_rows() {
        let (mut db, author, _, writes) = tiny_db();
        assert!(db.insert(author, vec![]).is_err());
        assert!(db.insert(author, vec![Value::Int(3)]).is_err());
        assert!(db.insert(writes, vec!["x".into(), Value::Int(0)]).is_err());
        // nulls are allowed anywhere
        assert!(db.insert(author, vec![Value::Null]).is_ok());
    }

    #[test]
    fn keyword_selection_matches_rows() {
        let (db, author, paper, _) = tiny_db();
        assert_eq!(db.keyword_selection(author, "gray"), vec![0]);
        assert_eq!(db.keyword_selection(author, "fernandez"), vec![1]);
        assert_eq!(db.keyword_selection(paper, "query optimization"), vec![1]);
        assert!(db.keyword_selection(paper, "gray").is_empty());
        assert!(db.keyword_selection(paper, "").is_empty());
    }

    #[test]
    fn fk_indexes_answer_reference_lookups() {
        let (db, _, _, writes) = tiny_db();
        // writes rows referencing author 0: rows 0 and 2
        assert_eq!(db.referencing_rows(writes, 0, 0), &[0, 2]);
        assert_eq!(db.referencing_rows(writes, 0, 1), &[1]);
        assert_eq!(db.referencing_rows(writes, 1, 1), &[1, 2]);
        assert!(db.referencing_rows(writes, 0, 9).is_empty());
        assert_eq!(db.referenced_row(writes, 2, 1), Some(1));
    }

    #[test]
    fn integrity_check_catches_dangling_references() {
        let (mut db, _, _, writes) = tiny_db();
        db.insert(writes, vec![Value::Int(99), Value::Int(0)])
            .unwrap();
        assert!(matches!(
            db.check_integrity(),
            Err(RelationalError::DanglingReference { .. })
        ));
    }

    #[test]
    fn row_text_concatenates_text_columns() {
        let mut schema = DatabaseSchema::new();
        let t = schema
            .add_simple_table("person", &["first", "last"], &[])
            .unwrap();
        let mut db = Database::new(schema);
        db.insert(t, vec!["Ada".into(), "Lovelace".into()]).unwrap();
        assert_eq!(db.row_text(t, 0), "Ada Lovelace");
        assert_eq!(db.keyword_selection(t, "ada lovelace"), vec![0]);
    }
}
