//! Error type for the relational substrate.

use std::fmt;

/// Errors produced by schema construction, data loading and query
/// evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A table name was registered twice.
    DuplicateTable(String),
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist in the table.
    UnknownColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// A row has the wrong number of values or a value of the wrong type.
    RowShapeMismatch {
        /// Table name.
        table: String,
        /// Explanation.
        message: String,
    },
    /// A foreign key references a row that does not exist.
    DanglingReference {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
        /// The missing target row id.
        target: u32,
    },
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::DuplicateTable(name) => write!(f, "table {name:?} already exists"),
            RelationalError::UnknownTable(name) => write!(f, "unknown table {name:?}"),
            RelationalError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column:?} in table {table:?}")
            }
            RelationalError::RowShapeMismatch { table, message } => {
                write!(f, "bad row for table {table:?}: {message}")
            }
            RelationalError::DanglingReference {
                table,
                column,
                target,
            } => {
                write!(f, "dangling reference in {table}.{column} -> row {target}")
            }
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_contain_context() {
        assert!(RelationalError::DuplicateTable("paper".into())
            .to_string()
            .contains("paper"));
        assert!(RelationalError::UnknownTable("x".into())
            .to_string()
            .contains('x'));
        let e = RelationalError::UnknownColumn {
            table: "paper".into(),
            column: "title".into(),
        };
        assert!(e.to_string().contains("title"));
        let e = RelationalError::RowShapeMismatch {
            table: "t".into(),
            message: "arity".into(),
        };
        assert!(e.to_string().contains("arity"));
        let e = RelationalError::DanglingReference {
            table: "writes".into(),
            column: "pid".into(),
            target: 7,
        };
        assert!(e.to_string().contains('7'));
    }
}
