//! # banks-relational
//!
//! In-memory relational substrate for the BANKS-II reproduction.
//!
//! The paper's data graphs are derived from relational databases (DBLP,
//! IMDB, US Patents): every tuple becomes a node and every foreign-key
//! reference becomes a directed edge.  The paper also compares against the
//! *Sparse* algorithm of Hristidis et al. (VLDB 2003), which answers keyword
//! queries by enumerating *candidate networks* (join trees over the schema
//! graph) and evaluating them with relational joins.
//!
//! This crate therefore provides:
//!
//! * a typed, in-memory relational engine — [`DatabaseSchema`], [`Database`],
//!   [`Value`] — with foreign-key indexes and keyword selections,
//! * [`extract::GraphExtraction`] — the tuple→node / FK→edge extraction that
//!   produces a [`banks_graph::DataGraph`] and a matching
//!   [`banks_textindex::InvertedIndex`],
//! * [`candidate::CandidateNetwork`] enumeration over the schema graph, and
//! * [`sparse::SparseSearch`] — the Sparse baseline used in Figure 5's
//!   `Sparse-LB` column.

pub mod candidate;
pub mod database;
pub mod error;
pub mod extract;
pub mod schema;
pub mod sparse;
pub mod value;

pub use candidate::{CandidateNetwork, CnNode};
pub use database::{Database, RowId, TupleId};
pub use error::RelationalError;
pub use extract::GraphExtraction;
pub use schema::{ColumnDef, ColumnType, DatabaseSchema, ForeignKey, TableId, TableSchema};
pub use sparse::{SparseOutcome, SparseSearch};
pub use value::Value;

/// Result alias for relational operations.
pub type Result<T> = std::result::Result<T, RelationalError>;
