//! Schemas: tables, columns, foreign keys and the schema graph.

use std::collections::HashMap;

use crate::error::RelationalError;
use crate::Result;

/// Identifier of a table within a [`DatabaseSchema`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u16);

impl TableId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer (also used for foreign keys).
    Int,
    /// UTF-8 text; text columns are the ones indexed for keyword search.
    Text,
}

/// A column definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub column_type: ColumnType,
}

impl ColumnDef {
    /// Creates an integer column.
    pub fn int(name: &str) -> Self {
        ColumnDef {
            name: name.to_string(),
            column_type: ColumnType::Int,
        }
    }

    /// Creates a text column.
    pub fn text(name: &str) -> Self {
        ColumnDef {
            name: name.to_string(),
            column_type: ColumnType::Text,
        }
    }
}

/// A foreign-key constraint: an integer column of this table references the
/// implicit row id of another table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForeignKey {
    /// Index of the referencing column.
    pub column: usize,
    /// The referenced table.
    pub target: TableId,
}

/// A table definition.  Every table has an implicit integer row id (its
/// position in insertion order) that foreign keys reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (e.g. `"paper"`, `"writes"`).
    pub name: String,
    /// The columns.
    pub columns: Vec<ColumnDef>,
    /// Foreign keys from this table to others.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Indices of the text columns (the ones indexed for keyword search).
    pub fn text_columns(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.column_type == ColumnType::Text)
            .map(|(i, _)| i)
            .collect()
    }
}

/// An edge of the schema graph: table `from` has a foreign key (column
/// `column`) referencing table `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchemaEdge {
    /// Referencing table.
    pub from: TableId,
    /// Index of the referencing column within `from`.
    pub column: usize,
    /// Referenced table.
    pub to: TableId,
}

/// A complete database schema plus its schema graph.
#[derive(Clone, Debug, Default)]
pub struct DatabaseSchema {
    tables: Vec<TableSchema>,
    by_name: HashMap<String, TableId>,
}

impl DatabaseSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table; foreign keys may reference tables added later, so they
    /// are validated by [`DatabaseSchema::validate`].
    pub fn add_table(&mut self, table: TableSchema) -> Result<TableId> {
        if self.by_name.contains_key(&table.name) {
            return Err(RelationalError::DuplicateTable(table.name));
        }
        let id = TableId(self.tables.len() as u16);
        self.by_name.insert(table.name.clone(), id);
        self.tables.push(table);
        Ok(id)
    }

    /// Convenience builder used heavily by the dataset generators: adds a
    /// table with the given text columns and foreign keys (by target table
    /// id, with a generated column name).
    pub fn add_simple_table(
        &mut self,
        name: &str,
        text_columns: &[&str],
        fk_targets: &[(&str, TableId)],
    ) -> Result<TableId> {
        let mut columns: Vec<ColumnDef> = text_columns.iter().map(|c| ColumnDef::text(c)).collect();
        let mut foreign_keys = Vec::new();
        for (col_name, target) in fk_targets {
            foreign_keys.push(ForeignKey {
                column: columns.len(),
                target: *target,
            });
            columns.push(ColumnDef::int(col_name));
        }
        self.add_table(TableSchema {
            name: name.to_string(),
            columns,
            foreign_keys,
        })
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Table definition.
    pub fn table(&self, id: TableId) -> &TableSchema {
        &self.tables[id.index()]
    }

    /// All tables with their ids.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &TableSchema)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u16), t))
    }

    /// Looks a table up by name.
    pub fn table_by_name(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// Validates that every foreign key references an existing table and
    /// column of integer type.
    pub fn validate(&self) -> Result<()> {
        for table in &self.tables {
            for fk in &table.foreign_keys {
                if fk.target.index() >= self.tables.len() {
                    return Err(RelationalError::UnknownTable(format!(
                        "table #{}",
                        fk.target.0
                    )));
                }
                match table.columns.get(fk.column) {
                    None => {
                        return Err(RelationalError::UnknownColumn {
                            table: table.name.clone(),
                            column: format!("#{}", fk.column),
                        })
                    }
                    Some(col) if col.column_type != ColumnType::Int => {
                        return Err(RelationalError::RowShapeMismatch {
                            table: table.name.clone(),
                            message: format!("foreign key column {} must be Int", col.name),
                        })
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(())
    }

    /// All schema-graph edges (one per foreign key).
    pub fn schema_edges(&self) -> Vec<SchemaEdge> {
        let mut edges = Vec::new();
        for (i, table) in self.tables.iter().enumerate() {
            for fk in &table.foreign_keys {
                edges.push(SchemaEdge {
                    from: TableId(i as u16),
                    column: fk.column,
                    to: fk.target,
                });
            }
        }
        edges
    }

    /// Undirected schema-graph adjacency: for each table, the edges that
    /// touch it (in either direction).  Used by candidate-network
    /// enumeration, which may traverse foreign keys both ways.
    pub fn adjacency(&self) -> Vec<Vec<SchemaEdge>> {
        let mut adj: Vec<Vec<SchemaEdge>> = vec![Vec::new(); self.tables.len()];
        for edge in self.schema_edges() {
            adj[edge.from.index()].push(edge);
            adj[edge.to.index()].push(edge);
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dblp_like_schema() -> DatabaseSchema {
        let mut s = DatabaseSchema::new();
        let author = s.add_simple_table("author", &["name"], &[]).unwrap();
        let conference = s.add_simple_table("conference", &["name"], &[]).unwrap();
        let paper = s
            .add_simple_table("paper", &["title"], &[("cid", conference)])
            .unwrap();
        let _writes = s
            .add_simple_table("writes", &[], &[("aid", author), ("pid", paper)])
            .unwrap();
        s
    }

    #[test]
    fn builds_schema_and_lookups() {
        let s = dblp_like_schema();
        assert_eq!(s.num_tables(), 4);
        let paper = s.table_by_name("paper").unwrap();
        assert_eq!(s.table(paper).name, "paper");
        assert_eq!(s.table(paper).column_index("title"), Some(0));
        assert_eq!(s.table(paper).column_index("cid"), Some(1));
        assert_eq!(s.table(paper).text_columns(), vec![0]);
        assert!(s.table_by_name("movie").is_none());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn rejects_duplicate_tables() {
        let mut s = DatabaseSchema::new();
        s.add_simple_table("author", &["name"], &[]).unwrap();
        assert!(matches!(
            s.add_simple_table("author", &["name"], &[]),
            Err(RelationalError::DuplicateTable(_))
        ));
    }

    #[test]
    fn schema_graph_edges() {
        let s = dblp_like_schema();
        let edges = s.schema_edges();
        assert_eq!(edges.len(), 3); // paper->conference, writes->author, writes->paper
        let adj = s.adjacency();
        let writes = s.table_by_name("writes").unwrap();
        let author = s.table_by_name("author").unwrap();
        assert_eq!(adj[writes.index()].len(), 2);
        assert_eq!(adj[author.index()].len(), 1);
    }

    #[test]
    fn validation_catches_bad_foreign_keys() {
        let mut s = DatabaseSchema::new();
        s.add_table(TableSchema {
            name: "bad".into(),
            columns: vec![ColumnDef::text("name")],
            foreign_keys: vec![ForeignKey {
                column: 0,
                target: TableId(0),
            }],
        })
        .unwrap();
        // fk column is Text -> invalid
        assert!(s.validate().is_err());

        let mut s = DatabaseSchema::new();
        s.add_table(TableSchema {
            name: "bad".into(),
            columns: vec![ColumnDef::int("ref")],
            foreign_keys: vec![ForeignKey {
                column: 0,
                target: TableId(9),
            }],
        })
        .unwrap();
        // fk target table does not exist
        assert!(s.validate().is_err());
    }
}
