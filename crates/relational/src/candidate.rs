//! Candidate-network enumeration for the Sparse baseline.
//!
//! A *candidate network* (CN) is a join tree over the schema graph whose
//! nodes are table occurrences, each optionally annotated with the query
//! keywords it must contain.  A CN is complete when every query keyword is
//! assigned to exactly one node, and minimal when every leaf carries at
//! least one keyword (a keyword-free leaf could be dropped without changing
//! the answers).  The Sparse algorithm of Hristidis et al. evaluates CNs in
//! increasing size order with relational joins; the BANKS-II paper uses the
//! evaluation time of all CNs up to the size of the relevant answers as a
//! lower bound for Sparse ("Sparse-LB" in Figure 5).

use std::collections::HashSet;

use crate::schema::{DatabaseSchema, SchemaEdge, TableId};

/// One node (table occurrence) of a candidate network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CnNode {
    /// Which table this occurrence instantiates.
    pub table: TableId,
    /// Bitmask of the query keywords assigned to this occurrence (bit `i`
    /// for keyword `i`); `0` means a free tuple set.
    pub keywords: u64,
}

/// One join edge of a candidate network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CnEdge {
    /// Index of the referencing occurrence (the side holding the FK column).
    pub referencing: usize,
    /// Index of the referenced occurrence.
    pub referenced: usize,
    /// The schema edge (FK) realising the join.
    pub via: SchemaEdge,
}

/// A candidate network: a tree of table occurrences.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CandidateNetwork {
    /// The occurrences.
    pub nodes: Vec<CnNode>,
    /// The tree edges (`nodes.len() - 1` of them).
    pub edges: Vec<CnEdge>,
}

impl CandidateNetwork {
    /// Number of table occurrences (the paper's CN "size").
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Bit union of all assigned keywords.
    pub fn covered_keywords(&self) -> u64 {
        self.nodes.iter().fold(0, |acc, n| acc | n.keywords)
    }

    /// True when every leaf occurrence carries at least one keyword.
    pub fn leaves_have_keywords(&self) -> bool {
        if self.nodes.len() == 1 {
            return self.nodes[0].keywords != 0;
        }
        let mut degree = vec![0usize; self.nodes.len()];
        for e in &self.edges {
            degree[e.referencing] += 1;
            degree[e.referenced] += 1;
        }
        self.nodes
            .iter()
            .enumerate()
            .all(|(i, n)| degree[i] > 1 || n.keywords != 0)
    }

    /// Neighbours of an occurrence within the tree.
    pub fn neighbours(&self, node: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|e| {
                if e.referencing == node {
                    Some(e.referenced)
                } else if e.referenced == node {
                    Some(e.referencing)
                } else {
                    None
                }
            })
            .collect()
    }

    /// A canonical text form used for duplicate elimination: the
    /// lexicographically smallest rooted encoding over all choices of root.
    pub fn canonical_form(&self, schema: &DatabaseSchema) -> String {
        (0..self.nodes.len())
            .map(|root| self.encode_from(root, usize::MAX, schema))
            .min()
            .unwrap_or_default()
    }

    fn encode_from(&self, node: usize, parent: usize, schema: &DatabaseSchema) -> String {
        let mut child_codes: Vec<String> = self
            .edges
            .iter()
            .filter_map(|e| {
                let (other, orientation) = if e.referencing == node {
                    (e.referenced, format!(">c{}", e.via.column))
                } else if e.referenced == node {
                    (e.referencing, format!("<c{}", e.via.column))
                } else {
                    return None;
                };
                if other == parent {
                    None
                } else {
                    Some(format!(
                        "{}{}",
                        orientation,
                        self.encode_from(other, node, schema)
                    ))
                }
            })
            .collect();
        child_codes.sort();
        format!(
            "({}:{:x}[{}])",
            schema.table(self.nodes[node].table).name,
            self.nodes[node].keywords,
            child_codes.join(",")
        )
    }
}

/// Enumerates complete, minimal candidate networks.
///
/// * `keyword_tables[i]` — tables that contain at least one tuple matching
///   keyword `i` (from the database's keyword selections),
/// * `max_size` — largest CN size to enumerate,
/// * `cap` — hard cap on the number of CNs returned (the enumeration space
///   grows quickly with `max_size`).
pub fn enumerate_candidate_networks(
    schema: &DatabaseSchema,
    keyword_tables: &[Vec<TableId>],
    max_size: usize,
    cap: usize,
) -> Vec<CandidateNetwork> {
    let num_keywords = keyword_tables.len();
    assert!(
        num_keywords <= 64,
        "more than 64 keywords are not supported"
    );
    let full_mask: u64 = if num_keywords == 64 {
        u64::MAX
    } else {
        (1u64 << num_keywords) - 1
    };
    let adjacency = schema.adjacency();

    // Which keywords can a given table hold?
    let table_masks: Vec<u64> = (0..schema.num_tables())
        .map(|t| {
            keyword_tables
                .iter()
                .enumerate()
                .filter(|(_, tables)| tables.iter().any(|tt| tt.index() == t))
                .fold(0u64, |acc, (i, _)| acc | (1 << i))
        })
        .collect();

    let mut results: Vec<CandidateNetwork> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut queue: Vec<CandidateNetwork> = Vec::new();

    // Seed: single occurrences with every non-empty keyword assignment their
    // table supports.
    for (table_idx, mask) in table_masks.iter().enumerate() {
        for assignment in subsets_of(*mask) {
            if assignment == 0 {
                continue;
            }
            let cn = CandidateNetwork {
                nodes: vec![CnNode {
                    table: TableId(table_idx as u16),
                    keywords: assignment,
                }],
                edges: vec![],
            };
            queue.push(cn);
        }
    }

    let mut cursor = 0usize;
    while cursor < queue.len() && results.len() < cap {
        let cn = queue[cursor].clone();
        cursor += 1;

        let covered = cn.covered_keywords();
        if covered == full_mask && cn.leaves_have_keywords() {
            let canon = cn.canonical_form(schema);
            if seen.insert(canon) {
                results.push(cn.clone());
                if results.len() >= cap {
                    break;
                }
            }
        }
        if cn.size() >= max_size {
            continue;
        }

        // Expand: attach a new occurrence to any existing one via any schema
        // edge touching its table, with any subset of the remaining keywords
        // its table can hold (including the empty set).
        let remaining = full_mask & !covered;
        for (attach_idx, attach_node) in cn.nodes.iter().enumerate() {
            for edge in &adjacency[attach_node.table.index()] {
                // The new occurrence instantiates the other endpoint of the
                // schema edge (or the same table for self-relationships).
                let candidates: Vec<(TableId, bool)> =
                    if edge.from == attach_node.table && edge.to == attach_node.table {
                        vec![(edge.to, true), (edge.from, false)]
                    } else if edge.from == attach_node.table {
                        // existing node is the referencing side; new node is referenced
                        vec![(edge.to, false)]
                    } else {
                        // existing node is referenced; new node references it
                        vec![(edge.from, true)]
                    };
                for (new_table, new_is_referencing) in candidates {
                    let assignable = table_masks[new_table.index()] & remaining;
                    for assignment in subsets_of(assignable) {
                        let mut nodes = cn.nodes.clone();
                        nodes.push(CnNode {
                            table: new_table,
                            keywords: assignment,
                        });
                        let new_idx = nodes.len() - 1;
                        let mut edges = cn.edges.clone();
                        edges.push(if new_is_referencing {
                            CnEdge {
                                referencing: new_idx,
                                referenced: attach_idx,
                                via: *edge,
                            }
                        } else {
                            CnEdge {
                                referencing: attach_idx,
                                referenced: new_idx,
                                via: *edge,
                            }
                        });
                        let candidate = CandidateNetwork { nodes, edges };
                        // keep the expansion frontier bounded
                        if queue.len() < cap * 64 {
                            queue.push(candidate);
                        }
                    }
                }
            }
        }
    }

    // Smaller CNs first (the Sparse evaluation order).
    results.sort_by_key(|cn| cn.size());
    results
}

/// All subsets of a bitmask (including the empty set).
fn subsets_of(mask: u64) -> Vec<u64> {
    let mut subsets = vec![0u64];
    let mut bits = Vec::new();
    let mut m = mask;
    while m != 0 {
        let bit = m & m.wrapping_neg();
        bits.push(bit);
        m ^= bit;
    }
    for bit in bits {
        let existing: Vec<u64> = subsets.clone();
        for s in existing {
            subsets.push(s | bit);
        }
    }
    subsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DatabaseSchema;

    fn dblp_schema() -> (DatabaseSchema, TableId, TableId, TableId) {
        let mut s = DatabaseSchema::new();
        let author = s.add_simple_table("author", &["name"], &[]).unwrap();
        let paper = s.add_simple_table("paper", &["title"], &[]).unwrap();
        let writes = s
            .add_simple_table("writes", &[], &[("aid", author), ("pid", paper)])
            .unwrap();
        (s, author, paper, writes)
    }

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets_of(0), vec![0]);
        let mut s = subsets_of(0b101);
        s.sort_unstable();
        assert_eq!(s, vec![0b000, 0b001, 0b100, 0b101]);
    }

    #[test]
    fn single_table_cn_for_colocated_keywords() {
        let (schema, _, paper, _) = dblp_schema();
        // both keywords can only appear in `paper`
        let cns = enumerate_candidate_networks(&schema, &[vec![paper], vec![paper]], 3, 100);
        assert!(!cns.is_empty());
        // the smallest CN is the single paper occurrence holding both keywords
        assert_eq!(cns[0].size(), 1);
        assert_eq!(cns[0].nodes[0].table, paper);
        assert_eq!(cns[0].covered_keywords(), 0b11);
    }

    #[test]
    fn author_paper_query_needs_writes_join() {
        let (schema, author, paper, writes) = dblp_schema();
        let cns = enumerate_candidate_networks(&schema, &[vec![author], vec![paper]], 3, 100);
        assert!(!cns.is_empty());
        let smallest = &cns[0];
        // author <- writes -> paper: three occurrences
        assert_eq!(smallest.size(), 3);
        let tables: Vec<TableId> = smallest.nodes.iter().map(|n| n.table).collect();
        assert!(tables.contains(&author));
        assert!(tables.contains(&paper));
        assert!(tables.contains(&writes));
        assert!(smallest.leaves_have_keywords());
    }

    #[test]
    fn two_author_query_uses_self_join_shape() {
        let (schema, author, _, _) = dblp_schema();
        // two distinct author keywords: CN must contain two author occurrences
        let cns = enumerate_candidate_networks(&schema, &[vec![author], vec![author]], 5, 500);
        assert!(!cns.is_empty());
        // the single-occurrence CN (both keywords on the same author tuple) exists
        assert_eq!(cns[0].size(), 1);
        // and a 5-occurrence author-writes-paper-writes-author network exists
        let has_coauthor_network = cns
            .iter()
            .any(|cn| cn.size() == 5 && cn.nodes.iter().filter(|n| n.table == author).count() == 2);
        assert!(
            has_coauthor_network,
            "expected the co-authorship candidate network"
        );
    }

    #[test]
    fn enumeration_is_deduplicated_and_capped() {
        let (schema, author, paper, _) = dblp_schema();
        let cns = enumerate_candidate_networks(&schema, &[vec![author], vec![paper]], 4, 1000);
        let mut canon: Vec<String> = cns.iter().map(|cn| cn.canonical_form(&schema)).collect();
        let before = canon.len();
        canon.sort();
        canon.dedup();
        assert_eq!(before, canon.len(), "canonical forms must be unique");

        let capped = enumerate_candidate_networks(&schema, &[vec![author], vec![paper]], 4, 2);
        assert!(capped.len() <= 2);
    }

    #[test]
    fn keywords_without_tables_produce_no_networks() {
        let (schema, author, _, _) = dblp_schema();
        let cns = enumerate_candidate_networks(&schema, &[vec![author], vec![]], 4, 100);
        assert!(cns.is_empty());
    }
}
