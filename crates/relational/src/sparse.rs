//! The Sparse baseline (Hristidis et al., VLDB 2003) used in the paper's
//! Figure 5 comparison.
//!
//! Sparse answers a keyword query by (1) computing the keyword selections of
//! every table, (2) enumerating candidate networks over the schema graph and
//! (3) evaluating each CN with relational joins, producing joined tuple
//! trees ranked by CN size (fewer joins = better).  The paper reports a
//! *lower bound* on Sparse's time: only CNs up to the size of the relevant
//! answers are evaluated, with warm caches and indexed join columns — our
//! in-memory engine with hash FK indexes reproduces exactly those
//! assumptions.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use crate::candidate::{enumerate_candidate_networks, CandidateNetwork};
use crate::database::{Database, RowId, TupleId};
use crate::schema::TableId;

/// One joined result of a candidate network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseResult {
    /// The participating tuples, one per CN occurrence (in CN node order).
    pub tuples: Vec<TupleId>,
    /// Index of the CN that produced the result.
    pub candidate_network: usize,
    /// Size of that CN (number of occurrences).
    pub size: usize,
}

impl SparseResult {
    /// The distinct tuples of the result (the analogue of an answer tree's
    /// node set).
    pub fn distinct_tuples(&self) -> Vec<TupleId> {
        let set: std::collections::BTreeSet<TupleId> = self.tuples.iter().copied().collect();
        set.into_iter().collect()
    }
}

/// Outcome of a Sparse run.
#[derive(Clone, Debug, Default)]
pub struct SparseOutcome {
    /// Results in increasing CN-size order, truncated to the requested
    /// top-k.
    pub results: Vec<SparseResult>,
    /// Number of candidate networks enumerated.
    pub num_candidate_networks: usize,
    /// Number of candidate networks actually evaluated.
    pub num_evaluated: usize,
    /// Total join results produced before truncation.
    pub total_results: usize,
    /// Wall-clock duration of enumeration plus evaluation.
    pub duration: Duration,
}

/// Configuration of the Sparse baseline.
#[derive(Clone, Copy, Debug)]
pub struct SparseSearch {
    /// Largest candidate-network size to enumerate/evaluate.  The paper sets
    /// this to the size of the relevant answers ("we manually generated all
    /// candidate networks smaller than the relevant ones").
    pub max_cn_size: usize,
    /// Number of results to keep.
    pub top_k: usize,
    /// Cap on the number of candidate networks (safety valve).
    pub max_candidate_networks: usize,
    /// Cap on the number of join results materialised per CN.
    pub max_results_per_cn: usize,
}

impl Default for SparseSearch {
    fn default() -> Self {
        SparseSearch {
            max_cn_size: 5,
            top_k: 10,
            max_candidate_networks: 512,
            max_results_per_cn: 10_000,
        }
    }
}

impl SparseSearch {
    /// Creates a Sparse baseline with the given CN size limit.
    pub fn with_max_size(max_cn_size: usize) -> Self {
        SparseSearch {
            max_cn_size,
            ..Default::default()
        }
    }

    /// Runs the baseline for a list of keywords.
    pub fn run(&self, db: &Database, keywords: &[&str]) -> SparseOutcome {
        let started = Instant::now();
        let schema = db.schema();

        // Keyword selections per table.
        let mut selections: Vec<Vec<Vec<RowId>>> = Vec::with_capacity(keywords.len());
        let mut keyword_tables: Vec<Vec<TableId>> = Vec::with_capacity(keywords.len());
        for keyword in keywords {
            let mut per_table = Vec::with_capacity(schema.num_tables());
            let mut tables = Vec::new();
            for (table_id, _) in schema.tables() {
                let rows = db.keyword_selection(table_id, keyword);
                if !rows.is_empty() {
                    tables.push(table_id);
                }
                per_table.push(rows);
            }
            selections.push(per_table);
            keyword_tables.push(tables);
        }

        let networks = enumerate_candidate_networks(
            schema,
            &keyword_tables,
            self.max_cn_size,
            self.max_candidate_networks,
        );

        let mut results: Vec<SparseResult> = Vec::new();
        let mut total_results = 0usize;
        let mut num_evaluated = 0usize;
        for (cn_index, cn) in networks.iter().enumerate() {
            num_evaluated += 1;
            let rows = self.evaluate(db, cn, &selections);
            total_results += rows.len();
            for assignment in rows {
                results.push(SparseResult {
                    tuples: assignment
                        .iter()
                        .enumerate()
                        .map(|(i, row)| TupleId::new(cn.nodes[i].table, *row))
                        .collect(),
                    candidate_network: cn_index,
                    size: cn.size(),
                });
            }
        }

        // Rank by size (fewer joins first), then deterministically by tuple ids.
        results.sort_by(|a, b| a.size.cmp(&b.size).then_with(|| a.tuples.cmp(&b.tuples)));
        results.dedup_by(|a, b| a.distinct_tuples() == b.distinct_tuples());
        results.truncate(self.top_k);

        SparseOutcome {
            results,
            num_candidate_networks: networks.len(),
            num_evaluated,
            total_results,
            duration: started.elapsed(),
        }
    }

    /// Evaluates one candidate network, returning complete row assignments
    /// (one row per CN occurrence).
    fn evaluate(
        &self,
        db: &Database,
        cn: &CandidateNetwork,
        selections: &[Vec<Vec<RowId>>],
    ) -> Vec<Vec<RowId>> {
        // Candidate row sets per occurrence.
        let mut candidates: Vec<Option<HashSet<RowId>>> = Vec::with_capacity(cn.nodes.len());
        for node in &cn.nodes {
            if node.keywords == 0 {
                candidates.push(None); // free tuple set: all rows allowed
            } else {
                let mut set: Option<HashSet<RowId>> = None;
                for (i, per_table) in selections.iter().enumerate() {
                    if node.keywords & (1 << i) != 0 {
                        let rows: HashSet<RowId> =
                            per_table[node.table.index()].iter().copied().collect();
                        set = Some(match set {
                            None => rows,
                            Some(existing) => existing.intersection(&rows).copied().collect(),
                        });
                    }
                }
                candidates.push(Some(set.unwrap_or_default()));
            }
        }
        if candidates
            .iter()
            .any(|c| matches!(c, Some(s) if s.is_empty()))
        {
            return Vec::new();
        }

        // Join order: start from the keyword occurrence with the fewest
        // candidate rows, then grow along tree edges.
        let start = candidates
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|s| (i, s.len())))
            .min_by_key(|(_, len)| *len)
            .map(|(i, _)| i)
            .unwrap_or(0);

        let start_rows: Vec<RowId> = match &candidates[start] {
            Some(set) => {
                let mut rows: Vec<RowId> = set.iter().copied().collect();
                rows.sort_unstable();
                rows
            }
            None => db.rows(cn.nodes[start].table).collect(),
        };

        let mut results: Vec<Vec<Option<RowId>>> = start_rows
            .into_iter()
            .map(|r| {
                let mut assignment = vec![None; cn.nodes.len()];
                assignment[start] = Some(r);
                assignment
            })
            .collect();

        // Visit occurrences in BFS order over the CN tree.
        let order = self.bfs_order(cn, start);
        for (node, parent) in order {
            let edge = cn
                .edges
                .iter()
                .find(|e| {
                    (e.referencing == node && e.referenced == parent)
                        || (e.referenced == node && e.referencing == parent)
                })
                .expect("tree edge must exist");
            let mut next_results = Vec::new();
            for assignment in &results {
                if next_results.len() >= self.max_results_per_cn {
                    break;
                }
                let parent_row = assignment[parent].expect("parent already assigned");
                let matches: Vec<RowId> = if edge.referencing == node {
                    // the new occurrence references the parent: use the FK index
                    db.referencing_rows(cn.nodes[node].table, edge.via.column, parent_row)
                        .to_vec()
                } else {
                    // the parent references the new occurrence
                    db.referenced_row(cn.nodes[parent].table, parent_row, edge.via.column)
                        .into_iter()
                        .collect()
                };
                for row in matches {
                    if let Some(allowed) = &candidates[node] {
                        if !allowed.contains(&row) {
                            continue;
                        }
                    }
                    // Occurrences of the same table must bind distinct rows
                    // (an answer tree never repeats a node).
                    let duplicate = assignment.iter().enumerate().any(|(i, r)| {
                        r.is_some() && cn.nodes[i].table == cn.nodes[node].table && *r == Some(row)
                    });
                    if duplicate {
                        continue;
                    }
                    let mut extended = assignment.clone();
                    extended[node] = Some(row);
                    next_results.push(extended);
                    if next_results.len() >= self.max_results_per_cn {
                        break;
                    }
                }
            }
            results = next_results;
            if results.is_empty() {
                return Vec::new();
            }
        }

        results
            .into_iter()
            .map(|assignment| {
                assignment
                    .into_iter()
                    .map(|r| r.expect("complete"))
                    .collect()
            })
            .collect()
    }

    /// BFS order of the CN tree as (node, parent) pairs, excluding the start
    /// node.
    fn bfs_order(&self, cn: &CandidateNetwork, start: usize) -> Vec<(usize, usize)> {
        let mut order = Vec::new();
        let mut visited = vec![false; cn.nodes.len()];
        visited[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(node) = queue.pop_front() {
            for neighbour in cn.neighbours(node) {
                if !visited[neighbour] {
                    visited[neighbour] = true;
                    order.push((neighbour, node));
                    queue.push_back(neighbour);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DatabaseSchema;

    /// Two authors, two papers; Gray wrote both papers, Fernandez wrote only
    /// the optimization paper.
    fn tiny_db() -> (Database, TableId, TableId, TableId) {
        let mut schema = DatabaseSchema::new();
        let author = schema.add_simple_table("author", &["name"], &[]).unwrap();
        let paper = schema.add_simple_table("paper", &["title"], &[]).unwrap();
        let writes = schema
            .add_simple_table("writes", &[], &[("aid", author), ("pid", paper)])
            .unwrap();
        let mut db = Database::new(schema);
        let gray = db.insert(author, vec!["Jim Gray".into()]).unwrap();
        let fern = db.insert(author, vec!["David Fernandez".into()]).unwrap();
        let p0 = db
            .insert(paper, vec!["Transaction recovery".into()])
            .unwrap();
        let p1 = db
            .insert(paper, vec!["Parametric query optimization".into()])
            .unwrap();
        db.insert(writes, vec![gray.into(), p0.into()]).unwrap();
        db.insert(writes, vec![gray.into(), p1.into()]).unwrap();
        db.insert(writes, vec![fern.into(), p1.into()]).unwrap();
        (db, author, paper, writes)
    }

    #[test]
    fn answers_author_paper_query() {
        let (db, author, paper, _) = tiny_db();
        let outcome = SparseSearch::with_max_size(3).run(&db, &["gray", "recovery"]);
        assert!(outcome.num_candidate_networks >= 1);
        assert!(!outcome.results.is_empty());
        let best = &outcome.results[0];
        assert_eq!(best.size, 3);
        let tables: Vec<TableId> = best.tuples.iter().map(|t| t.table).collect();
        assert!(tables.contains(&author));
        assert!(tables.contains(&paper));
        // Gray is author row 0, recovery is paper row 0
        assert!(best.tuples.contains(&TupleId::new(author, 0)));
        assert!(best.tuples.contains(&TupleId::new(paper, 0)));
        assert!(outcome.duration >= Duration::ZERO);
    }

    #[test]
    fn co_author_query_requires_bigger_networks() {
        let (db, author, _, _) = tiny_db();
        // Gray and Fernandez co-authored paper 1 (via two writes rows).
        let small = SparseSearch::with_max_size(3).run(&db, &["gray", "fernandez"]);
        assert!(
            small.results.is_empty(),
            "size-3 CNs cannot join two authors"
        );
        let big = SparseSearch::with_max_size(5).run(&db, &["gray", "fernandez"]);
        assert!(!big.results.is_empty());
        let best = &big.results[0];
        assert_eq!(best.size, 5);
        assert!(best.tuples.contains(&TupleId::new(author, 0)));
        assert!(best.tuples.contains(&TupleId::new(author, 1)));
        assert!(big.num_candidate_networks > small.num_candidate_networks);
    }

    #[test]
    fn unmatched_keyword_produces_nothing() {
        let (db, _, _, _) = tiny_db();
        let outcome = SparseSearch::with_max_size(5).run(&db, &["gray", "nonexistent"]);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.num_candidate_networks, 0);
    }

    #[test]
    fn colocated_keywords_answered_by_single_tuple() {
        let (db, paper, _, _) = tiny_db();
        let _ = paper;
        let outcome = SparseSearch::with_max_size(3).run(&db, &["parametric", "optimization"]);
        assert!(!outcome.results.is_empty());
        assert_eq!(outcome.results[0].size, 1);
        assert_eq!(outcome.results[0].tuples.len(), 1);
    }

    #[test]
    fn top_k_truncation_and_ordering() {
        let (db, _, _, _) = tiny_db();
        let mut search = SparseSearch::with_max_size(5);
        search.top_k = 1;
        let outcome = search.run(&db, &["gray", "paper"]);
        // 'paper' matches the relation name? No — Sparse works on text only;
        // it matches the word 'paper' in titles, which does not occur, so we
        // use a word that does occur in both papers: 'transaction'/'query'.
        let _ = outcome;
        let outcome = search.run(&db, &["gray", "query"]);
        assert_eq!(outcome.results.len().min(1), outcome.results.len());
        if !outcome.results.is_empty() {
            assert_eq!(outcome.results[0].size, 3);
        }
    }
}
