//! Follower-against-a-real-leader integration: a `banks-server` leader, a
//! `banks-replica` follower, real sockets, real SSE.
//!
//! The acceptance criteria:
//!
//! * a fresh follower bootstraps from the leader snapshot, tails the WAL,
//!   and converges to the leader's exact epoch with **byte-identical**
//!   answers on every engine;
//! * the follower keeps converging across further leader mutations;
//! * a follower whose cursor falls behind the leader's WAL truncation
//!   horizon re-bootstraps automatically and still converges;
//! * the follower's replicated state is durable: a rebuilt service over
//!   the follower's data directory serves the replicated epoch.

use std::sync::Arc;
use std::time::{Duration, Instant};

use banks_graph::{DataGraph, GraphBuilder, MutationBatch, NodeId};
use banks_replica::Follower;
use banks_server::Server;
use banks_service::{FsyncPolicy, QueryEvent, QuerySpec, ReplicationRole, Service};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "banks-replica-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ))
}

/// The leader's base graph: a small citation core padded with filler
/// nodes so the test's mutation batches stay below the compaction
/// threshold and the WAL keeps every record.
fn leader_graph() -> DataGraph {
    let mut b = GraphBuilder::new();
    let gray = b.add_node("author", "Jim Gray");
    let locks = b.add_node("paper", "Granularity of locks");
    let w0 = b.add_node("writes", "w0");
    b.add_edge(w0, gray).unwrap();
    b.add_edge(w0, locks).unwrap();
    let codd = b.add_node("author", "Edgar Codd");
    let model = b.add_node("paper", "A relational model of data");
    let w1 = b.add_node("writes", "w1");
    b.add_edge(w1, codd).unwrap();
    b.add_edge(w1, model).unwrap();
    for i in 0..40 {
        b.add_node("filler", format!("filler {i}"));
    }
    b.build_default()
}

/// What a follower boots with before its first bootstrap: deliberately
/// unrelated data.
fn boot_graph() -> DataGraph {
    let mut b = GraphBuilder::new();
    b.add_node("boot", "placeholder");
    b.build_default()
}

/// Per-engine answer fingerprints: `(engine, [(root, score bits)])` —
/// byte-level equality of the ranked answer stream.
fn answers(service: &Service, query: &str) -> Vec<(String, Vec<(u32, u64)>)> {
    let mut all = Vec::new();
    for engine in service.engine_names() {
        let spec = QuerySpec::parse(query).engine(engine).top_k(5);
        let handle = service.submit(spec).unwrap();
        let mut rows = Vec::new();
        while let Some(event) = handle.recv() {
            if let QueryEvent::Answer(a) = event {
                rows.push((a.tree.root.0, a.tree.score.to_bits()));
            }
        }
        all.push((engine.to_string(), rows));
    }
    all
}

fn wait_for(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    pred()
}

#[test]
fn follower_bootstraps_tails_and_serves_identical_answers() {
    let leader_dir = tmp_dir("leader");
    let follower_dir = tmp_dir("follower");
    let leader = Arc::new(
        Service::builder(leader_graph())
            .workers(2)
            .persistence(&leader_dir, FsyncPolicy::Always)
            .build(),
    );
    leader.set_replication_role(ReplicationRole::Leader);
    leader.checkpoint().unwrap();
    let server = Server::builder(Arc::clone(&leader)).spawn().unwrap();
    let url = format!("http://{}", server.local_addr());

    let follower = Arc::new(
        Service::builder(boot_graph())
            .workers(2)
            .persistence(&follower_dir, FsyncPolicy::Always)
            .build(),
    );
    let client = Follower::start(Arc::clone(&follower), &url).unwrap();

    // The fresh follower converges on the leader's boot state first.
    assert!(
        wait_for(Duration::from_secs(10), || follower.epoch()
            == leader.epoch()),
        "bootstrap never converged: follower {} leader {}",
        follower.epoch(),
        leader.epoch()
    );
    assert_eq!(
        answers(&follower, "gray locks"),
        answers(&leader, "gray locks")
    );

    // Leader mutations stream across and answers stay byte-identical.
    let batches = [
        MutationBatch::new()
            .add_node("paper", "Keyword searching in graph databases")
            .add_node("writes", "w2")
            .add_edge(NodeId(48), NodeId(0))
            .add_edge(NodeId(48), NodeId(47)),
        MutationBatch::new()
            .set_label(NodeId(4), "A relational model of data, revised")
            .set_weight(NodeId(2), NodeId(0), 2.0),
        MutationBatch::new().remove_node(NodeId(1)),
    ];
    for batch in &batches {
        let report = leader.apply_mutations(batch);
        assert!(report.swapped, "leader mutation must apply: {report:?}");
    }
    assert!(
        wait_for(Duration::from_secs(10), || follower.epoch()
            == leader.epoch()),
        "tailing never converged: follower {} leader {}",
        follower.epoch(),
        leader.epoch()
    );
    for query in ["gray locks", "codd relational", "keyword graph"] {
        assert_eq!(
            answers(&follower, query),
            answers(&leader, query),
            "{query}"
        );
    }

    // The follower reports its role and, once caught up, zero record lag.
    let status = follower.replication_status();
    assert_eq!(status.role, ReplicationRole::Follower);
    assert_eq!(status.applied_epoch, leader.epoch());
    assert!(
        wait_for(Duration::from_secs(5), || {
            follower.replication_status().lag_records == 0
        }),
        "lag_records never drained"
    );

    // The lifecycle left a paper trail in the structured event log.
    let events = follower.events().since(0, 10_000);
    let kinds: Vec<&str> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&"replication-connect"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"replication-bootstrap"), "kinds: {kinds:?}");

    // Replicated state is durable: kill the follower (client and service)
    // and rebuild from its data directory alone.
    let final_epoch = leader.epoch();
    let leader_answers = answers(&leader, "codd relational");
    client.stop();
    drop(follower);
    let revived = Service::builder(boot_graph())
        .workers(2)
        .persistence(&follower_dir, FsyncPolicy::Always)
        .build();
    assert_eq!(
        revived.epoch(),
        final_epoch,
        "recovery must land on the replicated epoch"
    );
    assert_eq!(answers(&revived, "codd relational"), leader_answers);

    server.shutdown();
    std::fs::remove_dir_all(&leader_dir).unwrap();
    std::fs::remove_dir_all(&follower_dir).unwrap();
}

#[test]
fn a_follower_behind_the_truncation_horizon_rebootstraps() {
    let leader_dir = tmp_dir("leader-trunc");
    let follower_dir = tmp_dir("follower-trunc");
    let leader = Arc::new(
        Service::builder(leader_graph())
            .workers(2)
            .persistence(&leader_dir, FsyncPolicy::Always)
            .build(),
    );
    leader.checkpoint().unwrap();
    let server = Server::builder(Arc::clone(&leader)).spawn().unwrap();
    let url = format!("http://{}", server.local_addr());

    let follower = Arc::new(
        Service::builder(boot_graph())
            .workers(2)
            .persistence(&follower_dir, FsyncPolicy::Always)
            .build(),
    );
    let client = Follower::start(Arc::clone(&follower), &url).unwrap();
    assert!(
        wait_for(Duration::from_secs(10), || follower.epoch()
            == leader.epoch()),
        "initial bootstrap never converged"
    );

    // Detach the follower, then move the leader far past it and truncate
    // the WAL: the records bridging the gap are gone for good.
    client.stop();
    let report =
        leader.apply_mutations(&MutationBatch::new().add_node("paper", "While you were away"));
    assert!(report.swapped);
    leader.checkpoint().unwrap();
    let report =
        leader.apply_mutations(&MutationBatch::new().set_label(NodeId(1), "Locks, annotated"));
    assert!(report.swapped);
    assert!(follower.epoch() < leader.durability().last_checkpoint_epoch);

    // A reattached follower cannot replay its way there — it must (and
    // does) re-bootstrap, then tails the post-checkpoint records.
    let client = Follower::start(Arc::clone(&follower), &url).unwrap();
    assert!(
        wait_for(Duration::from_secs(10), || follower.epoch()
            == leader.epoch()),
        "re-bootstrap never converged: follower {} leader {}",
        follower.epoch(),
        leader.epoch()
    );
    for query in ["gray locks", "away"] {
        assert_eq!(
            answers(&follower, query),
            answers(&leader, query),
            "{query}"
        );
    }
    let events = follower.events().since(0, 10_000);
    let bootstraps = events
        .iter()
        .filter(|e| e.kind == "replication-bootstrap")
        .count();
    assert!(
        bootstraps >= 2,
        "expected a second bootstrap, saw {bootstraps}"
    );

    client.stop();
    server.shutdown();
    std::fs::remove_dir_all(&leader_dir).unwrap();
    std::fs::remove_dir_all(&follower_dir).unwrap();
}

#[test]
fn an_unreachable_leader_retries_without_panicking() {
    // Nothing listens here: start must succeed (reachability is a runtime
    // condition), the thread must spin quietly, and stop must join.
    let follower = Arc::new(Service::builder(boot_graph()).workers(1).build());
    let client = Follower::start(Arc::clone(&follower), "http://127.0.0.1:1").unwrap();
    assert_eq!(client.leader(), "http://127.0.0.1:1");
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        follower.replication_status().role,
        ReplicationRole::Follower
    );
    client.stop();

    // A malformed URL is the one start-time error.
    let Err(err) = Follower::start(follower, "https://nope.example") else {
        panic!("https URL must be rejected at start");
    };
    assert!(err.contains("https"), "err: {err}");
}
