//! An incremental server-sent-events parser.
//!
//! Feed it one line at a time (trailing `\r`/`\n` stripped or not — it
//! normalizes); a blank line dispatches the accumulated frame.  Comment
//! lines (leading `:`, the keep-alive idiom) are ignored, multi-`data:`
//! frames join with `\n`, and `id:` values that parse as integers ride
//! along — the replication stream uses them to carry record epochs.

/// One parsed SSE frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SseEvent {
    /// The `event:` name (empty when the frame never named one).
    pub name: String,
    /// The `id:` field, when present and numeric.
    pub id: Option<u64>,
    /// All `data:` lines, joined with `\n`.
    pub data: String,
}

/// Accumulates lines into [`SseEvent`]s.
#[derive(Default)]
pub struct SseParser {
    name: String,
    id: Option<u64>,
    data: Vec<String>,
}

impl SseParser {
    /// A parser with no partial frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one line; returns a frame when `line` completes one.
    pub fn push_line(&mut self, line: &str) -> Option<SseEvent> {
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            if self.name.is_empty() && self.data.is_empty() {
                return None; // stray separator, nothing accumulated
            }
            let event = SseEvent {
                name: std::mem::take(&mut self.name),
                id: self.id.take(),
                data: std::mem::take(&mut self.data).join("\n"),
            };
            return Some(event);
        }
        if line.starts_with(':') {
            return None; // comment / keep-alive
        }
        let (field, value) = match line.split_once(':') {
            Some((field, value)) => (field, value.strip_prefix(' ').unwrap_or(value)),
            None => (line, ""),
        };
        match field {
            "event" => self.name = value.to_string(),
            "data" => self.data.push(value.to_string()),
            "id" => self.id = value.trim().parse().ok(),
            _ => {} // per spec: ignore unknown fields
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_dispatch_on_blank_lines() {
        let mut p = SseParser::new();
        assert_eq!(p.push_line(": keep-alive"), None);
        assert_eq!(p.push_line("event: record"), None);
        assert_eq!(p.push_line("id: 42"), None);
        assert_eq!(p.push_line("data: {\"a\":1,"), None);
        assert_eq!(p.push_line("data: \"b\":2}"), None);
        let event = p.push_line("").expect("frame");
        assert_eq!(event.name, "record");
        assert_eq!(event.id, Some(42));
        assert_eq!(event.data, "{\"a\":1,\n\"b\":2}");

        // The parser reset: the next frame starts clean, ids do not leak.
        assert_eq!(p.push_line("event: head"), None);
        assert_eq!(p.push_line("data: {}"), None);
        let event = p.push_line("\r\n").expect("frame");
        assert_eq!(event.name, "head");
        assert_eq!(event.id, None);
        assert_eq!(event.data, "{}");
    }

    #[test]
    fn stray_separators_and_unknown_fields_are_ignored() {
        let mut p = SseParser::new();
        assert_eq!(p.push_line(""), None);
        assert_eq!(p.push_line("retry: 1000"), None);
        assert_eq!(p.push_line("data: x"), None);
        let event = p.push_line("").expect("frame");
        assert_eq!(event.name, "");
        assert_eq!(event.data, "x");
    }
}
