//! The follower client: a background thread that keeps a local
//! [`Service`] converged with a leader over the replication stream.

use std::io::BufRead;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use banks_core::json::{self, JsonValue};
use banks_obs::EventLevel;
use banks_persist::decode_snapshot;
use banks_service::{
    decode_record, GraphSnapshot, ReplicationApplyError, ReplicationRole, Service,
};

use crate::client::{self, LeaderUrl};
use crate::from_hex;
use crate::sse::SseParser;

/// How long a connect / one-shot GET may take before the attempt counts
/// as failed and backoff kicks in.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);
/// Socket read timeout while tailing: the granularity at which the thread
/// notices a stop request or a silently dead peer.  The leader sends a
/// `head` keep-alive about once a second, so several consecutive timeouts
/// mean the connection is gone.
const READ_TIMEOUT: Duration = Duration::from_millis(200);
/// Consecutive read timeouts before the connection is declared dead
/// (READ_TIMEOUT × this ≈ 10 s of silence, ten missed keep-alives).
const DEAD_AFTER_TIMEOUTS: u32 = 50;

/// Why one streaming session ended.
enum TailEnd {
    /// The stop flag flipped: wind down cleanly.
    Stopped,
    /// The leader ordered (or the apply path detected) a gap the WAL
    /// cannot bridge: fetch a snapshot, install it, reconnect.
    Bootstrap,
    /// Connection-level failure: reconnect after backoff, same cursor.
    Disconnected(String),
}

/// Jittered exponential backoff between reconnect attempts, sliced so a
/// stop request interrupts the wait.
struct Backoff {
    next_ms: u64,
}

impl Backoff {
    const BASE_MS: u64 = 100;
    const CAP_MS: u64 = 5_000;

    fn new() -> Self {
        Backoff {
            next_ms: Self::BASE_MS,
        }
    }

    fn reset(&mut self) {
        self.next_ms = Self::BASE_MS;
    }

    fn sleep(&mut self, stop: &AtomicBool) {
        // ±25% jitter off the subsecond clock: cheap decorrelation so a
        // fleet of followers does not reconnect in lockstep after a
        // leader restart.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0);
        let jitter = (self.next_ms / 4).max(1);
        let wait = self.next_ms - jitter / 2 + nanos % jitter;
        let deadline = std::time::Instant::now() + Duration::from_millis(wait);
        while std::time::Instant::now() < deadline {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        self.next_ms = (self.next_ms * 2).min(Self::CAP_MS);
    }
}

/// A handle to the replication thread.  Dropping it (or calling
/// [`Follower::stop`]) signals the thread and joins it; the service keeps
/// serving whatever state was replicated.
pub struct Follower {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    leader: String,
}

impl Follower {
    /// Marks `service` as a [`ReplicationRole::Follower`] and spawns the
    /// tailing thread against `leader_url` (e.g. `http://10.0.0.1:7878`).
    /// Errors only on an unparseable URL — an unreachable leader is a
    /// runtime condition the thread retries with backoff.
    pub fn start(service: Arc<Service>, leader_url: &str) -> Result<Follower, String> {
        let leader = LeaderUrl::parse(leader_url)?;
        service.set_replication_role(ReplicationRole::Follower);
        let stop = Arc::new(AtomicBool::new(false));
        let display = leader.display();
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("banks-follower".to_string())
                .spawn(move || run(&service, &leader, &stop))
                .map_err(|e| format!("spawn follower thread: {e}"))?
        };
        Ok(Follower {
            stop,
            thread: Some(thread),
            leader: display,
        })
    }

    /// The leader base URL this follower tails (display form).
    pub fn leader(&self) -> &str {
        &self.leader
    }

    /// Stops tailing and joins the thread.  Equivalent to dropping.
    pub fn stop(self) {}
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn run(service: &Arc<Service>, leader: &LeaderUrl, stop: &AtomicBool) {
    let mut backoff = Backoff::new();
    while !stop.load(Ordering::SeqCst) {
        match tail_once(service, leader, stop, &mut backoff) {
            TailEnd::Stopped => return,
            TailEnd::Bootstrap => match bootstrap(service, leader) {
                Ok(epoch) => {
                    service.events().emit(
                        EventLevel::Info,
                        "replication-bootstrap",
                        format!(
                            "installed leader snapshot at epoch {epoch} from {}",
                            leader.display()
                        ),
                    );
                    backoff.reset();
                }
                Err(e) => {
                    service.events().emit(
                        EventLevel::Warn,
                        "replication-error",
                        format!("bootstrap from {} failed: {e}", leader.display()),
                    );
                    backoff.sleep(stop);
                }
            },
            TailEnd::Disconnected(reason) => {
                service.events().emit(
                    EventLevel::Warn,
                    "replication-disconnect",
                    format!("stream from {} ended: {reason}", leader.display()),
                );
                backoff.sleep(stop);
            }
        }
    }
}

/// One streaming session: connect at the current serving epoch, apply
/// whatever arrives, and report why the session ended.
fn tail_once(
    service: &Arc<Service>,
    leader: &LeaderUrl,
    stop: &AtomicBool,
    backoff: &mut Backoff,
) -> TailEnd {
    let cursor = service.epoch();
    let headers = [
        ("Accept", "text/event-stream".to_string()),
        ("Last-Event-ID", cursor.to_string()),
    ];
    let mut reader = match client::open_stream(
        leader,
        "/replication/stream",
        &headers,
        CONNECT_TIMEOUT,
        READ_TIMEOUT,
    ) {
        Ok(reader) => reader,
        Err(e) => return TailEnd::Disconnected(e.to_string()),
    };
    service.events().emit(
        EventLevel::Info,
        "replication-connect",
        format!("tailing {} from epoch {cursor}", leader.display()),
    );

    let mut parser = SseParser::new();
    let mut line = String::new();
    let mut idle_timeouts = 0u32;
    let mut was_behind = false;
    loop {
        if stop.load(Ordering::SeqCst) {
            return TailEnd::Stopped;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return TailEnd::Disconnected("leader closed the stream".to_string()),
            Ok(_) if line.ends_with('\n') => {
                idle_timeouts = 0;
                let event = parser.push_line(&line);
                line.clear();
                let Some(event) = event else { continue };
                match event.name.as_str() {
                    "record" => match apply_record(service, &event.data) {
                        Ok(()) => backoff.reset(),
                        Err(ApplyOutcome::Gap) => return TailEnd::Bootstrap,
                        Err(ApplyOutcome::Fatal(e)) => return TailEnd::Disconnected(e),
                    },
                    "head" => match note_head(service, &event.data, &mut was_behind) {
                        Ok(()) => backoff.reset(),
                        Err(ApplyOutcome::Gap) => return TailEnd::Bootstrap,
                        Err(ApplyOutcome::Fatal(e)) => return TailEnd::Disconnected(e),
                    },
                    "bootstrap" => return TailEnd::Bootstrap,
                    _ => {} // future event types: ignore, stay compatible
                }
            }
            // A read can end mid-line at EOF: the partial tail is noise.
            Ok(_) => return TailEnd::Disconnected("stream truncated mid-line".to_string()),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                idle_timeouts += 1;
                if idle_timeouts >= DEAD_AFTER_TIMEOUTS {
                    return TailEnd::Disconnected(
                        "no traffic or keep-alives from the leader".to_string(),
                    );
                }
            }
            Err(e) => return TailEnd::Disconnected(e.to_string()),
        }
    }
}

/// Why an event could not be applied: a gap (bootstrap) or a terminal
/// session error (disconnect + retry).
enum ApplyOutcome {
    Gap,
    Fatal(String),
}

fn apply_record(service: &Arc<Service>, data: &str) -> Result<(), ApplyOutcome> {
    let value = json::parse(data)
        .map_err(|e| ApplyOutcome::Fatal(format!("unparseable record event: {e}")))?;
    let payload = value
        .get("payload")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ApplyOutcome::Fatal("record event without payload".to_string()))?;
    let bytes = from_hex(payload).map_err(ApplyOutcome::Fatal)?;
    let (record, _) = decode_record(&bytes)
        .map_err(|e| ApplyOutcome::Fatal(format!("record payload does not decode: {e}")))?;
    match service.apply_replicated(&record) {
        Ok(_) => Ok(()),
        Err(ReplicationApplyError::EpochGap { .. }) => Err(ApplyOutcome::Gap),
        // The record was not applied and local state stayed consistent:
        // retrying the same record after reconnect is safe.
        Err(ReplicationApplyError::Persist(e)) => {
            service.events().emit(
                EventLevel::Error,
                "replication-error",
                format!("local WAL append failed: {e}"),
            );
            Err(ApplyOutcome::Fatal(format!("local persistence error: {e}")))
        }
    }
}

fn note_head(
    service: &Arc<Service>,
    data: &str,
    was_behind: &mut bool,
) -> Result<(), ApplyOutcome> {
    let value = json::parse(data)
        .map_err(|e| ApplyOutcome::Fatal(format!("unparseable head event: {e}")))?;
    let leader_epoch = value
        .get("leader_epoch")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| ApplyOutcome::Fatal("head event without leader_epoch".to_string()))?
        as u64;
    let pending = value
        .get("pending")
        .and_then(JsonValue::as_usize)
        .unwrap_or(0) as u64;
    // A head behind our serving epoch means our state cannot descend from
    // this leader (e.g. a fresh follower whose locally-minted boot epoch
    // happens to be numerically large): re-seed rather than serve alien
    // data while claiming zero lag.
    if leader_epoch < service.epoch() {
        return Err(ApplyOutcome::Gap);
    }
    service.note_replication_head(leader_epoch, pending);
    let caught_up = pending == 0 && leader_epoch == service.epoch();
    if caught_up && *was_behind {
        service.events().emit(
            EventLevel::Info,
            "replication-catchup",
            format!("caught up with the leader at epoch {leader_epoch}"),
        );
    }
    *was_behind = !caught_up;
    Ok(())
}

/// Fetches and installs the leader's newest snapshot; returns its epoch.
fn bootstrap(service: &Arc<Service>, leader: &LeaderUrl) -> Result<u64, String> {
    let response = client::get(leader, "/replication/snapshot", &[], CONNECT_TIMEOUT)
        .map_err(|e| e.to_string())?;
    if response.status != 200 {
        return Err(format!(
            "leader answered {} ({})",
            response.status,
            String::from_utf8_lossy(&response.body)
        ));
    }
    let contents = decode_snapshot(&response.body).map_err(|e| format!("corrupt snapshot: {e}"))?;
    // Derive prestige + index exactly the way leader-side recovery does,
    // so follower answers are byte-identical to the leader's.
    let snapshot = GraphSnapshot::with_defaults(contents.graph);
    Ok(service.install_replicated_snapshot(snapshot))
}
