//! # banks-replica
//!
//! The **follower half** of BANKS leader/follower replication: a client
//! that keeps a local [`banks_service::Service`] converged with a leader
//! process over plain HTTP — `std::net` sockets only, no external HTTP
//! stack, mirroring the hand-rolled server in `banks-server`.
//!
//! ## The protocol (follower's view)
//!
//! 1. **Tail** `GET /replication/stream` on the leader, resuming from the
//!    follower's serving epoch via `Last-Event-ID`.  Each `record` SSE
//!    event carries one leader WAL record — the exact on-disk bytes,
//!    hex-encoded, CRC framing included — which the follower decodes
//!    ([`banks_service::decode_record`]) and applies through
//!    [`banks_service::Service::apply_replicated`]: the same delta-apply
//!    path a leader mutation takes, *WAL-first locally*, so a follower
//!    that is killed mid-stream recovers from its own data directory and
//!    resumes where it stopped.
//! 2. **Bootstrap** when the WAL is not enough: a cursor behind the
//!    leader's truncation horizon gets a terminal `bootstrap` event (and a
//!    mid-stream gap surfaces as
//!    [`banks_service::ReplicationApplyError::EpochGap`]).  The follower
//!    fetches `GET /replication/snapshot`, decodes it
//!    ([`banks_persist::decode_snapshot`]), derives prestige + index the
//!    same way leader recovery does, and installs it via
//!    [`banks_service::Service::install_replicated_snapshot`] — then
//!    resumes tailing from the installed epoch.
//! 3. **Report lag** from the leader's periodic `head` events
//!    ([`banks_service::Service::note_replication_head`]): `/healthz`,
//!    `/metrics` and the `replication_lag` SLO on the follower all read
//!    from that single clock.
//!
//! Because record epochs are leader-assigned and
//! [`Service::apply_replicated`](banks_service::Service::apply_replicated)
//! is idempotent (a record at or behind the serving epoch is skipped),
//! reconnecting and replaying an overlapping window is always safe; the
//! follower reconnects with jittered exponential backoff and re-bootstraps
//! whenever its state cannot be proven to descend from the leader's.
//!
//! ## Example
//!
//! ```no_run
//! use std::sync::Arc;
//!
//! use banks_graph::GraphBuilder;
//! use banks_replica::Follower;
//! use banks_service::{FsyncPolicy, Service};
//!
//! // A placeholder graph: the first bootstrap replaces it wholesale.
//! let mut b = GraphBuilder::new();
//! b.add_node("boot", "empty");
//! let service = Arc::new(
//!     Service::builder(b.build_default())
//!         .workers(2)
//!         .persistence("replica-data", FsyncPolicy::Always)
//!         .build(),
//! );
//! let follower = Follower::start(Arc::clone(&service), "http://127.0.0.1:7878").unwrap();
//! // ... serve reads from `service`; drop `follower` to stop tailing.
//! ```

#![deny(missing_docs)]

mod client;
mod follower;
mod sse;

pub use client::{LeaderUrl, Response};
pub use follower::Follower;
pub use sse::{SseEvent, SseParser};

/// Decodes lowercase/uppercase hex into bytes (the `payload` encoding of
/// replication `record` events).
pub fn from_hex(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err(format!("odd hex length {}", text.len()));
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&text[i..i + 2], 16)
                .map_err(|_| format!("invalid hex at offset {i}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::from_hex;

    #[test]
    fn hex_round_trips() {
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
        assert_eq!(from_hex("00ff10Ab").unwrap(), vec![0x00, 0xff, 0x10, 0xab]);
        assert!(from_hex("0").is_err(), "odd length");
        assert!(from_hex("zz").is_err(), "non-hex digits");
    }
}
