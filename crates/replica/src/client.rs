//! A minimal HTTP/1.1 GET client over `std::net` — just enough to speak
//! to `banks-server`'s replication endpoints: absolute-path GETs with a
//! handful of headers, `Connection: close` framing, status + header + body
//! parsing, and a streaming mode that hands back the socket positioned at
//! the start of an SSE body.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed `http://host:port[/base]` leader address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaderUrl {
    host: String,
    port: u16,
    base: String,
}

impl LeaderUrl {
    /// Parses `http://host:port`, with an optional base path and trailing
    /// slash; a bare `host:port` is accepted too.  `https` is rejected —
    /// this client speaks plaintext HTTP only.
    pub fn parse(url: &str) -> Result<Self, String> {
        let url = url.trim();
        if let Some(rest) = url.strip_prefix("https://") {
            return Err(format!("https is not supported: {rest:?} unreachable"));
        }
        let rest = url.strip_prefix("http://").unwrap_or(url);
        let (authority, base) = match rest.find('/') {
            Some(i) => (&rest[..i], rest[i..].trim_end_matches('/')),
            None => (rest, ""),
        };
        let (host, port) = match authority.rsplit_once(':') {
            Some((host, port)) => (
                host,
                port.parse::<u16>()
                    .map_err(|_| format!("invalid port in {url:?}"))?,
            ),
            None => (authority, 80),
        };
        if host.is_empty() {
            return Err(format!("missing host in {url:?}"));
        }
        Ok(LeaderUrl {
            host: host.to_string(),
            port,
            base: base.to_string(),
        })
    }

    /// `host:port`, for `Host:` headers and [`TcpStream::connect`].
    pub fn authority(&self) -> String {
        format!("{}:{}", self.host, self.port)
    }

    /// The absolute request path for `suffix` (which must start with `/`).
    pub fn path(&self, suffix: &str) -> String {
        format!("{}{suffix}", self.base)
    }

    /// The base URL in display form (no trailing slash).
    pub fn display(&self) -> String {
        format!("http://{}:{}{}", self.host, self.port, self.base)
    }

    fn connect(&self, timeout: Duration) -> std::io::Result<TcpStream> {
        // Resolve + connect with a bound: a black-holed leader address
        // must not hang the follower thread indefinitely.
        let mut last_err = None;
        for addr in std::net::ToSocketAddrs::to_socket_addrs(&(self.host.as_str(), self.port))? {
            match TcpStream::connect_timeout(&addr, timeout) {
                Ok(stream) => return Ok(stream),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "address resolved to nothing")
        }))
    }
}

/// A fully-read HTTP response.
#[derive(Debug)]
pub struct Response {
    /// The status code from the status line.
    pub status: u16,
    /// Response headers, in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (by `Content-Length` when present, else to EOF).
    pub body: Vec<u8>,
}

impl Response {
    /// The first header named `name` (case-insensitive), trimmed.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn write_request(
    stream: &mut TcpStream,
    url: &LeaderUrl,
    path: &str,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut request = format!(
        "GET {} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n",
        url.path(path),
        url.authority()
    );
    for (name, value) in extra_headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str("\r\n");
    stream.write_all(request.as_bytes())
}

fn read_head(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, Vec<(String, String)>)> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line: {line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            return Ok((status, headers));
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
}

/// One whole GET: connect, send, read status + headers + body, close.
pub(crate) fn get(
    url: &LeaderUrl,
    path: &str,
    extra_headers: &[(&str, String)],
    timeout: Duration,
) -> std::io::Result<Response> {
    let mut stream = url.connect(timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    write_request(&mut stream, url, path, extra_headers)?;
    let mut reader = BufReader::new(stream);
    let (status, headers) = read_head(&mut reader)?;
    let length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let mut body = Vec::new();
    match length {
        Some(length) => {
            body.resize(length, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Opens a streaming GET and returns the reader positioned at the body,
/// with `read_timeout` set on the socket so callers can poll a stop flag
/// between SSE lines.  Non-200 responses drain the error body into the
/// returned [`Response`]-shaped error string.
pub(crate) fn open_stream(
    url: &LeaderUrl,
    path: &str,
    extra_headers: &[(&str, String)],
    connect_timeout: Duration,
    read_timeout: Duration,
) -> std::io::Result<BufReader<TcpStream>> {
    let mut stream = url.connect(connect_timeout)?;
    stream.set_read_timeout(Some(connect_timeout))?;
    write_request(&mut stream, url, path, extra_headers)?;
    let mut reader = BufReader::new(stream);
    let (status, _) = read_head(&mut reader)?;
    if status != 200 {
        let mut body = Vec::new();
        let _ = reader.read_to_end(&mut body);
        return Err(std::io::Error::other(format!(
            "leader answered {status} on {}: {}",
            path,
            String::from_utf8_lossy(&body)
        )));
    }
    reader.get_ref().set_read_timeout(Some(read_timeout))?;
    Ok(reader)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urls_parse_with_and_without_scheme_base_and_port() {
        let url = LeaderUrl::parse("http://127.0.0.1:7878").unwrap();
        assert_eq!(url.authority(), "127.0.0.1:7878");
        assert_eq!(url.path("/replication/stream"), "/replication/stream");
        assert_eq!(url.display(), "http://127.0.0.1:7878");

        let url = LeaderUrl::parse("http://leader.example:8080/banks/").unwrap();
        assert_eq!(url.authority(), "leader.example:8080");
        assert_eq!(url.path("/healthz"), "/banks/healthz");

        let url = LeaderUrl::parse("localhost:9000").unwrap();
        assert_eq!(url.authority(), "localhost:9000");

        let url = LeaderUrl::parse("http://bare.example").unwrap();
        assert_eq!(url.authority(), "bare.example:80");

        assert!(LeaderUrl::parse("https://secure.example").is_err());
        assert!(LeaderUrl::parse("http://:7878").is_err());
        assert!(LeaderUrl::parse("http://host:notaport").is_err());
    }
}
