//! The multi-iterator Backward expanding search baseline (Section 3 of the
//! paper; "MI-Backward" in the evaluation).
//!
//! One single-source-shortest-path iterator is created for every node that
//! matches a keyword.  Each iterator runs Dijkstra's algorithm over the
//! *incoming* edges of the expanded graph (it explores the nodes that can
//! reach its origin).  At every step the globally smallest frontier distance
//! decides which iterator advances.  When a node has been visited by at
//! least one iterator of every keyword, each combination of one iterator per
//! keyword that reached it defines an answer tree rooted at that node.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use banks_graph::{DataGraph, NodeId};

use crate::answer::AnswerTree;
use crate::engine::{RankedAnswer, SearchEngine};
use crate::output::OutputHeap;
use crate::score::ScoreModel;
use crate::stats::SearchStats;
use crate::stream::{next_answer, AnswerStream, ExpansionMachine, QueryContext, StreamCore};

/// Upper bound on the number of answer-tree combinations generated when a
/// single node is reached by many iterators of the same keyword, protecting
/// against the cross-product blow-up inherent to the multi-iterator design.
pub(crate) const MAX_COMBINATIONS_PER_VISIT: usize = 256;

/// The MI-Backward search engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct BackwardExpandingSearch;

impl BackwardExpandingSearch {
    /// Creates the engine.
    pub fn new() -> Self {
        BackwardExpandingSearch
    }
}

#[derive(PartialEq, PartialOrd)]
pub(crate) struct OrderedF64(pub(crate) f64);

impl Eq for OrderedF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One single-source shortest-path iterator (one per keyword node).
pub(crate) struct SsspIterator {
    pub(crate) keyword: usize,
    pub(crate) origin: NodeId,
    /// Tentative distance labels.
    tentative: HashMap<NodeId, f64>,
    /// Finalised nodes.
    visited: HashMap<NodeId, f64>,
    /// `pred[u]` is the next node on the best path from `u` towards the
    /// origin (i.e. the node whose expansion relaxed `u`).
    pred: HashMap<NodeId, NodeId>,
    /// Hop depth of each labelled node.
    depth: HashMap<NodeId, u32>,
    frontier: BinaryHeap<Reverse<(OrderedF64, NodeId)>>,
}

impl SsspIterator {
    pub(crate) fn new(keyword: usize, origin: NodeId) -> Self {
        let mut it = SsspIterator {
            keyword,
            origin,
            tentative: HashMap::new(),
            visited: HashMap::new(),
            pred: HashMap::new(),
            depth: HashMap::new(),
            frontier: BinaryHeap::new(),
        };
        it.tentative.insert(origin, 0.0);
        it.depth.insert(origin, 0);
        it.frontier.push(Reverse((OrderedF64(0.0), origin)));
        it
    }

    /// Distance of the next node this iterator would visit, if any.
    pub(crate) fn peek_dist(&mut self) -> Option<f64> {
        while let Some(Reverse((OrderedF64(d), node))) = self.frontier.peek() {
            let stale = self.visited.contains_key(node)
                || self
                    .tentative
                    .get(node)
                    .map(|t| (t - d).abs() > 1e-12)
                    .unwrap_or(true);
            if stale {
                self.frontier.pop();
            } else {
                return Some(*d);
            }
        }
        None
    }

    /// Runs one `getnext()` step: finalises the closest frontier node and
    /// relaxes its incoming edges.  Returns the finalised node, its
    /// distance, and the number of nodes newly labelled (touched).
    pub(crate) fn step(&mut self, graph: &DataGraph, dmax: usize) -> Option<(NodeId, f64, usize)> {
        self.peek_dist()?;
        let Reverse((OrderedF64(d), m)) = self.frontier.pop()?;
        self.visited.insert(m, d);
        let depth_m = *self.depth.get(&m).unwrap_or(&0);
        let mut newly_touched = 0usize;
        if (depth_m as usize) < dmax {
            for e in graph.in_edges(m) {
                let u = e.from;
                if self.visited.contains_key(&u) {
                    continue;
                }
                let candidate = d + e.weight;
                let better = self
                    .tentative
                    .get(&u)
                    .map(|t| candidate < *t - 1e-12)
                    .unwrap_or(true);
                if better {
                    if !self.tentative.contains_key(&u) {
                        newly_touched += 1;
                    }
                    self.tentative.insert(u, candidate);
                    self.pred.insert(u, m);
                    self.depth.insert(u, depth_m + 1);
                    self.frontier.push(Reverse((OrderedF64(candidate), u)));
                }
            }
        }
        Some((m, d, newly_touched))
    }

    /// Path from `root` to this iterator's origin, following the relaxation
    /// predecessors.  `root` must have been visited.
    pub(crate) fn path_to_origin(&self, root: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![root];
        let mut cur = root;
        let mut guard = 0usize;
        while cur != self.origin {
            cur = *self.pred.get(&cur)?;
            path.push(cur);
            guard += 1;
            if guard > 10_000 {
                return None;
            }
        }
        Some(path)
    }
}

impl SearchEngine for BackwardExpandingSearch {
    fn name(&self) -> &'static str {
        "MI-Backward"
    }

    fn start<'a>(&self, ctx: QueryContext<'a>) -> Box<dyn AnswerStream + 'a> {
        Box::new(MiExpander::new(ctx))
    }
}

/// The multi-iterator expansion machinery as a resumable step machine: each
/// [`MiExpander::advance`] call finalises (at most) one node of one
/// iterator, and the [`Iterator`] implementation calls it until the next
/// answer is released.  The control flow replicates the pre-streaming batch
/// loop exactly, so draining the stream reproduces the batch results answer
/// for answer.
struct MiExpander<'a> {
    ctx: QueryContext<'a>,
    model: ScoreModel,
    num_keywords: usize,
    /// One SSSP iterator per keyword node.
    iterators: Vec<SsspIterator>,
    /// Global scheduler over iterators, keyed by their next frontier
    /// distance (lazy re-validation at pop time).
    scheduler: BinaryHeap<Reverse<(OrderedF64, usize)>>,
    /// `visited_by[node][keyword]` = iterator indices that have visited it.
    visited_by: HashMap<NodeId, Vec<Vec<usize>>>,
    heap: OutputHeap,
    /// Shared stream-driver state (ready queue, counters, lifecycle).
    core: StreamCore,
}

impl<'a> MiExpander<'a> {
    fn new(ctx: QueryContext<'a>) -> Self {
        let num_keywords = ctx.matches.num_keywords();
        let model = ctx.params.score_model();
        MiExpander {
            model,
            num_keywords,
            iterators: Vec::new(),
            scheduler: BinaryHeap::new(),
            visited_by: HashMap::new(),
            heap: OutputHeap::new(
                model,
                ctx.params.emission,
                num_keywords,
                ctx.prestige.max(),
                ctx.params.top_k,
            ),
            core: StreamCore::new(),
            ctx,
        }
    }

    /// Seeding on the first call, then one scheduler pop per call.
    fn advance(&mut self) {
        if !self.core.seeded {
            self.core.begin();
            if self.num_keywords == 0 || !self.ctx.matches.all_keywords_matched() {
                self.finish();
                return;
            }
            // One iterator per keyword node.
            for i in 0..self.num_keywords {
                for origin in self.ctx.matches.origin_set(i) {
                    self.iterators.push(SsspIterator::new(i, *origin));
                }
            }
            self.core.stats.nodes_touched = self.iterators.len(); // every origin is labelled once
            for (idx, it) in self.iterators.iter_mut().enumerate() {
                if let Some(d) = it.peek_dist() {
                    self.scheduler.push(Reverse((OrderedF64(d), idx)));
                }
            }
            return;
        }

        let Some(Reverse((OrderedF64(d), idx))) = self.scheduler.pop() else {
            self.finish();
            return;
        };
        if self.core.produced >= self.ctx.params.top_k {
            self.finish();
            return;
        }
        if let Some(cap) = self.ctx.params.max_explored {
            if self.core.stats.nodes_explored >= cap {
                self.core.stats.truncated = true;
                self.finish();
                return;
            }
        }
        if let Some(cap) = self.ctx.params.max_generated {
            if self.core.stats.answers_generated >= cap {
                self.core.stats.truncated = true;
                self.finish();
                return;
            }
        }

        // Re-validate the scheduler entry.
        match self.iterators[idx].peek_dist() {
            None => return,
            Some(current) if (current - d).abs() > 1e-12 => {
                self.scheduler.push(Reverse((OrderedF64(current), idx)));
                return;
            }
            Some(_) => {}
        }

        let graph = self.ctx.graph;
        let Some((m, dist_m, newly_touched)) =
            self.iterators[idx].step(graph, self.ctx.params.dmax)
        else {
            return;
        };
        self.core.stats.nodes_explored += 1;
        self.core.stats.nodes_touched += newly_touched;
        self.core.stats.edges_traversed += graph.in_degree(m);
        if let Some(next) = self.iterators[idx].peek_dist() {
            self.scheduler.push(Reverse((OrderedF64(next), idx)));
        }

        // Record the visit and generate answers for new combinations.
        let keyword = self.iterators[idx].keyword;
        let lists = self
            .visited_by
            .entry(m)
            .or_insert_with(|| vec![Vec::new(); self.num_keywords]);
        lists[keyword].push(idx);
        let all_reached = lists.iter().all(|l| !l.is_empty());
        if all_reached {
            let combos = enumerate_combinations(lists, keyword, idx, MAX_COMBINATIONS_PER_VISIT);
            for combo in combos {
                if let Some(cap) = self.ctx.params.max_generated {
                    if self.core.stats.answers_generated >= cap {
                        break;
                    }
                }
                let mut paths = Vec::with_capacity(self.num_keywords);
                let mut ok = true;
                for iter_idx in &combo {
                    match self.iterators[*iter_idx].path_to_origin(m) {
                        Some(p) => paths.push(p),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let tree = AnswerTree::new(m, paths, graph, self.ctx.prestige, &self.model);
                self.core.stats.answers_generated += 1;
                self.heap.insert(
                    tree,
                    self.core.started.elapsed(),
                    self.core.stats.nodes_explored,
                );
            }
        }

        // Release answers using the coarse bound of Section 4.5: because
        // the iterators run Dijkstra, distances are finalised in
        // non-decreasing order, so any answer generated in the future
        // pays at least the globally smallest frontier distance `dist_m`
        // for every keyword path still to be discovered — the paper's
        // `h(m_1..m_k) = k · dist_m`.
        let min_future = self.num_keywords as f64 * dist_m;
        let released = self.heap.release(
            min_future,
            self.core.started.elapsed(),
            self.core.stats.nodes_explored,
        );
        self.core.push_released(self.ctx.params.top_k, released);
    }

    /// Frontier exhausted, caps hit, `top_k` produced, or deadline missed:
    /// flush the buffer and seal the statistics.
    fn finish(&mut self) {
        if self.core.done {
            return;
        }
        let released = self
            .heap
            .flush(self.core.started.elapsed(), self.core.stats.nodes_explored);
        self.core.push_released(self.ctx.params.top_k, released);
        self.core.seal(
            self.heap.duplicates_discarded(),
            self.heap.non_minimal_discarded(),
        );
    }
}

impl<'a> ExpansionMachine for MiExpander<'a> {
    fn core(&self) -> &StreamCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut StreamCore {
        &mut self.core
    }

    fn answer_work_budget(&self) -> Option<usize> {
        self.ctx.params.answer_work_budget
    }

    fn is_cancelled(&self) -> bool {
        self.ctx.is_cancelled()
    }

    fn observer(&self) -> Option<&banks_obs::WorkCounters> {
        self.ctx.observer
    }

    fn advance(&mut self) {
        MiExpander::advance(self)
    }

    fn finish(&mut self) {
        MiExpander::finish(self)
    }
}

impl<'a> Iterator for MiExpander<'a> {
    type Item = RankedAnswer;

    fn next(&mut self) -> Option<RankedAnswer> {
        next_answer(self)
    }
}

impl<'a> AnswerStream for MiExpander<'a> {
    fn stats(&self) -> SearchStats {
        self.core.live_stats()
    }

    fn engine_name(&self) -> &'static str {
        "MI-Backward"
    }

    fn is_exhausted(&self) -> bool {
        self.core.is_exhausted()
    }
}

/// Enumerates combinations of one iterator per keyword that include the
/// newly arrived iterator `new_idx` for keyword `new_keyword` (so that every
/// combination is generated exactly once over the lifetime of the search).
pub(crate) fn enumerate_combinations(
    lists: &[Vec<usize>],
    new_keyword: usize,
    new_idx: usize,
    cap: usize,
) -> Vec<Vec<usize>> {
    let mut result = Vec::new();
    let mut current = vec![0usize; lists.len()];
    fn recurse(
        lists: &[Vec<usize>],
        new_keyword: usize,
        new_idx: usize,
        cap: usize,
        keyword: usize,
        current: &mut Vec<usize>,
        result: &mut Vec<Vec<usize>>,
    ) {
        if result.len() >= cap {
            return;
        }
        if keyword == lists.len() {
            result.push(current.clone());
            return;
        }
        if keyword == new_keyword {
            current[keyword] = new_idx;
            recurse(
                lists,
                new_keyword,
                new_idx,
                cap,
                keyword + 1,
                current,
                result,
            );
        } else {
            for idx in &lists[keyword] {
                current[keyword] = *idx;
                recurse(
                    lists,
                    new_keyword,
                    new_idx,
                    cap,
                    keyword + 1,
                    current,
                    result,
                );
                if result.len() >= cap {
                    return;
                }
            }
        }
    }
    recurse(
        lists,
        new_keyword,
        new_idx,
        cap,
        0,
        &mut current,
        &mut result,
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bidirectional::BidirectionalSearch;
    use crate::params::SearchParams;
    use crate::si_backward::SingleIteratorBackwardSearch;
    use banks_graph::builder::graph_from_edges;
    use banks_prestige::PrestigeVector;
    use banks_textindex::KeywordMatches;

    fn uniform(graph: &DataGraph) -> PrestigeVector {
        PrestigeVector::uniform_for(graph)
    }

    #[test]
    fn enumerate_combinations_includes_new_iterator() {
        let lists = vec![vec![1, 2], vec![3], vec![4, 5]];
        let combos = enumerate_combinations(&lists, 1, 3, 100);
        assert_eq!(combos.len(), 4);
        for c in &combos {
            assert_eq!(c[1], 3);
            assert!(lists[0].contains(&c[0]));
            assert!(lists[2].contains(&c[2]));
        }
        let capped = enumerate_combinations(&lists, 1, 3, 2);
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn finds_simple_join_tree() {
        let g = graph_from_edges(3, &[(2, 0), (2, 1)]);
        let p = uniform(&g);
        let matches = KeywordMatches::from_sets(vec![
            ("gray", vec![NodeId(0)]),
            ("transaction", vec![NodeId(1)]),
        ]);
        let outcome =
            BackwardExpandingSearch::new().search(&g, &p, &matches, &SearchParams::default());
        assert_eq!(outcome.answers.len(), 1);
        assert_eq!(outcome.answers[0].tree.root, NodeId(2));
        assert!(outcome.stats.nodes_explored > 0);
    }

    #[test]
    fn agrees_with_single_iterator_variants_on_answer_sets() {
        let g = graph_from_edges(
            9,
            &[
                (4, 0),
                (4, 1),
                (5, 1),
                (5, 2),
                (6, 2),
                (6, 3),
                (7, 3),
                (7, 0),
                (8, 0),
                (8, 2),
            ],
        );
        let p = uniform(&g);
        let matches =
            KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![NodeId(2)])]);
        let params = SearchParams::with_top_k(100);
        let mi = BackwardExpandingSearch::new().search(&g, &p, &matches, &params);
        let si = SingleIteratorBackwardSearch::new().search(&g, &p, &matches, &params);
        let bidir = BidirectionalSearch::new().search(&g, &p, &matches, &params);
        let mut a = mi.signatures();
        let mut b = si.signatures();
        let mut c = bidir.signatures();
        a.sort();
        b.sort();
        c.sort();
        assert_eq!(a, b, "MI-Backward vs SI-Backward answer sets differ");
        assert_eq!(b, c, "SI-Backward vs Bidirectional answer sets differ");
    }

    #[test]
    fn multi_iterator_touches_more_nodes_than_single_iterator() {
        // A keyword with many matching nodes forces MI-Backward to run many
        // iterators over the same region.
        let mut edges = Vec::new();
        // star of 30 "database" papers all written by author 30 via writes nodes 31..61
        for i in 0..30u32 {
            edges.push((31 + i, i)); // writes -> paper_i
            edges.push((31 + i, 61)); // writes -> author
        }
        let g = graph_from_edges(62, &edges);
        let p = uniform(&g);
        let matches = KeywordMatches::from_sets(vec![
            ("database", (0..30).map(NodeId).collect()),
            ("author", vec![NodeId(61)]),
        ]);
        let params = SearchParams::with_top_k(1);
        let mi = BackwardExpandingSearch::new().search(&g, &p, &matches, &params);
        let si = SingleIteratorBackwardSearch::new().search(&g, &p, &matches, &params);
        assert!(!mi.answers.is_empty());
        assert!(!si.answers.is_empty());
        assert!(
            mi.stats.nodes_touched > si.stats.nodes_touched,
            "MI touched {} <= SI touched {}",
            mi.stats.nodes_touched,
            si.stats.nodes_touched
        );
    }

    #[test]
    fn respects_dmax() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = uniform(&g);
        let matches =
            KeywordMatches::from_sets(vec![("k1", vec![NodeId(0)]), ("k2", vec![NodeId(4)])]);
        let none = BackwardExpandingSearch::new().search(
            &g,
            &p,
            &matches,
            &SearchParams::default().dmax(1),
        );
        assert!(none.answers.is_empty());
        let found =
            BackwardExpandingSearch::new().search(&g, &p, &matches, &SearchParams::default());
        assert!(!found.answers.is_empty());
    }

    #[test]
    fn unmatched_keyword_returns_no_answers() {
        let g = graph_from_edges(3, &[(2, 0), (2, 1)]);
        let p = uniform(&g);
        let matches = KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![])]);
        let outcome =
            BackwardExpandingSearch::new().search(&g, &p, &matches, &SearchParams::default());
        assert!(outcome.answers.is_empty());
    }
}
