//! The streaming execution model: lazily evaluated answer streams.
//!
//! The paper's headline result is *incremental* emission — Bidirectional
//! expansion produces its first relevant answers long before the search
//! completes (Figures 5 and 6 measure time to the last relevant answer, but
//! Section 4.5's output heap exists precisely so answers can leave the
//! engine early).  A batch API hides that property: callers only see a
//! finished [`SearchOutcome`] and can neither observe
//! time-to-first-answer directly nor terminate a search early.
//!
//! [`AnswerStream`] makes emission the primitive.  Engines are resumable
//! step machines: [`crate::SearchEngine::start`] returns a stream, and each
//! [`Iterator::next`] call advances the underlying expansion *only* until
//! the next answer clears the emission policy.  Consequences:
//!
//! * `stream.next()` measures true time-to-first-answer,
//! * `stream.take(k)` / dropping the stream terminates the search early
//!   without exploring the rest of the graph,
//! * [`AnswerStream::stats`] exposes live work counters while the search
//!   runs,
//! * a per-answer **work budget**
//!   ([`crate::SearchParams::answer_work_budget`]) bounds the number of
//!   nodes the engine may explore between consecutive emissions: when the
//!   budget is exceeded, the engine stops expanding, flushes the answers it
//!   has already generated, and ends the stream (marking
//!   [`SearchStats::truncated`]).  Work budgets are deterministic — unlike
//!   the wall-clock gap accounting they replaced, they behave identically
//!   whether the process is idle or saturated by a hundred concurrent
//!   queries,
//! * a cooperative [`crate::CancelToken`] carried by the [`QueryContext`]
//!   is checked before every expansion step, so another thread can abort
//!   the search without dropping the stream (marking
//!   [`SearchStats::cancelled`]; the stream is *not* exhausted).
//!
//! The batch entry point [`crate::SearchEngine::search`] is now a default
//! method that drains the stream, so both paths share one implementation
//! and produce identical answer sequences.

use std::collections::VecDeque;
use std::time::Instant;

use banks_graph::DataGraph;
use banks_obs::{ShardTimes, WorkCounters};
use banks_prestige::PrestigeVector;
use banks_textindex::KeywordMatches;

use crate::answer::AnswerTree;
use crate::cancel::CancelToken;
use crate::engine::{RankedAnswer, SearchOutcome};
use crate::params::SearchParams;
use crate::stats::{AnswerTiming, SearchStats};

/// Everything an engine needs to start a search: the borrowed inputs plus
/// an owned copy of the parameters.
///
/// `QueryContext` replaces the four positional arguments of the legacy
/// `search(graph, prestige, matches, params)` call; the
/// [`crate::Banks`] facade assembles it from a query builder.
#[derive(Clone, Copy)]
pub struct QueryContext<'a> {
    /// The data graph to search.
    pub graph: &'a DataGraph,
    /// Node prestige (uniform or biased PageRank).
    pub prestige: &'a PrestigeVector,
    /// Per-keyword origin sets.
    pub matches: &'a KeywordMatches,
    /// Search parameters (owned copy: `SearchParams` is `Copy`).
    pub params: SearchParams,
    /// Cooperative cancellation flag, checked before every expansion step.
    /// `None` means the search cannot be cancelled externally.
    pub cancel: Option<&'a CancelToken>,
    /// Live work counters the stream driver publishes progress samples
    /// into with relaxed stores after every expansion step.  `None` (the
    /// default) skips sampling entirely, keeping untraced queries free of
    /// instrumentation cost.
    pub observer: Option<&'a WorkCounters>,
    /// Number of execution shards a scatter-gather engine may spread its
    /// iterator groups over.  `1` (the default) keeps every engine on the
    /// unsharded single-thread code path.
    pub shards: usize,
    /// Per-shard busy-time accumulators the scatter-gather engine adds its
    /// parallel refill rounds into.  `None` (the default) skips the
    /// accounting entirely.
    pub shard_times: Option<&'a ShardTimes>,
}

impl<'a> QueryContext<'a> {
    /// Bundles the search inputs (no cancellation token; attach one with
    /// [`QueryContext::with_cancel`]).
    pub fn new(
        graph: &'a DataGraph,
        prestige: &'a PrestigeVector,
        matches: &'a KeywordMatches,
        params: SearchParams,
    ) -> Self {
        QueryContext {
            graph,
            prestige,
            matches,
            params,
            cancel: None,
            observer: None,
            shards: 1,
            shard_times: None,
        }
    }

    /// Attaches a cancellation token: the engine checks it before every
    /// expansion step and stops (without exhausting) once it is cancelled.
    pub fn with_cancel(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches live work counters: the stream driver publishes a progress
    /// sample (heap pops, rows expanded, answers) after every expansion
    /// step with relaxed stores.
    pub fn with_observer(mut self, observer: &'a WorkCounters) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Sets the number of execution shards available to scatter-gather
    /// engines (clamped to at least 1).  Engines without a sharded
    /// decomposition ignore it.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Attaches per-shard busy-time accumulators: the scatter-gather
    /// engine adds the wall time of every parallel refill round to the
    /// slot of the shard it served.
    pub fn with_shard_times(mut self, times: &'a ShardTimes) -> Self {
        self.shard_times = Some(times);
        self
    }

    /// Whether the attached token (if any) has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }
}

/// A lazily evaluated stream of ranked answers.
///
/// Produced by [`crate::SearchEngine::start`].  Each `next()` call resumes
/// the engine's expansion state machine until the next answer is released
/// by the emission policy (or the search exhausts / hits a cap / misses its
/// per-answer deadline).  Dropping the stream terminates the search.
pub trait AnswerStream: Iterator<Item = RankedAnswer> {
    /// Snapshot of the work counters so far.  While the stream is live the
    /// duration field reflects elapsed time; after exhaustion it is the
    /// total search duration.
    fn stats(&self) -> SearchStats;

    /// The engine variant driving this stream.
    fn engine_name(&self) -> &'static str;

    /// True once the stream can produce no further answers (every
    /// subsequent `next()` returns `None`).
    fn is_exhausted(&self) -> bool;
}

/// The stream-driver state shared by every engine's step machine: the
/// ready queue, emission bookkeeping, lifecycle flags and work counters.
/// Engines own one `StreamCore` and contribute only their expansion logic
/// through [`ExpansionMachine`].
pub(crate) struct StreamCore {
    /// Answers released by the emission policy but not yet consumed by the
    /// stream's caller.
    pub ready: VecDeque<RankedAnswer>,
    /// Total answers ever pushed into `ready` (the batch API's
    /// `outputs.len()`): ranks and the `top_k` cutoff derive from it.
    pub produced: usize,
    /// Whether the engine has seeded its frontier (done lazily on the
    /// first `next()` call so `started` reflects the consumer's first
    /// poll).
    pub seeded: bool,
    /// Whether the search has finished (frontier exhausted, caps hit,
    /// `top_k` reached, or work budget exceeded) and flushed its buffer.
    pub done: bool,
    pub started: Instant,
    /// `nodes_explored` when the previous answer left the stream (work
    /// budget bookkeeping).
    pub last_emission_explored: usize,
    pub stats: SearchStats,
}

impl StreamCore {
    pub fn new() -> Self {
        StreamCore {
            ready: VecDeque::new(),
            produced: 0,
            seeded: false,
            done: false,
            started: Instant::now(),
            last_emission_explored: 0,
            stats: SearchStats::default(),
        }
    }

    /// Marks the lazy-initialisation point: the consumer's first poll.
    pub fn begin(&mut self) {
        self.seeded = true;
        self.started = Instant::now();
        self.last_emission_explored = 0;
    }

    /// Moves policy-released answers into the ready queue, assigning ranks.
    pub fn push_released(&mut self, top_k: usize, released: Vec<(AnswerTree, AnswerTiming)>) {
        for (tree, timing) in released {
            // The heap's lifetime budget (initialized to top_k) already
            // caps total releases; assert that invariant instead of
            // silently re-enforcing it.
            debug_assert!(
                self.produced < top_k,
                "OutputHeap released more than top_k answers"
            );
            let rank = self.produced;
            self.produced += 1;
            self.stats.answers_output = self.produced;
            self.ready.push_back(RankedAnswer { rank, tree, timing });
        }
    }

    /// Seals the final statistics and marks the stream done.
    pub fn seal(&mut self, duplicates_discarded: usize, non_minimal_discarded: usize) {
        self.stats.answers_output = self.produced;
        self.stats.duplicates_discarded = duplicates_discarded;
        self.stats.non_minimal_discarded = non_minimal_discarded;
        self.stats.duration = self.started.elapsed();
        self.done = true;
    }

    /// Snapshot for [`AnswerStream::stats`]: live elapsed time while
    /// running, sealed duration once done.
    pub fn live_stats(&self) -> SearchStats {
        let mut stats = self.stats.clone();
        if self.seeded && !self.done {
            stats.duration = self.started.elapsed();
        }
        stats
    }

    pub fn is_exhausted(&self) -> bool {
        self.done && self.ready.is_empty()
    }
}

/// An engine's resumable expansion logic, plugged into the shared
/// [`next_answer`] driver.
pub(crate) trait ExpansionMachine {
    fn core(&self) -> &StreamCore;
    fn core_mut(&mut self) -> &mut StreamCore;
    /// The per-answer work budget (nodes explored between emissions) from
    /// the engine's parameters.
    fn answer_work_budget(&self) -> Option<usize>;
    /// Whether the query's cancellation token has been triggered.
    fn is_cancelled(&self) -> bool;
    /// One unit of work: seed on the first call, then one expansion step;
    /// must call `finish` when the search ends.
    fn advance(&mut self);
    /// Ends the search: flush buffered answers and seal the statistics.
    fn finish(&mut self);
    /// The live work counters attached to the query, if any.  The shared
    /// driver publishes a progress sample into them after every step.
    fn observer(&self) -> Option<&WorkCounters> {
        None
    }
}

/// Publishes the machine's current counters into its observer (if one is
/// attached) as absolute relaxed stores.
fn publish_progress<M: ExpansionMachine>(machine: &M) {
    if let Some(obs) = machine.observer() {
        let stats = &machine.core().stats;
        obs.store(
            stats.nodes_explored as u64,
            stats.nodes_touched as u64,
            stats.edges_traversed as u64,
            machine.core().produced as u64,
        );
    }
}

/// The shared `Iterator::next` body: pump the ready queue, honour
/// cancellation and the per-answer work budget, and otherwise advance the
/// machine one step.
pub(crate) fn next_answer<M: ExpansionMachine>(machine: &mut M) -> Option<RankedAnswer> {
    loop {
        if let Some(answer) = machine.core_mut().ready.pop_front() {
            let core = machine.core_mut();
            core.last_emission_explored = core.stats.nodes_explored;
            return Some(answer);
        }
        if machine.core().done {
            return None;
        }
        if machine.is_cancelled() {
            // Cooperative abort: stop immediately without flushing or
            // sealing.  The stream is not exhausted — the engine never
            // proved there were no further answers — and the live stats
            // stay consistent (monotone counters, live duration).
            machine.core_mut().stats.cancelled = true;
            return None;
        }
        if let Some(budget) = machine.answer_work_budget() {
            let core = machine.core_mut();
            let spent = core
                .stats
                .nodes_explored
                .saturating_sub(core.last_emission_explored);
            if core.seeded && spent > budget {
                // Out of work budget for this answer: stop expanding, hand
                // out whatever was already generated, and end the stream.
                // Node counts (unlike wall-clock gaps) are deterministic, so
                // the cut-off point is identical under any load.
                core.stats.truncated = true;
                machine.finish();
                publish_progress(machine);
                continue;
            }
        }
        machine.advance();
        publish_progress(machine);
    }
}

/// Runs a stream to completion and packages the batch result.
///
/// This is the bridge from the streaming model back to the legacy batch
/// API: [`crate::SearchEngine::search`] is default-implemented as
/// `drain(self.start(ctx))`, which guarantees the two paths emit identical
/// answer sequences.
pub fn drain(mut stream: Box<dyn AnswerStream + '_>) -> SearchOutcome {
    let mut answers = Vec::new();
    for answer in stream.by_ref() {
        answers.push(answer);
    }
    SearchOutcome {
        answers,
        stats: stream.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bidirectional::BidirectionalSearch;
    use crate::engine::SearchEngine;
    use banks_graph::builder::graph_from_edges;
    use banks_graph::NodeId;

    #[test]
    fn query_context_is_copy() {
        let g = graph_from_edges(3, &[(2, 0), (2, 1)]);
        let p = PrestigeVector::uniform_for(&g);
        let m = KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![NodeId(1)])]);
        let ctx = QueryContext::new(&g, &p, &m, SearchParams::default());
        let ctx2 = ctx; // Copy
        assert_eq!(ctx.params.top_k, ctx2.params.top_k);
    }

    /// Cancelling a token mid-stream stops the engine within one
    /// `advance()` step: no further nodes are explored, the partial stats
    /// stay consistent (monotone counters), and the stream is *not*
    /// exhausted — cancellation is an abort, not a completed search.
    #[test]
    fn cancellation_mid_stream_stops_within_one_step() {
        // A cycle of writes-nodes with alternating keywords: many answers,
        // so the stream is genuinely mid-flight after the first emission.
        let g = graph_from_edges(
            12,
            &[
                (6, 0),
                (6, 1),
                (7, 1),
                (7, 2),
                (8, 2),
                (8, 3),
                (9, 3),
                (9, 4),
                (10, 4),
                (10, 5),
                (11, 5),
                (11, 0),
            ],
        );
        let p = PrestigeVector::uniform_for(&g);
        let m = KeywordMatches::from_sets(vec![
            ("a", vec![NodeId(0), NodeId(2), NodeId(4)]),
            ("b", vec![NodeId(1), NodeId(3), NodeId(5)]),
        ]);
        // Immediate emission keeps the stream live after the first answer
        // (ExactBound could complete the whole search before releasing).
        let params =
            SearchParams::with_top_k(64).emission(crate::params::EmissionPolicy::Immediate);
        let token = crate::CancelToken::new();
        let engine = BidirectionalSearch::new();
        let mut stream = engine.start(QueryContext::new(&g, &p, &m, params).with_cancel(&token));
        assert!(!stream.is_exhausted());

        let first = stream.next().expect("at least one answer before cancel");
        assert_eq!(first.rank, 0);
        let live_before = stream.stats();
        assert!(!live_before.cancelled);

        token.cancel();
        // Any buffered answers may still drain (they are already paid for),
        // but no further expansion happens.
        while stream.next().is_some() {}
        let live_after = stream.stats();
        assert!(live_after.cancelled, "cancel flag must be recorded");
        assert!(
            !stream.is_exhausted(),
            "a cancelled stream is aborted, not exhausted"
        );
        assert_eq!(
            live_after.nodes_explored, live_before.nodes_explored,
            "no expansion step may run after cancellation"
        );
        // live_stats stay monotone and consistent with the pre-cancel view
        assert!(live_after.nodes_touched >= live_before.nodes_touched);
        assert!(live_after.edges_traversed >= live_before.edges_traversed);
        assert!(live_after.answers_output >= live_before.answers_output);
        // ...and repeated polling stays put.
        assert!(stream.next().is_none());
        assert_eq!(stream.stats().nodes_explored, live_after.nodes_explored);
    }

    /// A token cancelled before the first poll prevents any work at all.
    #[test]
    fn cancellation_before_start_explores_nothing() {
        let g = graph_from_edges(3, &[(2, 0), (2, 1)]);
        let p = PrestigeVector::uniform_for(&g);
        let m = KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![NodeId(1)])]);
        let token = crate::CancelToken::new();
        token.cancel();
        let mut stream = BidirectionalSearch::new()
            .start(QueryContext::new(&g, &p, &m, SearchParams::default()).with_cancel(&token));
        assert!(stream.next().is_none());
        let stats = stream.stats();
        assert!(stats.cancelled);
        assert_eq!(stats.nodes_explored, 0);
        assert!(!stream.is_exhausted());
    }

    /// All four engines honour cancellation through the shared driver
    /// (scatter-gather is exercised on its genuinely sharded path).
    #[test]
    fn every_engine_honours_cancellation() {
        use crate::backward::BackwardExpandingSearch;
        use crate::scatter::ScatterGatherSearch;
        use crate::si_backward::SingleIteratorBackwardSearch;

        let g = graph_from_edges(50, &(0..49).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let p = PrestigeVector::uniform_for(&g);
        let m = KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![NodeId(49)])]);
        let params = SearchParams::default();
        let engines: Vec<Box<dyn crate::SearchEngine>> = vec![
            Box::new(BidirectionalSearch::new()),
            Box::new(SingleIteratorBackwardSearch::new()),
            Box::new(BackwardExpandingSearch::new()),
            Box::new(ScatterGatherSearch::new()),
        ];
        for engine in engines {
            let token = crate::CancelToken::new();
            token.cancel();
            let mut stream = engine.start(
                QueryContext::new(&g, &p, &m, params)
                    .with_cancel(&token)
                    .with_shards(4),
            );
            assert!(stream.next().is_none(), "{}", engine.name());
            assert!(stream.stats().cancelled, "{}", engine.name());
            assert!(!stream.is_exhausted(), "{}", engine.name());
        }
    }

    #[test]
    fn drain_matches_manual_iteration() {
        let g = graph_from_edges(3, &[(2, 0), (2, 1)]);
        let p = PrestigeVector::uniform_for(&g);
        let m = KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![NodeId(1)])]);
        let params = SearchParams::default();
        let engine = BidirectionalSearch::new();

        let outcome = drain(engine.start(QueryContext::new(&g, &p, &m, params)));

        let mut stream = engine.start(QueryContext::new(&g, &p, &m, params));
        let mut manual = Vec::new();
        for a in stream.by_ref() {
            manual.push(a);
        }
        assert!(stream.is_exhausted());
        assert_eq!(outcome.answers.len(), manual.len());
        for (a, b) in outcome.answers.iter().zip(&manual) {
            assert_eq!(a.tree.signature(), b.tree.signature());
            assert_eq!(a.rank, b.rank);
        }
        assert_eq!(outcome.stats.nodes_explored, stream.stats().nodes_explored);
    }
}
