//! The streaming execution model: lazily evaluated answer streams.
//!
//! The paper's headline result is *incremental* emission — Bidirectional
//! expansion produces its first relevant answers long before the search
//! completes (Figures 5 and 6 measure time to the last relevant answer, but
//! Section 4.5's output heap exists precisely so answers can leave the
//! engine early).  A batch API hides that property: callers only see a
//! finished [`SearchOutcome`](crate::SearchOutcome) and can neither observe
//! time-to-first-answer directly nor terminate a search early.
//!
//! [`AnswerStream`] makes emission the primitive.  Engines are resumable
//! step machines: [`crate::SearchEngine::start`] returns a stream, and each
//! [`Iterator::next`] call advances the underlying expansion *only* until
//! the next answer clears the emission policy.  Consequences:
//!
//! * `stream.next()` measures true time-to-first-answer,
//! * `stream.take(k)` / dropping the stream terminates the search early
//!   without exploring the rest of the graph,
//! * [`AnswerStream::stats`] exposes live work counters while the search
//!   runs,
//! * a per-answer deadline ([`crate::SearchParams::answer_deadline`])
//!   bounds the wall-clock gap between consecutive emissions: when it
//!   expires, the engine stops expanding, flushes the answers it has
//!   already generated, and ends the stream (marking
//!   [`SearchStats::truncated`]).
//!
//! The batch entry point [`crate::SearchEngine::search`] is now a default
//! method that drains the stream, so both paths share one implementation
//! and produce identical answer sequences.

use std::collections::VecDeque;
use std::time::Instant;

use banks_graph::DataGraph;
use banks_prestige::PrestigeVector;
use banks_textindex::KeywordMatches;

use crate::answer::AnswerTree;
use crate::engine::{RankedAnswer, SearchOutcome};
use crate::params::SearchParams;
use crate::stats::{AnswerTiming, SearchStats};

/// Everything an engine needs to start a search: the borrowed inputs plus
/// an owned copy of the parameters.
///
/// `QueryContext` replaces the four positional arguments of the legacy
/// `search(graph, prestige, matches, params)` call; the
/// [`crate::Banks`] facade assembles it from a query builder.
#[derive(Clone, Copy)]
pub struct QueryContext<'a> {
    /// The data graph to search.
    pub graph: &'a DataGraph,
    /// Node prestige (uniform or biased PageRank).
    pub prestige: &'a PrestigeVector,
    /// Per-keyword origin sets.
    pub matches: &'a KeywordMatches,
    /// Search parameters (owned copy: `SearchParams` is `Copy`).
    pub params: SearchParams,
}

impl<'a> QueryContext<'a> {
    /// Bundles the search inputs.
    pub fn new(
        graph: &'a DataGraph,
        prestige: &'a PrestigeVector,
        matches: &'a KeywordMatches,
        params: SearchParams,
    ) -> Self {
        QueryContext {
            graph,
            prestige,
            matches,
            params,
        }
    }
}

/// A lazily evaluated stream of ranked answers.
///
/// Produced by [`crate::SearchEngine::start`].  Each `next()` call resumes
/// the engine's expansion state machine until the next answer is released
/// by the emission policy (or the search exhausts / hits a cap / misses its
/// per-answer deadline).  Dropping the stream terminates the search.
pub trait AnswerStream: Iterator<Item = RankedAnswer> {
    /// Snapshot of the work counters so far.  While the stream is live the
    /// duration field reflects elapsed time; after exhaustion it is the
    /// total search duration.
    fn stats(&self) -> SearchStats;

    /// The engine variant driving this stream.
    fn engine_name(&self) -> &'static str;

    /// True once the stream can produce no further answers (every
    /// subsequent `next()` returns `None`).
    fn is_exhausted(&self) -> bool;
}

/// The stream-driver state shared by every engine's step machine: the
/// ready queue, emission bookkeeping, lifecycle flags and work counters.
/// Engines own one `StreamCore` and contribute only their expansion logic
/// through [`ExpansionMachine`].
pub(crate) struct StreamCore {
    /// Answers released by the emission policy but not yet consumed by the
    /// stream's caller.
    pub ready: VecDeque<RankedAnswer>,
    /// Total answers ever pushed into `ready` (the batch API's
    /// `outputs.len()`): ranks and the `top_k` cutoff derive from it.
    pub produced: usize,
    /// Whether the engine has seeded its frontier (done lazily on the
    /// first `next()` call so `started` reflects the consumer's first
    /// poll).
    pub seeded: bool,
    /// Whether the search has finished (frontier exhausted, caps hit,
    /// `top_k` reached, or deadline missed) and flushed its buffer.
    pub done: bool,
    pub started: Instant,
    /// When the previous answer left the stream (deadline bookkeeping).
    pub last_emission: Instant,
    pub stats: SearchStats,
}

impl StreamCore {
    pub fn new() -> Self {
        let now = Instant::now();
        StreamCore {
            ready: VecDeque::new(),
            produced: 0,
            seeded: false,
            done: false,
            started: now,
            last_emission: now,
            stats: SearchStats::default(),
        }
    }

    /// Marks the lazy-initialisation point: the consumer's first poll.
    pub fn begin(&mut self) {
        self.seeded = true;
        self.started = Instant::now();
        self.last_emission = self.started;
    }

    /// Moves policy-released answers into the ready queue, assigning ranks.
    pub fn push_released(&mut self, top_k: usize, released: Vec<(AnswerTree, AnswerTiming)>) {
        for (tree, timing) in released {
            // The heap's lifetime budget (initialized to top_k) already
            // caps total releases; assert that invariant instead of
            // silently re-enforcing it.
            debug_assert!(
                self.produced < top_k,
                "OutputHeap released more than top_k answers"
            );
            let rank = self.produced;
            self.produced += 1;
            self.stats.answers_output = self.produced;
            self.ready.push_back(RankedAnswer { rank, tree, timing });
        }
    }

    /// Seals the final statistics and marks the stream done.
    pub fn seal(&mut self, duplicates_discarded: usize, non_minimal_discarded: usize) {
        self.stats.answers_output = self.produced;
        self.stats.duplicates_discarded = duplicates_discarded;
        self.stats.non_minimal_discarded = non_minimal_discarded;
        self.stats.duration = self.started.elapsed();
        self.done = true;
    }

    /// Snapshot for [`AnswerStream::stats`]: live elapsed time while
    /// running, sealed duration once done.
    pub fn live_stats(&self) -> SearchStats {
        let mut stats = self.stats.clone();
        if self.seeded && !self.done {
            stats.duration = self.started.elapsed();
        }
        stats
    }

    pub fn is_exhausted(&self) -> bool {
        self.done && self.ready.is_empty()
    }
}

/// An engine's resumable expansion logic, plugged into the shared
/// [`next_answer`] driver.
pub(crate) trait ExpansionMachine {
    fn core(&self) -> &StreamCore;
    fn core_mut(&mut self) -> &mut StreamCore;
    /// The per-answer deadline from the engine's parameters.
    fn answer_deadline(&self) -> Option<std::time::Duration>;
    /// One unit of work: seed on the first call, then one expansion step;
    /// must call `finish` when the search ends.
    fn advance(&mut self);
    /// Ends the search: flush buffered answers and seal the statistics.
    fn finish(&mut self);
}

/// The shared `Iterator::next` body: pump the ready queue, honour the
/// per-answer deadline, and otherwise advance the machine one step.
pub(crate) fn next_answer<M: ExpansionMachine>(machine: &mut M) -> Option<RankedAnswer> {
    loop {
        if let Some(answer) = machine.core_mut().ready.pop_front() {
            machine.core_mut().last_emission = Instant::now();
            return Some(answer);
        }
        if machine.core().done {
            return None;
        }
        if let Some(deadline) = machine.answer_deadline() {
            let core = machine.core_mut();
            if core.seeded && core.last_emission.elapsed() > deadline {
                // Out of time for this answer: stop expanding, hand out
                // whatever was already generated, and end the stream.
                core.stats.truncated = true;
                machine.finish();
                continue;
            }
        }
        machine.advance();
    }
}

/// Runs a stream to completion and packages the batch result.
///
/// This is the bridge from the streaming model back to the legacy batch
/// API: [`crate::SearchEngine::search`] is default-implemented as
/// `drain(self.start(ctx))`, which guarantees the two paths emit identical
/// answer sequences.
pub fn drain(mut stream: Box<dyn AnswerStream + '_>) -> SearchOutcome {
    let mut answers = Vec::new();
    for answer in stream.by_ref() {
        answers.push(answer);
    }
    SearchOutcome {
        answers,
        stats: stream.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bidirectional::BidirectionalSearch;
    use crate::engine::SearchEngine;
    use banks_graph::builder::graph_from_edges;
    use banks_graph::NodeId;

    #[test]
    fn query_context_is_copy() {
        let g = graph_from_edges(3, &[(2, 0), (2, 1)]);
        let p = PrestigeVector::uniform_for(&g);
        let m = KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![NodeId(1)])]);
        let ctx = QueryContext::new(&g, &p, &m, SearchParams::default());
        let ctx2 = ctx; // Copy
        assert_eq!(ctx.params.top_k, ctx2.params.top_k);
    }

    #[test]
    fn drain_matches_manual_iteration() {
        let g = graph_from_edges(3, &[(2, 0), (2, 1)]);
        let p = PrestigeVector::uniform_for(&g);
        let m = KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![NodeId(1)])]);
        let params = SearchParams::default();
        let engine = BidirectionalSearch::new();

        let outcome = drain(engine.start(QueryContext::new(&g, &p, &m, params)));

        let mut stream = engine.start(QueryContext::new(&g, &p, &m, params));
        let mut manual = Vec::new();
        for a in stream.by_ref() {
            manual.push(a);
        }
        assert!(stream.is_exhausted());
        assert_eq!(outcome.answers.len(), manual.len());
        for (a, b) in outcome.answers.iter().zip(&manual) {
            assert_eq!(a.tree.signature(), b.tree.signature());
            assert_eq!(a.rank, b.rank);
        }
        assert_eq!(outcome.stats.nodes_explored, stream.stats().nodes_explored);
    }
}
