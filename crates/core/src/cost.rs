//! A priori query cost estimation for admission scheduling.
//!
//! The BANKS paper targets *interactive* keyword search: the user is waiting,
//! and a two-keyword author query should never sit behind a four-keyword
//! citation trawl that happens to have been submitted first.  A serving tier
//! that wants shortest-expected-work-first scheduling therefore needs a cost
//! estimate **before** any engine runs — after execution the true cost is
//! known ([`crate::SearchStats::nodes_explored`]), but by then the queueing
//! decision is history.
//!
//! [`QueryCost::estimate`] predicts the work of a query from exactly the
//! information available at admission time:
//!
//! * the **resolved origin sets** (`S_i`) — frequent keywords seed wide
//!   frontiers; the paper's own evaluation (Section 5.6) classifies queries
//!   by origin size for the same reason,
//! * the **search parameters** — `top_k` scales how long the engine keeps
//!   expanding, and the explicit work caps (`max_explored`,
//!   `answer_work_budget`) bound the worst case outright,
//! * the **engine** — the multi-iterator Backward search explores a
//!   multiple of what Bidirectional explores on the same query (Figures 5
//!   and 6 of the paper measure precisely this ratio).
//!
//! The estimate is measured in *expected nodes explored*, the same unit as
//! [`crate::SearchStats::nodes_explored`] and
//! [`crate::SearchParams::answer_work_budget`], so schedulers can mix
//! estimates, budgets and measurements freely.  It is deterministic (pure
//! integer arithmetic over the inputs) — two identical submissions always
//! produce the same estimate, which keeps scheduler tests and replayed
//! workloads reproducible.

use banks_textindex::KeywordMatches;

use crate::params::SearchParams;

/// Per-answer expansion factor assumed when no tighter bound is available:
/// each requested answer is expected to cost about this many node
/// explorations beyond the initial frontier.
const WORK_PER_ANSWER: u64 = 16;

/// An a priori estimate of the work a query will perform, computed at
/// admission time from the resolved keyword matches, the search parameters
/// and the engine choice.
///
/// ```
/// use banks_core::{QueryCost, SearchParams};
/// use banks_graph::NodeId;
/// use banks_textindex::KeywordMatches;
///
/// let narrow = KeywordMatches::from_sets(vec![("gray", vec![NodeId(0)])]);
/// let wide = KeywordMatches::from_sets(vec![(
///     "database",
///     (0..500).map(NodeId).collect(),
/// )]);
/// let params = SearchParams::default();
/// let cheap = QueryCost::estimate(&narrow, &params, "bidirectional");
/// let dear = QueryCost::estimate(&wide, &params, "bidirectional");
/// assert!(cheap.estimated_work < dear.estimated_work);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryCost {
    /// Total size of the origin sets (`Σ |S_i|`), the seed frontier the
    /// engine starts from.  At least 1 even for queries matching nothing, so
    /// downstream ratios never divide by zero.
    pub origin_nodes: u64,
    /// Expected nodes explored, in the same unit as
    /// [`crate::SearchStats::nodes_explored`].  Always at least 1.
    pub estimated_work: u64,
}

impl QueryCost {
    /// Estimates the cost of running `matches` under `params` on the engine
    /// registered as `engine` (a [`crate::EngineRegistry`] name; unknown
    /// names are treated like the mid-cost single-iterator backward search).
    ///
    /// The model, in order:
    ///
    /// 1. `origin = Σ |S_i|` (clamped to ≥ 1) — the seed frontier.
    /// 2. `work = origin × (1 + top_k × 16)` — expansion grows with the
    ///    number of answers the engine must keep producing.
    /// 3. Multiply by the engine factor: ×1 for `bidirectional` (and its
    ///    ablations), ×2 for `si-backward`, ×4 for `mi-backward` — the
    ///    coarse shape of the paper's measured exploration ratios.  The
    ///    `scatter-gather` variants price like their base engine: sharding
    ///    moves the same exploration onto more cores, it does not shrink
    ///    it.
    /// 4. Clamp to the explicit caps when present: `max_explored`, and
    ///    `origin + top_k × answer_work_budget` (the budget bounds the work
    ///    *between* emissions, so `top_k` budgets plus the seed frontier
    ///    bound the whole run).
    pub fn estimate(matches: &KeywordMatches, params: &SearchParams, engine: &str) -> Self {
        let origin_nodes = matches
            .origin_sizes()
            .iter()
            .map(|&s| s as u64)
            .sum::<u64>()
            .max(1);
        let answers = params.top_k as u64;
        let mut work = origin_nodes.saturating_mul(1 + answers.saturating_mul(WORK_PER_ANSWER));
        work = work.saturating_mul(engine_factor(engine));
        if let Some(cap) = params.max_explored {
            work = work.min((cap as u64).max(1));
        }
        if let Some(budget) = params.answer_work_budget {
            let budgeted = origin_nodes.saturating_add(answers.saturating_mul(budget as u64));
            work = work.min(budgeted.max(1));
        }
        QueryCost {
            origin_nodes,
            estimated_work: work.max(1),
        }
    }
}

/// Relative exploration cost of the registered engines, normalised to
/// Bidirectional = 1.  Matches the coarse shape of the paper's Figure 6
/// ratios (MI-Backward ≫ SI-Backward > Bidirectional).
fn engine_factor(engine: &str) -> u64 {
    // The registry's own canonicalisation, so pricing accepts exactly the
    // spellings the registry resolves.
    let canonical = crate::registry::normalize(engine);
    match canonical.as_str() {
        "bidirectional" | "bidir" | "bidirectional-no-activation" | "sg-bidirectional" => 1,
        "si-backward" | "si" | "backward-activation" | "sg-si-backward" => 2,
        "mi-backward" | "mi" | "backward" | "scatter-gather" | "sg" | "sg-mi-backward" => 4,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::NodeId;

    fn matches(sizes: &[usize]) -> KeywordMatches {
        KeywordMatches::from_sets(sizes.iter().enumerate().map(|(i, &n)| {
            (
                format!("k{i}"),
                (0..n).map(|j| NodeId((i * 10_000 + j) as u32)).collect(),
            )
        }))
    }

    #[test]
    fn monotone_in_origin_sizes_and_top_k() {
        let params = SearchParams::default();
        let small = QueryCost::estimate(&matches(&[2, 3]), &params, "bidirectional");
        let large = QueryCost::estimate(&matches(&[200, 300]), &params, "bidirectional");
        assert_eq!(small.origin_nodes, 5);
        assert_eq!(large.origin_nodes, 500);
        assert!(small.estimated_work < large.estimated_work);

        let k1 = QueryCost::estimate(&matches(&[10]), &SearchParams::with_top_k(1), "bidir");
        let k50 = QueryCost::estimate(&matches(&[10]), &SearchParams::with_top_k(50), "bidir");
        assert!(k1.estimated_work < k50.estimated_work);
    }

    #[test]
    fn engine_ordering_matches_the_paper() {
        let params = SearchParams::default();
        let m = matches(&[20, 20]);
        let bidir = QueryCost::estimate(&m, &params, "bidirectional").estimated_work;
        let si = QueryCost::estimate(&m, &params, "si-backward").estimated_work;
        let mi = QueryCost::estimate(&m, &params, "mi-backward").estimated_work;
        assert!(bidir < si && si < mi, "{bidir} {si} {mi}");
        // aliases resolve like the registry
        assert_eq!(
            QueryCost::estimate(&m, &params, "MI_Backward").estimated_work,
            mi
        );
        // unknown engines price like the middle of the range
        assert_eq!(
            QueryCost::estimate(&m, &params, "quantum").estimated_work,
            si
        );
        // scatter-gather variants price like their base engine
        assert_eq!(
            QueryCost::estimate(&m, &params, "scatter-gather").estimated_work,
            mi
        );
        assert_eq!(
            QueryCost::estimate(&m, &params, "sg-bidirectional").estimated_work,
            bidir
        );
        assert_eq!(
            QueryCost::estimate(&m, &params, "sg-si-backward").estimated_work,
            si
        );
    }

    #[test]
    fn explicit_caps_bound_the_estimate() {
        let m = matches(&[1000, 1000]);
        let capped = QueryCost::estimate(
            &m,
            &SearchParams::default().max_explored(777),
            "mi-backward",
        );
        assert_eq!(capped.estimated_work, 777);

        let budgeted = QueryCost::estimate(
            &m,
            &SearchParams::with_top_k(10).answer_work_budget(5),
            "mi-backward",
        );
        // origin (2000) + top_k * budget (50)
        assert_eq!(budgeted.estimated_work, 2050);
    }

    #[test]
    fn degenerate_queries_cost_at_least_one_unit() {
        let empty = KeywordMatches::from_sets(Vec::<(String, Vec<NodeId>)>::new());
        let cost = QueryCost::estimate(&empty, &SearchParams::with_top_k(0), "bidirectional");
        assert_eq!(cost.origin_nodes, 1);
        assert!(cost.estimated_work >= 1);
        let zero_cap = QueryCost::estimate(
            &matches(&[5]),
            &SearchParams::default().max_explored(0),
            "bidirectional",
        );
        assert!(zero_cap.estimated_work >= 1);
    }

    #[test]
    fn estimates_are_deterministic() {
        let m = matches(&[17, 3]);
        let p = SearchParams::with_top_k(7).answer_work_budget(100);
        assert_eq!(
            QueryCost::estimate(&m, &p, "si-backward"),
            QueryCost::estimate(&m, &p, "si-backward")
        );
    }
}
