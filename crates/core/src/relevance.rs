//! Relevance judgments and recall/precision measurement (Section 5.7 of the
//! paper).
//!
//! The paper derives the set of relevant answers for its generated workloads
//! by executing SQL queries over the planted join networks; our workload
//! generator does the same by construction.  A ground truth is a collection
//! of *relevant node sets*; an output answer is judged relevant if it covers
//! one of them (it contains every node of the set).

use std::collections::BTreeSet;

use banks_graph::NodeId;

use crate::engine::SearchOutcome;

/// The set of relevant answers for a query.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroundTruth {
    relevant: Vec<BTreeSet<NodeId>>,
}

/// Recall/precision figures for one query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecallPrecision {
    /// Fraction of relevant answers found (0..=1); 1.0 when there are no
    /// relevant answers.
    pub recall: f64,
    /// Fraction of output answers that are relevant (0..=1); 1.0 when there
    /// are no output answers.
    pub precision: f64,
    /// Precision measured only over the prefix of the output that ends at
    /// the last relevant answer found ("precision at full recall").
    pub precision_at_full_recall: f64,
    /// Number of relevant answers found.
    pub relevant_found: usize,
    /// Number of relevant answers in the ground truth.
    pub relevant_total: usize,
    /// Rank (1-based) of the last relevant answer in the output, if any.
    pub last_relevant_rank: Option<usize>,
}

impl GroundTruth {
    /// Creates an empty ground truth (no relevant answers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a ground truth from relevant node sets.
    pub fn from_sets<I, S>(sets: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: IntoIterator<Item = NodeId>,
    {
        GroundTruth {
            relevant: sets.into_iter().map(|s| s.into_iter().collect()).collect(),
        }
    }

    /// Adds one relevant node set.
    pub fn add(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        self.relevant.push(nodes.into_iter().collect());
    }

    /// Number of relevant answers.
    pub fn len(&self) -> usize {
        self.relevant.len()
    }

    /// True when there are no relevant answers.
    pub fn is_empty(&self) -> bool {
        self.relevant.is_empty()
    }

    /// The relevant node sets.
    pub fn sets(&self) -> &[BTreeSet<NodeId>] {
        &self.relevant
    }

    /// True if the answer node set covers (is a superset of) some relevant
    /// set.
    pub fn is_relevant(&self, answer_nodes: &[NodeId]) -> bool {
        self.matching_set(answer_nodes).is_some()
    }

    /// Index of the relevant set the answer covers, if any.
    pub fn matching_set(&self, answer_nodes: &[NodeId]) -> Option<usize> {
        let answer: BTreeSet<NodeId> = answer_nodes.iter().copied().collect();
        self.relevant.iter().position(|set| set.is_subset(&answer))
    }

    /// Evaluates a search outcome against this ground truth.
    ///
    /// Every relevant set is counted at most once (the first output answer
    /// covering it claims it), so repeatedly reporting the same relevant
    /// answer does not inflate recall.
    pub fn evaluate(&self, outcome: &SearchOutcome) -> RecallPrecision {
        let mut claimed = vec![false; self.relevant.len()];
        let mut relevant_found = 0usize;
        let mut relevant_ranks: Vec<usize> = Vec::new();
        let mut relevant_flags: Vec<bool> = Vec::with_capacity(outcome.answers.len());
        for (rank, answer) in outcome.answers.iter().enumerate() {
            let nodes = answer.tree.nodes();
            let answer_set: BTreeSet<NodeId> = nodes.iter().copied().collect();
            let hit = self
                .relevant
                .iter()
                .enumerate()
                .find(|(i, set)| !claimed[*i] && set.is_subset(&answer_set))
                .map(|(i, _)| i);
            match hit {
                Some(i) => {
                    claimed[i] = true;
                    relevant_found += 1;
                    relevant_ranks.push(rank + 1);
                    relevant_flags.push(true);
                }
                None => relevant_flags.push(false),
            }
        }

        let recall = if self.relevant.is_empty() {
            1.0
        } else {
            relevant_found as f64 / self.relevant.len() as f64
        };
        let precision = if outcome.answers.is_empty() {
            1.0
        } else {
            relevant_found as f64 / outcome.answers.len() as f64
        };
        let last_relevant_rank = relevant_ranks.last().copied();
        let precision_at_full_recall = match last_relevant_rank {
            None => {
                if self.relevant.is_empty() {
                    1.0
                } else {
                    0.0
                }
            }
            Some(rank) => relevant_found as f64 / rank as f64,
        };

        RecallPrecision {
            recall,
            precision,
            precision_at_full_recall,
            relevant_found,
            relevant_total: self.relevant.len(),
            last_relevant_rank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::AnswerTree;
    use crate::engine::RankedAnswer;
    use crate::score::ScoreModel;
    use crate::stats::{AnswerTiming, SearchStats};
    use banks_graph::builder::graph_from_edges;
    use banks_prestige::PrestigeVector;
    use std::time::Duration;

    fn make_outcome(trees: Vec<AnswerTree>) -> SearchOutcome {
        let timing = AnswerTiming {
            generated_at: Duration::ZERO,
            output_at: Duration::ZERO,
            explored_at_generation: 0,
            explored_at_output: 0,
        };
        SearchOutcome {
            answers: trees
                .into_iter()
                .enumerate()
                .map(|(rank, tree)| RankedAnswer { rank, tree, timing })
                .collect(),
            stats: SearchStats::default(),
        }
    }

    fn tree(g: &banks_graph::DataGraph, root: u32, paths: Vec<Vec<u32>>) -> AnswerTree {
        let p = PrestigeVector::uniform_for(g);
        AnswerTree::new(
            NodeId(root),
            paths
                .into_iter()
                .map(|path| path.into_iter().map(NodeId).collect())
                .collect(),
            g,
            &p,
            &ScoreModel::paper_default(),
        )
    }

    #[test]
    fn relevance_by_superset() {
        let gt = GroundTruth::from_sets(vec![vec![NodeId(0), NodeId(1)]]);
        assert!(gt.is_relevant(&[NodeId(0), NodeId(1), NodeId(5)]));
        assert!(!gt.is_relevant(&[NodeId(0), NodeId(5)]));
        assert_eq!(gt.matching_set(&[NodeId(0), NodeId(1)]), Some(0));
        assert_eq!(gt.len(), 1);
        assert!(!gt.is_empty());
    }

    #[test]
    fn evaluate_counts_each_relevant_set_once() {
        let g = graph_from_edges(4, &[(2, 0), (2, 1), (3, 0), (3, 1)]);
        let gt = GroundTruth::from_sets(vec![
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![NodeId(0), NodeId(1), NodeId(3)],
        ]);
        let t_first = tree(&g, 2, vec![vec![2, 0], vec![2, 1]]);
        let t_dup = tree(&g, 2, vec![vec![2, 0], vec![2, 1]]);
        let t_second = tree(&g, 3, vec![vec![3, 0], vec![3, 1]]);
        let outcome = make_outcome(vec![t_first, t_dup, t_second]);
        let rp = gt.evaluate(&outcome);
        assert_eq!(rp.relevant_found, 2);
        assert_eq!(rp.relevant_total, 2);
        assert!((rp.recall - 1.0).abs() < 1e-12);
        assert!((rp.precision - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rp.last_relevant_rank, Some(3));
        assert!((rp.precision_at_full_recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_with_no_relevant_answers_found() {
        let g = graph_from_edges(4, &[(2, 0), (2, 1), (3, 0), (3, 1)]);
        let gt = GroundTruth::from_sets(vec![vec![NodeId(0), NodeId(3)]]);
        let outcome = make_outcome(vec![tree(&g, 2, vec![vec![2, 0], vec![2, 1]])]);
        let rp = gt.evaluate(&outcome);
        assert_eq!(rp.relevant_found, 0);
        assert_eq!(rp.recall, 0.0);
        assert_eq!(rp.precision, 0.0);
        assert_eq!(rp.precision_at_full_recall, 0.0);
        assert_eq!(rp.last_relevant_rank, None);
    }

    #[test]
    fn empty_ground_truth_is_trivially_satisfied() {
        let gt = GroundTruth::new();
        let outcome = make_outcome(vec![]);
        let rp = gt.evaluate(&outcome);
        assert_eq!(rp.recall, 1.0);
        assert_eq!(rp.precision, 1.0);
        assert_eq!(rp.precision_at_full_recall, 1.0);
    }

    #[test]
    fn add_extends_ground_truth() {
        let mut gt = GroundTruth::new();
        gt.add(vec![NodeId(1)]);
        gt.add(vec![NodeId(2), NodeId(3)]);
        assert_eq!(gt.len(), 2);
        assert_eq!(gt.sets()[1].len(), 2);
    }
}
