//! Cooperative cancellation of running searches.
//!
//! Before cancellation tokens, the only way to abort a search early was to
//! drop the [`crate::AnswerStream`] from the thread consuming it — useless
//! for a serving tier where the consuming thread is a worker blocked inside
//! the expansion loop.  A [`CancelToken`] decouples the two: the caller
//! keeps a clone, the engine carries another inside its
//! [`crate::QueryContext`], and the stream driver checks the token before
//! every expansion step, so a cancelled search stops within one
//! `advance()` step without the worker thread being torn down.
//!
//! Cancellation is *not* exhaustion: a cancelled stream stops emitting
//! ([`Iterator::next`] returns `None`) and marks
//! [`crate::SearchStats::cancelled`], but
//! [`crate::AnswerStream::is_exhausted`] stays `false` — the engine never
//! proved there were no further answers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable, thread-safe cancellation flag.
///
/// All clones share one flag: cancelling any clone cancels them all.
///
/// ```
/// use banks_core::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation.  Idempotent; there is no way to un-cancel.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested (on this or any clone).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        assert!(!b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
        // idempotent
        a.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn independent_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled());
    }

    #[test]
    fn token_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        let handle = std::thread::spawn(move || {
            remote.cancel();
        });
        handle.join().expect("thread");
        assert!(token.is_cancelled());
    }
}
