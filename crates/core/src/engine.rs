//! The common engine interface shared by all three search algorithms.
//!
//! Engines are *streaming*: the primitive operation is
//! [`SearchEngine::start`], which returns a lazily evaluated
//! [`AnswerStream`].  The batch entry point [`SearchEngine::search`] is a
//! default method that drains the stream, so existing batch callers keep
//! working unchanged while streaming callers gain early termination and
//! live statistics.

use std::time::Duration;

use banks_graph::DataGraph;
use banks_prestige::PrestigeVector;
use banks_textindex::KeywordMatches;

use crate::answer::AnswerTree;
use crate::params::SearchParams;
use crate::stats::{AnswerTiming, SearchStats};
use crate::stream::{drain, AnswerStream, QueryContext};

/// An answer together with its emission timing.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedAnswer {
    /// Rank in output order (0-based).
    pub rank: usize,
    /// The answer tree.
    pub tree: AnswerTree,
    /// When/at what cost the answer was generated and output.
    pub timing: AnswerTiming,
}

/// The result of one search run: the answers in output order plus the
/// instrumentation counters.
#[derive(Clone, Debug, Default)]
pub struct SearchOutcome {
    /// Output answers in emission order (best effort score order, subject to
    /// the emission policy).
    pub answers: Vec<RankedAnswer>,
    /// Aggregate work counters.
    pub stats: SearchStats,
}

impl SearchOutcome {
    /// The answer trees only, in output order.
    pub fn trees(&self) -> Vec<&AnswerTree> {
        self.answers.iter().map(|a| &a.tree).collect()
    }

    /// Signatures (distinct node sets) of the output answers, useful for
    /// comparing the answer sets of different algorithms.
    pub fn signatures(&self) -> Vec<Vec<banks_graph::NodeId>> {
        self.answers.iter().map(|a| a.tree.signature()).collect()
    }

    /// Timings of the output answers.
    pub fn timings(&self) -> Vec<AnswerTiming> {
        self.answers.iter().map(|a| a.timing).collect()
    }

    /// The best (highest) score among output answers.
    pub fn best_score(&self) -> Option<f64> {
        self.answers
            .iter()
            .map(|a| a.tree.score)
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }

    /// Wall-clock time from the start of the search until the first answer
    /// was output (the paper's Figure 5/6 time-to-first-answer metric).
    /// `None` when the search produced no answers.
    pub fn time_to_first_answer(&self) -> Option<Duration> {
        self.time_to_kth_answer(1)
    }

    /// Wall-clock time until the `k`-th answer (1-based) was output.
    /// `None` when fewer than `k` answers were produced or `k == 0`.
    pub fn time_to_kth_answer(&self, k: usize) -> Option<Duration> {
        if k == 0 {
            return None;
        }
        self.answers.get(k - 1).map(|a| a.timing.output_at)
    }
}

/// A keyword-search engine over a data graph.
///
/// Implementors provide [`SearchEngine::start`], a resumable step machine
/// behind an [`AnswerStream`]; the batch [`SearchEngine::search`] falls out
/// as "drain the stream" and needs no separate implementation.
pub trait SearchEngine {
    /// Short name used in benchmark tables ("Bidirectional", "SI-Backward",
    /// "MI-Backward").
    fn name(&self) -> &'static str;

    /// Starts a search and returns the lazy answer stream driving it.
    ///
    /// Each [`Iterator::next`] call on the stream advances expansion only
    /// until the next answer clears the emission policy, so callers can
    /// stop early (`take(1)`, drop) without paying for the full search.
    fn start<'a>(&self, ctx: QueryContext<'a>) -> Box<dyn AnswerStream + 'a>;

    /// Runs the search to completion and returns the top answers plus
    /// statistics (the legacy batch entry point, kept so existing callers
    /// migrate mechanically).
    fn search(
        &self,
        graph: &DataGraph,
        prestige: &PrestigeVector,
        matches: &KeywordMatches,
        params: &SearchParams,
    ) -> SearchOutcome {
        drain(self.start(QueryContext::new(graph, prestige, matches, *params)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::ScoreModel;
    use banks_graph::NodeId;
    use banks_prestige::PrestigeVector;
    use std::time::Duration;

    fn dummy_outcome() -> SearchOutcome {
        let g = banks_graph::builder::graph_from_edges(3, &[(2, 0), (2, 1)]);
        let p = PrestigeVector::uniform_for(&g);
        let model = ScoreModel::paper_default();
        let tree = AnswerTree::new(
            NodeId(2),
            vec![vec![NodeId(2), NodeId(0)], vec![NodeId(2), NodeId(1)]],
            &g,
            &p,
            &model,
        );
        let timing = AnswerTiming {
            generated_at: Duration::from_millis(1),
            output_at: Duration::from_millis(2),
            explored_at_generation: 3,
            explored_at_output: 4,
        };
        SearchOutcome {
            answers: vec![RankedAnswer {
                rank: 0,
                tree,
                timing,
            }],
            stats: SearchStats::default(),
        }
    }

    #[test]
    fn outcome_accessors() {
        let o = dummy_outcome();
        assert_eq!(o.trees().len(), 1);
        assert_eq!(o.signatures(), vec![vec![NodeId(0), NodeId(1), NodeId(2)]]);
        assert_eq!(o.timings().len(), 1);
        assert!(o.best_score().unwrap() > 0.0);
        let empty = SearchOutcome::default();
        assert!(empty.best_score().is_none());
    }

    #[test]
    fn time_to_answer_helpers() {
        let o = dummy_outcome();
        assert_eq!(o.time_to_first_answer(), Some(Duration::from_millis(2)));
        assert_eq!(o.time_to_kth_answer(1), Some(Duration::from_millis(2)));
        assert_eq!(o.time_to_kth_answer(2), None);
        assert_eq!(o.time_to_kth_answer(0), None);
        assert_eq!(SearchOutcome::default().time_to_first_answer(), None);
    }
}
