//! The common engine interface shared by all three search algorithms.

use banks_graph::DataGraph;
use banks_prestige::PrestigeVector;
use banks_textindex::KeywordMatches;

use crate::answer::AnswerTree;
use crate::params::SearchParams;
use crate::stats::{AnswerTiming, SearchStats};

/// An answer together with its emission timing.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedAnswer {
    /// Rank in output order (0-based).
    pub rank: usize,
    /// The answer tree.
    pub tree: AnswerTree,
    /// When/at what cost the answer was generated and output.
    pub timing: AnswerTiming,
}

/// The result of one search run: the answers in output order plus the
/// instrumentation counters.
#[derive(Clone, Debug, Default)]
pub struct SearchOutcome {
    /// Output answers in emission order (best effort score order, subject to
    /// the emission policy).
    pub answers: Vec<RankedAnswer>,
    /// Aggregate work counters.
    pub stats: SearchStats,
}

impl SearchOutcome {
    /// The answer trees only, in output order.
    pub fn trees(&self) -> Vec<&AnswerTree> {
        self.answers.iter().map(|a| &a.tree).collect()
    }

    /// Signatures (distinct node sets) of the output answers, useful for
    /// comparing the answer sets of different algorithms.
    pub fn signatures(&self) -> Vec<Vec<banks_graph::NodeId>> {
        self.answers.iter().map(|a| a.tree.signature()).collect()
    }

    /// Timings of the output answers.
    pub fn timings(&self) -> Vec<AnswerTiming> {
        self.answers.iter().map(|a| a.timing).collect()
    }

    /// The best (highest) score among output answers.
    pub fn best_score(&self) -> Option<f64> {
        self.answers.iter().map(|a| a.tree.score).fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }
}

/// A keyword-search engine over a data graph.
pub trait SearchEngine {
    /// Short name used in benchmark tables ("Bidirectional", "SI-Backward",
    /// "MI-Backward").
    fn name(&self) -> &'static str;

    /// Runs the search and returns the top answers plus statistics.
    fn search(
        &self,
        graph: &DataGraph,
        prestige: &PrestigeVector,
        matches: &KeywordMatches,
        params: &SearchParams,
    ) -> SearchOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::NodeId;
    use banks_prestige::PrestigeVector;
    use crate::score::ScoreModel;
    use std::time::Duration;

    fn dummy_outcome() -> SearchOutcome {
        let g = banks_graph::builder::graph_from_edges(3, &[(2, 0), (2, 1)]);
        let p = PrestigeVector::uniform_for(&g);
        let model = ScoreModel::paper_default();
        let tree = AnswerTree::new(
            NodeId(2),
            vec![vec![NodeId(2), NodeId(0)], vec![NodeId(2), NodeId(1)]],
            &g,
            &p,
            &model,
        );
        let timing = AnswerTiming {
            generated_at: Duration::from_millis(1),
            output_at: Duration::from_millis(2),
            explored_at_generation: 3,
            explored_at_output: 4,
        };
        SearchOutcome {
            answers: vec![RankedAnswer { rank: 0, tree, timing }],
            stats: SearchStats::default(),
        }
    }

    #[test]
    fn outcome_accessors() {
        let o = dummy_outcome();
        assert_eq!(o.trees().len(), 1);
        assert_eq!(o.signatures(), vec![vec![NodeId(0), NodeId(1), NodeId(2)]]);
        assert_eq!(o.timings().len(), 1);
        assert!(o.best_score().unwrap() > 0.0);
        let empty = SearchOutcome::default();
        assert!(empty.best_score().is_none());
    }
}
