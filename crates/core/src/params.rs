//! Search parameters shared by all engines.

use std::time::Duration;

use crate::score::EdgeScoreCombiner;

/// When buffered answers are released from the output heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmissionPolicy {
    /// NRA-style bound (Section 4.5): an answer is output only once its
    /// overall score (edge score combined with node prestige) is at least
    /// the upper bound achievable by any answer not yet generated.
    ExactBound,
    /// The paper's "looser heuristic": output as soon as the answer's tree
    /// edge score beats `h(m_1, ..., m_k)`, ignoring node prestige.  Faster
    /// output, may occasionally reorder answers.
    Heuristic,
    /// Output answers the moment they are generated.  Used to measure pure
    /// generation time and in tests that only care about the answer set.
    Immediate,
}

/// Tunable parameters of the search algorithms.  Defaults follow the paper
/// (Section 4.2 and 5.1): `dmax = 8`, `µ = 0.5`, `λ = 0.2`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchParams {
    /// Maximum depth (in edges) a node may be from the nearest keyword node
    /// before its expansion is cut off.  Ensures termination and keeps
    /// answers intuitive.
    pub dmax: usize,
    /// Activation attenuation factor: each node retains `1 - µ` of the
    /// activation it receives and spreads a fraction `µ` to its neighbours.
    pub mu: f64,
    /// Exponent balancing node prestige against edge score in the overall
    /// tree score `E · N^λ`.
    pub lambda: f64,
    /// Number of answers requested (the paper reports time to the last
    /// relevant or the tenth relevant answer).
    pub top_k: usize,
    /// How eagerly buffered answers are released.
    pub emission: EmissionPolicy,
    /// Mapping from the aggregate tree edge weight to a relevance factor.
    pub edge_score: EdgeScoreCombiner,
    /// Safety cap on the number of nodes an engine may explore (pop from its
    /// queues) before giving up.  `None` means unlimited.
    pub max_explored: Option<usize>,
    /// Safety cap on the number of answer trees generated (relevant for the
    /// multi-iterator Backward search whose cross-product of iterators can
    /// explode).  `None` means unlimited.
    pub max_generated: Option<usize>,
    /// Wall-clock budget for producing each answer when the search runs as
    /// an [`crate::AnswerStream`]: if the gap between consecutive emissions
    /// exceeds the deadline, the engine stops expanding, flushes whatever
    /// answers it already generated, and ends the stream (marking
    /// [`crate::SearchStats::truncated`]).  `None` means unlimited.
    pub answer_deadline: Option<Duration>,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            dmax: 8,
            mu: 0.5,
            lambda: 0.2,
            top_k: 10,
            emission: EmissionPolicy::ExactBound,
            edge_score: EdgeScoreCombiner::ReciprocalEdgeSum,
            max_explored: None,
            max_generated: None,
            answer_deadline: None,
        }
    }
}

impl SearchParams {
    /// Paper defaults with a different `top_k`.
    pub fn with_top_k(top_k: usize) -> Self {
        SearchParams {
            top_k,
            ..Default::default()
        }
    }

    /// Builder-style setter for `dmax`.
    pub fn dmax(mut self, dmax: usize) -> Self {
        self.dmax = dmax;
        self
    }

    /// Builder-style setter for `µ`.
    pub fn mu(mut self, mu: f64) -> Self {
        assert!((0.0..=1.0).contains(&mu), "µ must lie in [0, 1]");
        self.mu = mu;
        self
    }

    /// Builder-style setter for `λ`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        assert!(lambda >= 0.0, "λ must be non-negative");
        self.lambda = lambda;
        self
    }

    /// Builder-style setter for the emission policy.
    pub fn emission(mut self, emission: EmissionPolicy) -> Self {
        self.emission = emission;
        self
    }

    /// Builder-style setter for the explored-nodes cap.
    pub fn max_explored(mut self, cap: usize) -> Self {
        self.max_explored = Some(cap);
        self
    }

    /// Builder-style setter for the generated-answers cap.
    pub fn max_generated(mut self, cap: usize) -> Self {
        self.max_generated = Some(cap);
        self
    }

    /// Builder-style setter for the per-answer streaming deadline.
    pub fn answer_deadline(mut self, deadline: Duration) -> Self {
        self.answer_deadline = Some(deadline);
        self
    }

    /// The score model induced by these parameters.
    pub fn score_model(&self) -> crate::score::ScoreModel {
        crate::score::ScoreModel::new(self.edge_score, self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = SearchParams::default();
        assert_eq!(p.dmax, 8);
        assert_eq!(p.mu, 0.5);
        assert_eq!(p.lambda, 0.2);
        assert_eq!(p.top_k, 10);
        assert_eq!(p.emission, EmissionPolicy::ExactBound);
        assert_eq!(p.max_explored, None);
    }

    #[test]
    fn builder_setters() {
        let p = SearchParams::with_top_k(5)
            .dmax(4)
            .mu(0.7)
            .lambda(1.0)
            .emission(EmissionPolicy::Heuristic)
            .max_explored(1000)
            .max_generated(500)
            .answer_deadline(Duration::from_millis(250));
        assert_eq!(p.top_k, 5);
        assert_eq!(p.dmax, 4);
        assert_eq!(p.mu, 0.7);
        assert_eq!(p.lambda, 1.0);
        assert_eq!(p.emission, EmissionPolicy::Heuristic);
        assert_eq!(p.max_explored, Some(1000));
        assert_eq!(p.max_generated, Some(500));
        assert_eq!(p.answer_deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    #[should_panic(expected = "µ must lie in [0, 1]")]
    fn rejects_bad_mu() {
        let _ = SearchParams::default().mu(1.5);
    }

    #[test]
    #[should_panic(expected = "λ must be non-negative")]
    fn rejects_bad_lambda() {
        let _ = SearchParams::default().lambda(-0.1);
    }
}
