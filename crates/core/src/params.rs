//! Search parameters shared by all engines.

use crate::score::EdgeScoreCombiner;

/// When buffered answers are released from the output heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmissionPolicy {
    /// NRA-style bound (Section 4.5): an answer is output only once its
    /// overall score (edge score combined with node prestige) is at least
    /// the upper bound achievable by any answer not yet generated.
    ExactBound,
    /// The paper's "looser heuristic": output as soon as the answer's tree
    /// edge score beats `h(m_1, ..., m_k)`, ignoring node prestige.  Faster
    /// output, may occasionally reorder answers.
    Heuristic,
    /// Output answers the moment they are generated.  Used to measure pure
    /// generation time and in tests that only care about the answer set.
    Immediate,
}

/// Tunable parameters of the search algorithms.  Defaults follow the paper
/// (Section 4.2 and 5.1): `dmax = 8`, `µ = 0.5`, `λ = 0.2`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchParams {
    /// Maximum depth (in edges) a node may be from the nearest keyword node
    /// before its expansion is cut off.  Ensures termination and keeps
    /// answers intuitive.
    pub dmax: usize,
    /// Activation attenuation factor: each node retains `1 - µ` of the
    /// activation it receives and spreads a fraction `µ` to its neighbours.
    pub mu: f64,
    /// Exponent balancing node prestige against edge score in the overall
    /// tree score `E · N^λ`.
    pub lambda: f64,
    /// Number of answers requested (the paper reports time to the last
    /// relevant or the tenth relevant answer).
    pub top_k: usize,
    /// How eagerly buffered answers are released.
    pub emission: EmissionPolicy,
    /// Mapping from the aggregate tree edge weight to a relevance factor.
    pub edge_score: EdgeScoreCombiner,
    /// Safety cap on the number of nodes an engine may explore (pop from its
    /// queues) before giving up.  `None` means unlimited.
    pub max_explored: Option<usize>,
    /// Safety cap on the number of answer trees generated (relevant for the
    /// multi-iterator Backward search whose cross-product of iterators can
    /// explode).  `None` means unlimited.
    pub max_generated: Option<usize>,
    /// Work budget for producing each answer when the search runs as an
    /// [`crate::AnswerStream`]: if the engine explores more than this many
    /// nodes between consecutive emissions, it stops expanding, flushes
    /// whatever answers it already generated, and ends the stream (marking
    /// [`crate::SearchStats::truncated`]).  Unlike the wall-clock gap
    /// accounting it replaced, a work budget is deterministic: the search is
    /// cut at exactly the same node whether the machine is idle or saturated
    /// by concurrent queries.  `None` means unlimited.
    pub answer_work_budget: Option<usize>,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            dmax: 8,
            mu: 0.5,
            lambda: 0.2,
            top_k: 10,
            emission: EmissionPolicy::ExactBound,
            edge_score: EdgeScoreCombiner::ReciprocalEdgeSum,
            max_explored: None,
            max_generated: None,
            answer_work_budget: None,
        }
    }
}

impl SearchParams {
    /// Paper defaults with a different `top_k`.
    pub fn with_top_k(top_k: usize) -> Self {
        SearchParams {
            top_k,
            ..Default::default()
        }
    }

    /// Builder-style setter for `dmax`.
    pub fn dmax(mut self, dmax: usize) -> Self {
        self.dmax = dmax;
        self
    }

    /// Builder-style setter for `µ`.
    pub fn mu(mut self, mu: f64) -> Self {
        assert!((0.0..=1.0).contains(&mu), "µ must lie in [0, 1]");
        self.mu = mu;
        self
    }

    /// Builder-style setter for `λ`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        assert!(lambda >= 0.0, "λ must be non-negative");
        self.lambda = lambda;
        self
    }

    /// Builder-style setter for the emission policy.
    pub fn emission(mut self, emission: EmissionPolicy) -> Self {
        self.emission = emission;
        self
    }

    /// Builder-style setter for the explored-nodes cap.
    pub fn max_explored(mut self, cap: usize) -> Self {
        self.max_explored = Some(cap);
        self
    }

    /// Builder-style setter for the generated-answers cap.
    pub fn max_generated(mut self, cap: usize) -> Self {
        self.max_generated = Some(cap);
        self
    }

    /// Builder-style setter for the per-answer streaming work budget
    /// (nodes explored between emissions).
    pub fn answer_work_budget(mut self, budget: usize) -> Self {
        self.answer_work_budget = Some(budget);
        self
    }

    /// The score model induced by these parameters.
    pub fn score_model(&self) -> crate::score::ScoreModel {
        crate::score::ScoreModel::new(self.edge_score, self.lambda)
    }

    /// A stable 64-bit fingerprint of the full parameter set, used (together
    /// with the graph epoch and the normalized keywords) as a result-cache
    /// key.  Two parameter sets fingerprint equally iff every field —
    /// including the float-valued ones, compared bit-for-bit — is equal.
    ///
    /// The hash is FNV-1a over a canonical field encoding, so it does not
    /// depend on `std`'s per-process hasher seeds and is reproducible across
    /// runs.
    pub fn fingerprint(&self) -> u64 {
        let mut fnv = Fnv1a::new();
        fnv.write_u64(self.dmax as u64);
        fnv.write_u64(self.mu.to_bits());
        fnv.write_u64(self.lambda.to_bits());
        fnv.write_u64(self.top_k as u64);
        fnv.write_u64(match self.emission {
            EmissionPolicy::ExactBound => 0,
            EmissionPolicy::Heuristic => 1,
            EmissionPolicy::Immediate => 2,
        });
        match self.edge_score {
            EdgeScoreCombiner::ReciprocalEdgeSum => fnv.write_u64(0),
            EdgeScoreCombiner::ExponentialDecay { scale } => {
                fnv.write_u64(1);
                fnv.write_u64(scale.to_bits());
            }
        }
        fnv.write_opt_usize(self.max_explored);
        fnv.write_opt_usize(self.max_generated);
        fnv.write_opt_usize(self.answer_work_budget);
        fnv.finish()
    }
}

/// Minimal FNV-1a accumulator (no dependency on `std::hash`, whose default
/// hasher is seeded per process and therefore unsuitable for stable
/// fingerprints).
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    pub fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for byte in bytes {
            self.0 ^= *byte as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub fn write_opt_usize(&mut self, value: Option<usize>) {
        match value {
            None => self.write_u64(u64::MAX),
            Some(v) => {
                self.write_u64(1);
                self.write_u64(v as u64);
            }
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = SearchParams::default();
        assert_eq!(p.dmax, 8);
        assert_eq!(p.mu, 0.5);
        assert_eq!(p.lambda, 0.2);
        assert_eq!(p.top_k, 10);
        assert_eq!(p.emission, EmissionPolicy::ExactBound);
        assert_eq!(p.max_explored, None);
    }

    #[test]
    fn builder_setters() {
        let p = SearchParams::with_top_k(5)
            .dmax(4)
            .mu(0.7)
            .lambda(1.0)
            .emission(EmissionPolicy::Heuristic)
            .max_explored(1000)
            .max_generated(500)
            .answer_work_budget(250);
        assert_eq!(p.top_k, 5);
        assert_eq!(p.dmax, 4);
        assert_eq!(p.mu, 0.7);
        assert_eq!(p.lambda, 1.0);
        assert_eq!(p.emission, EmissionPolicy::Heuristic);
        assert_eq!(p.max_explored, Some(1000));
        assert_eq!(p.max_generated, Some(500));
        assert_eq!(p.answer_work_budget, Some(250));
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let base = SearchParams::default();
        assert_eq!(base.fingerprint(), SearchParams::default().fingerprint());
        // every field participates
        assert_ne!(base.fingerprint(), base.dmax(7).fingerprint());
        assert_ne!(base.fingerprint(), base.mu(0.25).fingerprint());
        assert_ne!(base.fingerprint(), base.lambda(0.3).fingerprint());
        assert_ne!(
            base.fingerprint(),
            SearchParams::with_top_k(11).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            base.emission(EmissionPolicy::Immediate).fingerprint()
        );
        assert_ne!(base.fingerprint(), base.max_explored(10).fingerprint());
        assert_ne!(base.fingerprint(), base.max_generated(10).fingerprint());
        assert_ne!(
            base.fingerprint(),
            base.answer_work_budget(10).fingerprint()
        );
        // None and Some(0) caps must not collide
        assert_ne!(
            base.max_explored(0).fingerprint(),
            base.fingerprint(),
            "Some(0) must differ from None"
        );
        let decay = SearchParams {
            edge_score: crate::score::EdgeScoreCombiner::ExponentialDecay { scale: 2.0 },
            ..SearchParams::default()
        };
        assert_ne!(base.fingerprint(), decay.fingerprint());
    }

    #[test]
    #[should_panic(expected = "µ must lie in [0, 1]")]
    fn rejects_bad_mu() {
        let _ = SearchParams::default().mu(1.5);
    }

    #[test]
    #[should_panic(expected = "λ must be non-negative")]
    fn rejects_bad_lambda() {
        let _ = SearchParams::default().lambda(-0.1);
    }
}
