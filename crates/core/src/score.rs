//! Answer-tree ranking (Section 2.3 of the paper).
//!
//! The paper scores an answer tree `T` for query terms `t_1 .. t_n` by
//!
//! * `s(T, t_i)` — the sum of edge weights on the path from the root of `T`
//!   to the leaf containing `t_i`,
//! * the aggregate edge score `E = Σ_i s(T, t_i)` (smaller is better),
//! * the tree node prestige `N` — the sum of the node prestiges of the leaf
//!   nodes and the answer root (larger is better),
//! * the overall tree score `E·N^λ` with `λ = 0.2` by default.
//!
//! Because `E` *decreases* with relevance while the overall score must
//! *increase* with relevance (answers with higher scores are output first),
//! the edge weight sum has to pass through a monotone decreasing map before
//! being multiplied with `N^λ` — exactly as in BANKS-I, which uses
//! `1/(1+E)`.  [`EdgeScoreCombiner`] makes that map explicit and pluggable;
//! the reciprocal map is the default used everywhere in the reproduction.

/// Monotone decreasing map from the aggregate tree edge weight `E` to a
/// relevance factor in `(0, 1]`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum EdgeScoreCombiner {
    /// `1 / (1 + E)` — the BANKS-I map; the default.
    #[default]
    ReciprocalEdgeSum,
    /// `exp(-E / scale)` — a steeper alternative used in ablations.
    ExponentialDecay {
        /// Scale of the exponential decay (larger = gentler).
        scale: f64,
    },
}

impl EdgeScoreCombiner {
    /// Maps the aggregate edge weight to a relevance factor.
    #[inline]
    pub fn relevance(&self, aggregate_edge_weight: f64) -> f64 {
        debug_assert!(aggregate_edge_weight >= 0.0);
        match self {
            EdgeScoreCombiner::ReciprocalEdgeSum => 1.0 / (1.0 + aggregate_edge_weight),
            EdgeScoreCombiner::ExponentialDecay { scale } => (-aggregate_edge_weight / scale).exp(),
        }
    }
}

/// The full scoring model: edge-score map plus the prestige exponent `λ`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoreModel {
    combiner: EdgeScoreCombiner,
    lambda: f64,
}

impl ScoreModel {
    /// Creates a score model.
    pub fn new(combiner: EdgeScoreCombiner, lambda: f64) -> Self {
        assert!(lambda >= 0.0, "λ must be non-negative");
        ScoreModel { combiner, lambda }
    }

    /// The paper's defaults: reciprocal edge map, `λ = 0.2`.
    pub fn paper_default() -> Self {
        ScoreModel::new(EdgeScoreCombiner::ReciprocalEdgeSum, 0.2)
    }

    /// The prestige exponent.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The edge-score map.
    pub fn combiner(&self) -> EdgeScoreCombiner {
        self.combiner
    }

    /// Overall tree score from the aggregate edge weight `E = Σ_i s(T, t_i)`
    /// and tree node prestige `N`.
    #[inline]
    pub fn tree_score(&self, aggregate_edge_weight: f64, node_prestige: f64) -> f64 {
        debug_assert!(node_prestige >= 0.0);
        self.combiner.relevance(aggregate_edge_weight) * node_prestige.powf(self.lambda)
    }

    /// Upper bound on the overall score of any answer whose aggregate edge
    /// weight is at least `min_aggregate_edge_weight`, given the largest node
    /// prestige in the graph and the number of keywords (the tree node
    /// prestige of an `n`-keyword answer involves at most `n + 1` distinct
    /// nodes: the root and one leaf per keyword).
    #[inline]
    pub fn score_upper_bound(
        &self,
        min_aggregate_edge_weight: f64,
        max_node_prestige: f64,
        num_keywords: usize,
    ) -> f64 {
        let max_n = max_node_prestige * (num_keywords as f64 + 1.0);
        self.tree_score(min_aggregate_edge_weight, max_n)
    }
}

impl Default for ScoreModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocal_map_is_monotone_decreasing() {
        let c = EdgeScoreCombiner::ReciprocalEdgeSum;
        assert_eq!(c.relevance(0.0), 1.0);
        assert!(c.relevance(1.0) > c.relevance(2.0));
        assert!(c.relevance(2.0) > c.relevance(10.0));
        assert!(c.relevance(10.0) > 0.0);
    }

    #[test]
    fn exponential_map_is_monotone_decreasing() {
        let c = EdgeScoreCombiner::ExponentialDecay { scale: 2.0 };
        assert!((c.relevance(0.0) - 1.0).abs() < 1e-12);
        assert!(c.relevance(1.0) > c.relevance(3.0));
    }

    #[test]
    fn tree_score_prefers_short_trees_and_high_prestige() {
        let m = ScoreModel::paper_default();
        // shorter tree wins at equal prestige
        assert!(m.tree_score(2.0, 1.0) > m.tree_score(4.0, 1.0));
        // higher prestige wins at equal length
        assert!(m.tree_score(2.0, 2.0) > m.tree_score(2.0, 1.0));
        assert_eq!(m.lambda(), 0.2);
        assert_eq!(m.combiner(), EdgeScoreCombiner::ReciprocalEdgeSum);
    }

    #[test]
    fn lambda_zero_ignores_prestige() {
        let m = ScoreModel::new(EdgeScoreCombiner::ReciprocalEdgeSum, 0.0);
        assert_eq!(m.tree_score(3.0, 0.5), m.tree_score(3.0, 100.0));
    }

    #[test]
    fn upper_bound_dominates_any_consistent_answer() {
        let m = ScoreModel::paper_default();
        let max_prestige = 0.3;
        let n = 3;
        let bound = m.score_upper_bound(4.0, max_prestige, n);
        // any answer with aggregate edge weight >= 4 and <= n+1 leaves of
        // prestige <= max_prestige must score below the bound
        for e in [4.0, 4.5, 6.0, 10.0] {
            for leaves in 1..=n + 1 {
                let score = m.tree_score(e, max_prestige * leaves as f64);
                assert!(
                    score <= bound + 1e-12,
                    "score {score} exceeds bound {bound}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_lambda() {
        let _ = ScoreModel::new(EdgeScoreCombiner::ReciprocalEdgeSum, -1.0);
    }
}
