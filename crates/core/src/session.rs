//! The query facade: [`Banks`] and [`QuerySession`].
//!
//! The legacy entry point took four positional arguments —
//! `search(graph, prestige, matches, params)` — and pushed keyword
//! resolution, prestige selection and parameter assembly onto every caller.
//! The facade owns those concerns:
//!
//! ```
//! use banks_core::Banks;
//! use banks_graph::builder::graph_from_edges;
//!
//! let graph = graph_from_edges(3, &[(2, 0), (2, 1)]);
//! let banks = Banks::open(&graph);
//! let outcome = banks.query(["v0", "v1"]).top_k(10).run();
//! # let _ = outcome;
//! ```
//!
//! `Banks::open` borrows the graph; node prestige defaults to uniform and
//! the keyword index is built lazily from node labels and kind names unless
//! supplied with [`Banks::with_prestige`] / [`Banks::with_index`].  Engines
//! are selected by registry name ([`QuerySession::engine`]), and each
//! session can either [`QuerySession::run`] to completion or stream
//! answers lazily via [`QuerySession::stream`].

use std::sync::OnceLock;
use std::time::Duration;

use banks_graph::{DataGraph, KindId};
use banks_prestige::PrestigeVector;
use banks_textindex::{IndexBuilder, InvertedIndex, KeywordMatches, Query};

use crate::engine::{SearchEngine, SearchOutcome};
use crate::params::{EmissionPolicy, SearchParams};
use crate::registry::EngineRegistry;
use crate::stream::{drain, AnswerStream, QueryContext};

/// A search handle over one graph: prestige, keyword index and engine
/// registry in one place.
pub struct Banks<'g> {
    graph: &'g DataGraph,
    prestige: Option<PrestigeVector>,
    index: Option<InvertedIndex>,
    registry: EngineRegistry,
    default_engine: String,
    uniform_prestige: OnceLock<PrestigeVector>,
    label_index: OnceLock<InvertedIndex>,
}

impl<'g> Banks<'g> {
    /// Opens a graph for querying with uniform prestige, a lazily built
    /// label index, and the default engine registry.
    pub fn open(graph: &'g DataGraph) -> Self {
        Banks {
            graph,
            prestige: None,
            index: None,
            registry: EngineRegistry::with_default_engines(),
            default_engine: "bidirectional".to_string(),
            uniform_prestige: OnceLock::new(),
            label_index: OnceLock::new(),
        }
    }

    /// Uses a precomputed prestige vector (e.g. biased PageRank) instead of
    /// the uniform default.
    pub fn with_prestige(mut self, prestige: PrestigeVector) -> Self {
        self.prestige = Some(prestige);
        self
    }

    /// Uses a prebuilt keyword index instead of the lazily built label
    /// index (datasets extracted from relational databases carry one).
    pub fn with_index(mut self, index: InvertedIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// Sets the default engine for sessions created from this handle.
    ///
    /// # Panics
    /// Panics when the name resolves to no registered engine.
    pub fn with_engine(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(
            self.registry.contains(&name),
            "unknown engine {name:?}; registered: {:?}",
            self.registry.names()
        );
        self.default_engine = name;
        self
    }

    /// Registers a custom engine factory on this handle's registry.
    pub fn register_engine(&mut self, name: &'static str, factory: crate::registry::EngineFactory) {
        self.registry.register(name, factory);
    }

    /// The engine names this handle can instantiate.
    pub fn engine_names(&self) -> Vec<&'static str> {
        self.registry.names()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g DataGraph {
        self.graph
    }

    /// The prestige vector queries will use.
    pub fn prestige(&self) -> &PrestigeVector {
        match &self.prestige {
            Some(p) => p,
            None => self
                .uniform_prestige
                .get_or_init(|| PrestigeVector::uniform_for(self.graph)),
        }
    }

    /// The keyword index queries will resolve against.  When none was
    /// supplied, one is built (once) from every node's label plus the
    /// node-kind names, so relation names like `"writes"` are searchable
    /// exactly as in the paper's DBLP examples.
    pub fn index(&self) -> &InvertedIndex {
        match &self.index {
            Some(index) => index,
            None => self.label_index.get_or_init(|| {
                let mut builder = IndexBuilder::with_default_tokenizer();
                for node in self.graph.nodes() {
                    builder.add_text(node, self.graph.node_label(node));
                }
                for kind in 0..self.graph.num_kinds() {
                    let kind = KindId(kind as u16);
                    builder.add_relation_name(self.graph.kind_name(kind), kind);
                }
                builder.build()
            }),
        }
    }

    /// Starts a query from individual keywords.
    pub fn query<I, S>(&self, keywords: I) -> QuerySession<'_, 'g>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.query_parsed(&Query::from_keywords(keywords))
    }

    /// Starts a query from a raw string, honouring quoted phrases
    /// (`"\"C. Mohan\" Rothermel"`).
    pub fn query_str(&self, raw: &str) -> QuerySession<'_, 'g> {
        self.query_parsed(&Query::parse(raw))
    }

    /// Starts a query from an already-parsed [`Query`].
    pub fn query_parsed(&self, query: &Query) -> QuerySession<'_, 'g> {
        let matches = KeywordMatches::resolve(self.graph, self.index(), query);
        self.query_matches(matches)
    }

    /// Starts a query from pre-resolved origin sets (hand-built sets in
    /// tests, or match sources other than the text index).
    pub fn query_matches(&self, matches: KeywordMatches) -> QuerySession<'_, 'g> {
        QuerySession {
            banks: self,
            matches,
            params: SearchParams::default(),
            engine: self.default_engine.clone(),
        }
    }
}

/// One prepared query: resolved keyword matches plus parameters, ready to
/// run in batch or as a stream (both can be called repeatedly).
pub struct QuerySession<'b, 'g> {
    banks: &'b Banks<'g>,
    matches: KeywordMatches,
    params: SearchParams,
    engine: String,
}

impl<'b, 'g> QuerySession<'b, 'g> {
    /// Selects the engine by registry name (`"bidirectional"`,
    /// `"si-backward"`, `"mi-backward"`, ...).
    ///
    /// # Panics
    /// Panics when the name resolves to no registered engine.
    pub fn engine(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(
            self.banks.registry.contains(&name),
            "unknown engine {name:?}; registered: {:?}",
            self.banks.registry.names()
        );
        self.engine = name;
        self
    }

    /// Number of answers requested.
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.params.top_k = top_k;
        self
    }

    /// Depth cutoff `dmax`.
    pub fn dmax(mut self, dmax: usize) -> Self {
        self.params = self.params.dmax(dmax);
        self
    }

    /// Activation attenuation `µ`.
    pub fn mu(mut self, mu: f64) -> Self {
        self.params = self.params.mu(mu);
        self
    }

    /// Prestige exponent `λ`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.params = self.params.lambda(lambda);
        self
    }

    /// Emission policy for the output heap.
    pub fn emission(mut self, emission: EmissionPolicy) -> Self {
        self.params = self.params.emission(emission);
        self
    }

    /// Safety cap on explored nodes.
    pub fn max_explored(mut self, cap: usize) -> Self {
        self.params = self.params.max_explored(cap);
        self
    }

    /// Safety cap on generated answer trees.
    pub fn max_generated(mut self, cap: usize) -> Self {
        self.params = self.params.max_generated(cap);
        self
    }

    /// Per-answer streaming deadline.
    pub fn answer_deadline(mut self, deadline: Duration) -> Self {
        self.params = self.params.answer_deadline(deadline);
        self
    }

    /// Replaces the whole parameter set at once.
    pub fn params(mut self, params: SearchParams) -> Self {
        self.params = params;
        self
    }

    /// The resolved per-keyword origin sets.
    pub fn matches(&self) -> &KeywordMatches {
        &self.matches
    }

    /// The parameters this session will run with.
    pub fn current_params(&self) -> &SearchParams {
        &self.params
    }

    /// The engine instance this session will run.
    pub fn build_engine(&self) -> Box<dyn SearchEngine> {
        self.banks
            .registry
            .create(&self.engine)
            .unwrap_or_else(|| panic!("engine {:?} disappeared from the registry", self.engine))
    }

    /// Starts the search and returns the lazy answer stream.
    pub fn stream(&self) -> Box<dyn AnswerStream + '_> {
        let ctx = QueryContext::new(
            self.banks.graph,
            self.banks.prestige(),
            &self.matches,
            self.params,
        );
        self.build_engine().start(ctx)
    }

    /// Runs the search to completion (drains the stream).
    pub fn run(&self) -> SearchOutcome {
        drain(self.stream())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::{GraphBuilder, NodeId};

    /// writes -> {author, paper} with searchable labels.
    fn tiny_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let author = b.add_node("author", "Jim Gray");
        let paper = b.add_node("paper", "Granularity of locks");
        let writes = b.add_node("writes", "w0");
        b.add_edge(writes, author).unwrap();
        b.add_edge(writes, paper).unwrap();
        b.build_default()
    }

    #[test]
    fn builder_resolves_keywords_and_finds_answers() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph);
        let session = banks.query(["gray", "locks"]).top_k(5);
        assert_eq!(session.matches().num_keywords(), 2);
        assert!(session.matches().all_keywords_matched());
        let outcome = session.run();
        assert_eq!(outcome.answers[0].tree.root, NodeId(2));
    }

    #[test]
    fn query_str_honours_phrases() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph);
        let session = banks.query_str("\"jim gray\" locks");
        assert_eq!(session.matches().num_keywords(), 2);
        assert!(session.matches().all_keywords_matched());
        assert!(!session.run().answers.is_empty());
    }

    #[test]
    fn relation_names_are_searchable() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph);
        let session = banks.query(["writes"]);
        assert!(session.matches().all_keywords_matched());
        assert_eq!(session.matches().origin_set(0), &[NodeId(2)]);
    }

    #[test]
    fn engine_selection_by_name_matches_defaults() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph);
        let batch = banks.query(["gray", "locks"]).top_k(50);
        let a = batch.run();
        for name in ["si-backward", "mi-backward"] {
            let b = banks.query(["gray", "locks"]).top_k(50).engine(name).run();
            let mut sa = a.signatures();
            let mut sb = b.signatures();
            sa.sort();
            sb.sort();
            assert_eq!(sa, sb, "{name} disagrees with bidirectional");
        }
    }

    #[test]
    fn with_engine_changes_the_default() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph).with_engine("si-backward");
        assert_eq!(banks.query(["gray"]).build_engine().name(), "SI-Backward");
    }

    #[test]
    #[should_panic(expected = "unknown engine")]
    fn unknown_engine_panics_with_candidates() {
        let graph = tiny_graph();
        let _ = Banks::open(&graph).query(["gray"]).engine("quantum");
    }

    #[test]
    fn streaming_and_batch_agree() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph);
        let session = banks.query(["gray", "locks"]).top_k(5);
        let batch = session.run();
        let streamed: Vec<_> = session.stream().collect();
        assert_eq!(batch.answers.len(), streamed.len());
        for (a, b) in batch.answers.iter().zip(&streamed) {
            assert_eq!(a.tree.signature(), b.tree.signature());
        }
    }

    #[test]
    fn explicit_prestige_and_index_are_used() {
        let graph = tiny_graph();
        let prestige = PrestigeVector::uniform_for(&graph);
        let mut builder = IndexBuilder::with_default_tokenizer();
        builder.add_text(NodeId(0), "custom-token");
        let banks = Banks::open(&graph)
            .with_prestige(prestige)
            .with_index(builder.build());
        assert!(banks.query(["custom"]).matches().all_keywords_matched());
        // the custom index knows nothing about "gray"
        assert!(!banks.query(["gray"]).matches().all_keywords_matched());
    }

    #[test]
    fn custom_engines_can_be_registered() {
        let graph = tiny_graph();
        let mut banks = Banks::open(&graph);
        banks.register_engine(
            "mine",
            Box::new(|| Box::new(crate::si_backward::SingleIteratorBackwardSearch::new())),
        );
        assert_eq!(
            banks.query(["gray"]).engine("mine").build_engine().name(),
            "SI-Backward"
        );
        assert!(banks.engine_names().contains(&"mine"));
    }
}
