//! The query facade: [`Banks`] and [`QuerySession`].
//!
//! The legacy entry point took four positional arguments —
//! `search(graph, prestige, matches, params)` — and pushed keyword
//! resolution, prestige selection and parameter assembly onto every caller.
//! The facade owns those concerns:
//!
//! ```
//! use banks_core::Banks;
//! use banks_graph::builder::graph_from_edges;
//!
//! let graph = graph_from_edges(3, &[(2, 0), (2, 1)]);
//! let banks = Banks::open(&graph);
//! let outcome = banks.query(["v0", "v1"]).top_k(10).run();
//! # let _ = outcome;
//! ```
//!
//! `Banks::open` borrows the graph; node prestige defaults to uniform and
//! the keyword index is built lazily from node labels and kind names unless
//! supplied with [`Banks::with_prestige`] / [`Banks::with_index`].  Engines
//! are selected by registry name ([`QuerySession::engine`]), and each
//! session can either [`QuerySession::run`] to completion or stream
//! answers lazily via [`QuerySession::stream`].

use std::cell::OnceCell;
use std::sync::{Arc, OnceLock};

use banks_graph::{DataGraph, KindId};
use banks_prestige::PrestigeVector;
use banks_textindex::{IndexBuilder, InvertedIndex, KeywordMatches, Query};

use crate::cache::{CacheKey, CachedStream, ResultCache};
use crate::cancel::CancelToken;
use crate::engine::{SearchEngine, SearchOutcome};
use crate::params::{EmissionPolicy, SearchParams};
use crate::registry::EngineRegistry;
use crate::stream::{drain, AnswerStream, QueryContext};

/// Builds the default keyword index of a graph: every node's label plus the
/// node-kind names, so relation names like `"writes"` are searchable exactly
/// as in the paper's DBLP examples.  Shared by the lazily-initialising
/// [`Banks`] facade and the concurrent query service (which builds the index
/// eagerly at start-up).
pub fn build_label_index(graph: &DataGraph) -> InvertedIndex {
    let mut builder = IndexBuilder::with_default_tokenizer();
    for node in graph.nodes() {
        builder.add_text(node, graph.node_label(node));
    }
    for kind in 0..graph.num_kinds() {
        let kind = KindId(kind as u16);
        builder.add_relation_name(graph.kind_name(kind), kind);
    }
    builder.build()
}

/// Translates a mutation-batch outcome into the text delta that keeps a
/// [`build_label_index`]-style index current: each added or relabelled
/// node contributes its pre-batch label (what the index holds) and its
/// post-batch label (read from `graph`, which must be the **successor**
/// graph the batch produced), and newly-interned kinds are registered as
/// relation-name pseudo terms.
///
/// Feeding the result to [`InvertedIndex::apply_delta`] yields an index
/// equivalent to rebuilding with [`build_label_index`] over the successor
/// graph — the bridge the serving tier uses to avoid full reindexing on
/// every mutation.  It is only correct for indexes whose per-node text is
/// exactly the node label; indexes built over richer external text should
/// be rebuilt through the wholesale swap path instead.
pub fn label_index_delta(
    graph: &DataGraph,
    outcome: &banks_graph::BatchOutcome,
) -> banks_textindex::TextDelta {
    banks_textindex::TextDelta {
        changes: outcome
            .label_changes
            .iter()
            .map(|change| banks_textindex::TextChange {
                node: change.node,
                old: change.old_label.clone().into_iter().collect(),
                new: vec![graph.node_label(change.node).to_string()],
            })
            .collect(),
        new_relations: outcome.new_kinds.clone(),
    }
}

/// A search handle over one graph: prestige, keyword index, engine registry
/// and (optionally) a result cache in one place.
pub struct Banks<'g> {
    graph: &'g DataGraph,
    prestige: Option<PrestigeVector>,
    index: Option<InvertedIndex>,
    registry: EngineRegistry,
    default_engine: String,
    cache: Option<Arc<ResultCache>>,
    uniform_prestige: OnceLock<PrestigeVector>,
    label_index: OnceLock<InvertedIndex>,
}

impl<'g> Banks<'g> {
    /// Opens a graph for querying with uniform prestige, a lazily built
    /// label index, and the default engine registry.
    pub fn open(graph: &'g DataGraph) -> Self {
        Banks {
            graph,
            prestige: None,
            index: None,
            registry: EngineRegistry::with_default_engines(),
            default_engine: "bidirectional".to_string(),
            cache: None,
            uniform_prestige: OnceLock::new(),
            label_index: OnceLock::new(),
        }
    }

    /// Attaches a fresh LRU result cache of the given capacity: repeated
    /// queries against the same graph epoch are answered without running any
    /// engine.  Capacity 0 disables caching.
    pub fn with_cache(self, capacity: usize) -> Self {
        self.with_shared_cache(Arc::new(ResultCache::new(capacity)))
    }

    /// Attaches an existing (possibly shared) result cache.  Because cache
    /// keys carry the graph epoch, one cache can safely serve many graphs
    /// and graph versions — a bumped epoch simply never hits old entries.
    pub fn with_shared_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached result cache, if any.
    pub fn cache(&self) -> Option<&Arc<ResultCache>> {
        self.cache.as_ref()
    }

    /// Uses a precomputed prestige vector (e.g. biased PageRank) instead of
    /// the uniform default.
    pub fn with_prestige(mut self, prestige: PrestigeVector) -> Self {
        self.prestige = Some(prestige);
        self
    }

    /// Uses a prebuilt keyword index instead of the lazily built label
    /// index (datasets extracted from relational databases carry one).
    pub fn with_index(mut self, index: InvertedIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// Sets the default engine for sessions created from this handle.
    ///
    /// # Panics
    /// Panics when the name resolves to no registered engine; the message
    /// lists the known engines and the nearest alias.
    pub fn with_engine(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        if !self.registry.contains(&name) {
            panic!("{}", self.registry.unknown(&name));
        }
        self.default_engine = name;
        self
    }

    /// Registers a custom engine factory on this handle's registry.
    pub fn register_engine(&mut self, name: &'static str, factory: crate::registry::EngineFactory) {
        self.registry.register(name, factory);
    }

    /// The engine names this handle can instantiate.
    pub fn engine_names(&self) -> Vec<&'static str> {
        self.registry.names()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g DataGraph {
        self.graph
    }

    /// The prestige vector queries will use.
    pub fn prestige(&self) -> &PrestigeVector {
        match &self.prestige {
            Some(p) => p,
            None => self
                .uniform_prestige
                .get_or_init(|| PrestigeVector::uniform_for(self.graph)),
        }
    }

    /// The keyword index queries will resolve against.  When none was
    /// supplied, one is built (once) by [`build_label_index`].
    pub fn index(&self) -> &InvertedIndex {
        match &self.index {
            Some(index) => index,
            None => self
                .label_index
                .get_or_init(|| build_label_index(self.graph)),
        }
    }

    /// The single normalization point for every query path.
    ///
    /// [`Banks::query`] and [`Banks::query_str`] used to rely on whatever
    /// normalization the resolution step applied internally; now both (and
    /// the result-cache key, which must agree with them byte for byte) go
    /// through this one function: each keyword is run through the index's
    /// tokenizer (lower-cased, punctuation stripped, whitespace collapsed)
    /// and keywords that normalize to nothing are dropped.
    pub fn normalize_query(&self, query: &Query) -> Query {
        query.normalized(self.index().tokenizer())
    }

    /// Starts a query from individual keywords.
    pub fn query<I, S>(&self, keywords: I) -> QuerySession<'_, 'g>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.query_parsed(&Query::from_keywords(keywords))
    }

    /// Starts a query from a raw string, honouring quoted phrases
    /// (`"\"C. Mohan\" Rothermel"`).
    pub fn query_str(&self, raw: &str) -> QuerySession<'_, 'g> {
        self.query_parsed(&Query::parse(raw))
    }

    /// Starts a query from an already-parsed [`Query`].
    pub fn query_parsed(&self, query: &Query) -> QuerySession<'_, 'g> {
        let normalized = self.normalize_query(query);
        let matches = KeywordMatches::resolve_normalized(self.graph, self.index(), &normalized);
        let session = self.session(matches);
        let _ = session.cache_keywords.set(normalized.keywords().to_vec());
        session
    }

    /// Starts a query from pre-resolved origin sets (hand-built sets in
    /// tests, or match sources other than the text index).  For cache
    /// keying, the set names are run through the same normalization as
    /// every other query path — lazily, so sessions that never touch a
    /// cache never build the label index either.
    pub fn query_matches(&self, matches: KeywordMatches) -> QuerySession<'_, 'g> {
        self.session(matches)
    }

    fn session(&self, matches: KeywordMatches) -> QuerySession<'_, 'g> {
        QuerySession {
            banks: self,
            matches,
            cache_keywords: OnceCell::new(),
            params: SearchParams::default(),
            engine: self.default_engine.clone(),
            cancel: None,
        }
    }
}

/// One prepared query: resolved keyword matches plus parameters, ready to
/// run in batch or as a stream (both can be called repeatedly).
pub struct QuerySession<'b, 'g> {
    banks: &'b Banks<'g>,
    matches: KeywordMatches,
    /// Keywords after the facade-wide normalization, used as the
    /// result-cache key component.  Filled eagerly by the query paths that
    /// normalize anyway, lazily (first [`QuerySession::cache_key`] call)
    /// for pre-resolved matches — so cache-less sessions never pay for it.
    cache_keywords: OnceCell<Vec<String>>,
    params: SearchParams,
    engine: String,
    cancel: Option<CancelToken>,
}

impl<'b, 'g> QuerySession<'b, 'g> {
    /// Selects the engine by registry name (`"bidirectional"`,
    /// `"si-backward"`, `"mi-backward"`, ...).
    ///
    /// # Panics
    /// Panics when the name resolves to no registered engine; the message
    /// lists the known engines and the nearest alias.
    pub fn engine(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        if !self.banks.registry.contains(&name) {
            panic!("{}", self.banks.registry.unknown(&name));
        }
        self.engine = name;
        self
    }

    /// Number of answers requested.
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.params.top_k = top_k;
        self
    }

    /// Depth cutoff `dmax`.
    pub fn dmax(mut self, dmax: usize) -> Self {
        self.params = self.params.dmax(dmax);
        self
    }

    /// Activation attenuation `µ`.
    pub fn mu(mut self, mu: f64) -> Self {
        self.params = self.params.mu(mu);
        self
    }

    /// Prestige exponent `λ`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.params = self.params.lambda(lambda);
        self
    }

    /// Emission policy for the output heap.
    pub fn emission(mut self, emission: EmissionPolicy) -> Self {
        self.params = self.params.emission(emission);
        self
    }

    /// Safety cap on explored nodes.
    pub fn max_explored(mut self, cap: usize) -> Self {
        self.params = self.params.max_explored(cap);
        self
    }

    /// Safety cap on generated answer trees.
    pub fn max_generated(mut self, cap: usize) -> Self {
        self.params = self.params.max_generated(cap);
        self
    }

    /// Per-answer streaming work budget (nodes explored between emissions).
    pub fn answer_work_budget(mut self, budget: usize) -> Self {
        self.params = self.params.answer_work_budget(budget);
        self
    }

    /// Attaches a cancellation token: cancelling it (from any thread) stops
    /// the search within one expansion step.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Replaces the whole parameter set at once.
    pub fn params(mut self, params: SearchParams) -> Self {
        self.params = params;
        self
    }

    /// The resolved per-keyword origin sets.
    pub fn matches(&self) -> &KeywordMatches {
        &self.matches
    }

    /// The parameters this session will run with.
    pub fn current_params(&self) -> &SearchParams {
        &self.params
    }

    /// The result-cache key this session would be stored under: graph
    /// epoch, normalized keywords, and a fingerprint over the parameters,
    /// engine and resolved origin sets (so hand-built matches with equal
    /// names but different sets never alias).
    pub fn cache_key(&self) -> CacheKey {
        let keywords = self.cache_keywords.get_or_init(|| {
            self.banks
                .normalize_query(&Query::from_keywords(self.matches.keywords().to_vec()))
                .keywords()
                .to_vec()
        });
        CacheKey::new(
            self.banks.graph.epoch(),
            keywords.clone(),
            &self.params,
            &self.engine,
            &self.matches,
        )
    }

    /// The engine instance this session will run.
    pub fn build_engine(&self) -> Box<dyn SearchEngine> {
        self.banks
            .registry
            .resolve(&self.engine)
            .unwrap_or_else(|e| panic!("engine disappeared from the registry: {e}"))
    }

    /// Starts the search and returns the lazy answer stream.  With a cache
    /// attached, a hit is replayed without running any engine.
    pub fn stream(&self) -> Box<dyn AnswerStream + '_> {
        if let Some(cache) = self.banks.cache() {
            if let Some(hit) = cache.get(&self.cache_key()) {
                return Box::new(CachedStream::new(&hit));
            }
        }
        self.live_stream()
    }

    /// Starts the underlying engine, bypassing the cache.
    fn live_stream(&self) -> Box<dyn AnswerStream + '_> {
        let mut ctx = QueryContext::new(
            self.banks.graph,
            self.banks.prestige(),
            &self.matches,
            self.params,
        );
        if let Some(token) = &self.cancel {
            ctx = ctx.with_cancel(token);
        }
        self.build_engine().start(ctx)
    }

    /// Runs the search to completion (drains the stream).  With a cache
    /// attached, a hit returns the stored outcome with zero engine work and
    /// a completed miss populates the cache (cancelled runs are never
    /// stored — their answer sets are not reproducible).
    pub fn run(&self) -> SearchOutcome {
        let Some(cache) = self.banks.cache() else {
            return drain(self.live_stream());
        };
        let key = self.cache_key();
        if let Some(hit) = cache.get(&key) {
            return (*hit).clone();
        }
        let outcome = drain(self.live_stream());
        if !outcome.stats.cancelled {
            cache.insert(key, Arc::new(outcome.clone()));
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::{GraphBuilder, NodeId};

    /// writes -> {author, paper} with searchable labels.
    fn tiny_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let author = b.add_node("author", "Jim Gray");
        let paper = b.add_node("paper", "Granularity of locks");
        let writes = b.add_node("writes", "w0");
        b.add_edge(writes, author).unwrap();
        b.add_edge(writes, paper).unwrap();
        b.build_default()
    }

    #[test]
    fn builder_resolves_keywords_and_finds_answers() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph);
        let session = banks.query(["gray", "locks"]).top_k(5);
        assert_eq!(session.matches().num_keywords(), 2);
        assert!(session.matches().all_keywords_matched());
        let outcome = session.run();
        assert_eq!(outcome.answers[0].tree.root, NodeId(2));
    }

    #[test]
    fn query_str_honours_phrases() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph);
        let session = banks.query_str("\"jim gray\" locks");
        assert_eq!(session.matches().num_keywords(), 2);
        assert!(session.matches().all_keywords_matched());
        assert!(!session.run().answers.is_empty());
    }

    #[test]
    fn relation_names_are_searchable() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph);
        let session = banks.query(["writes"]);
        assert!(session.matches().all_keywords_matched());
        assert_eq!(session.matches().origin_set(0), &[NodeId(2)]);
    }

    #[test]
    fn engine_selection_by_name_matches_defaults() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph);
        let batch = banks.query(["gray", "locks"]).top_k(50);
        let a = batch.run();
        for name in ["si-backward", "mi-backward"] {
            let b = banks.query(["gray", "locks"]).top_k(50).engine(name).run();
            let mut sa = a.signatures();
            let mut sb = b.signatures();
            sa.sort();
            sb.sort();
            assert_eq!(sa, sb, "{name} disagrees with bidirectional");
        }
    }

    #[test]
    fn with_engine_changes_the_default() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph).with_engine("si-backward");
        assert_eq!(banks.query(["gray"]).build_engine().name(), "SI-Backward");
    }

    #[test]
    #[should_panic(expected = "unknown engine")]
    fn unknown_engine_panics_with_candidates() {
        let graph = tiny_graph();
        let _ = Banks::open(&graph).query(["gray"]).engine("quantum");
    }

    #[test]
    fn streaming_and_batch_agree() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph);
        let session = banks.query(["gray", "locks"]).top_k(5);
        let batch = session.run();
        let streamed: Vec<_> = session.stream().collect();
        assert_eq!(batch.answers.len(), streamed.len());
        for (a, b) in batch.answers.iter().zip(&streamed) {
            assert_eq!(a.tree.signature(), b.tree.signature());
        }
    }

    #[test]
    fn explicit_prestige_and_index_are_used() {
        let graph = tiny_graph();
        let prestige = PrestigeVector::uniform_for(&graph);
        let mut builder = IndexBuilder::with_default_tokenizer();
        builder.add_text(NodeId(0), "custom-token");
        let banks = Banks::open(&graph)
            .with_prestige(prestige)
            .with_index(builder.build());
        assert!(banks.query(["custom"]).matches().all_keywords_matched());
        // the custom index knows nothing about "gray"
        assert!(!banks.query(["gray"]).matches().all_keywords_matched());
    }

    #[test]
    fn all_query_paths_share_one_normalization() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph);
        // query(): pre-split keywords with stray case/whitespace.
        let a = banks.query(["  Jim   GRAY ", "Locks!"]);
        // query_str(): raw string with a quoted phrase.
        let b = banks.query_str("\"jim gray\" locks");
        // query_matches(): hand-built sets under un-normalized names.
        let c = banks.query_matches(KeywordMatches::from_sets(vec![
            ("Jim Gray", vec![NodeId(0)]),
            (" LOCKS ", vec![NodeId(1)]),
        ]));
        // Index-resolved paths agree completely...
        assert_eq!(a.cache_key(), b.cache_key());
        // ...and every path normalizes keywords through the same function.
        let canonical = vec!["jim gray".to_string(), "locks".to_string()];
        assert_eq!(a.cache_key().keywords, canonical);
        assert_eq!(b.cache_key().keywords, canonical);
        assert_eq!(c.cache_key().keywords, canonical);
        // Hand-built origin sets participate in the fingerprint, so equal
        // names with different sets never alias.
        let d = banks.query_matches(KeywordMatches::from_sets(vec![
            ("Jim Gray", vec![NodeId(2)]),
            (" LOCKS ", vec![NodeId(1)]),
        ]));
        assert_ne!(c.cache_key(), d.cache_key());
    }

    #[test]
    fn cache_hit_runs_no_engine_at_all() {
        let graph = tiny_graph();
        let factory_calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let counter = std::sync::Arc::clone(&factory_calls);
        let mut banks = Banks::open(&graph).with_cache(8);
        banks.register_engine(
            "counted",
            Box::new(move || {
                counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Box::new(crate::bidirectional::BidirectionalSearch::new())
            }),
        );

        let first = banks.query(["gray", "locks"]).engine("counted").run();
        assert!(!first.answers.is_empty());
        assert_eq!(factory_calls.load(std::sync::atomic::Ordering::SeqCst), 1);

        // Identical query, same epoch: served from the cache — the engine
        // factory is never even invoked, so zero `advance()` work happens.
        let second = banks.query(["gray", "locks"]).engine("counted").run();
        assert_eq!(factory_calls.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert_eq!(first.signatures(), second.signatures());
        assert_eq!(first.stats, second.stats);
        let cache = banks.cache().unwrap();
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);

        // Different params form a different key.
        let _ = banks
            .query(["gray", "locks"])
            .engine("counted")
            .top_k(3)
            .run();
        assert_eq!(factory_calls.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn cached_stream_replays_the_outcome() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph).with_cache(8);
        let batch = banks.query(["gray", "locks"]).run();
        let replay: Vec<_> = banks.query(["gray", "locks"]).stream().collect();
        assert_eq!(batch.answers.len(), replay.len());
        for (a, b) in batch.answers.iter().zip(&replay) {
            assert_eq!(a.tree.signature(), b.tree.signature());
            assert_eq!(a.rank, b.rank);
        }
    }

    #[test]
    fn epoch_bump_invalidates_a_shared_cache() {
        let cache = std::sync::Arc::new(crate::cache::ResultCache::new(8));
        let mut graph = tiny_graph();
        {
            let banks = Banks::open(&graph).with_shared_cache(std::sync::Arc::clone(&cache));
            let _ = banks.query(["gray", "locks"]).run();
            let _ = banks.query(["gray", "locks"]).run();
        }
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);

        // Same cache, same query — but the graph moved to a new epoch.
        graph.bump_epoch();
        {
            let banks = Banks::open(&graph).with_shared_cache(std::sync::Arc::clone(&cache));
            let _ = banks.query(["gray", "locks"]).run();
        }
        assert_eq!(cache.hits(), 1, "bumped epoch must not hit stale entries");
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cancelled_session_runs_are_not_cached() {
        let graph = tiny_graph();
        let banks = Banks::open(&graph).with_cache(8);
        let token = CancelToken::new();
        token.cancel();
        let cancelled = banks.query(["gray", "locks"]).cancel_token(token).run();
        assert!(cancelled.stats.cancelled);
        assert!(cancelled.answers.is_empty());
        assert!(
            banks.cache().unwrap().is_empty(),
            "aborted run must not be stored"
        );

        // The same query without the token runs fresh and completes.
        let clean = banks.query(["gray", "locks"]).run();
        assert!(!clean.answers.is_empty());
        assert!(!clean.stats.cancelled);
    }

    #[test]
    fn label_index_delta_tracks_a_rebuild() {
        use banks_graph::{MutationBatch, NodeId};
        let graph = tiny_graph();
        let index = build_label_index(&graph);
        let batch = MutationBatch::new()
            .add_node("venue", "VLDB 2005")
            .set_label(NodeId(0), "James Gray");
        let (successor, outcome) = graph.apply_batch(&batch);
        let updated = index.apply_delta(&label_index_delta(&successor, &outcome));
        let rebuilt = build_label_index(&successor);
        assert_eq!(updated.num_terms(), rebuilt.num_terms());
        for term in rebuilt.terms() {
            assert_eq!(
                updated.postings(term),
                rebuilt.postings(term),
                "term {term}"
            );
        }
        // new kind name matches as a relation pseudo-term
        assert_eq!(
            updated.matching_nodes(&successor, "venue"),
            rebuilt.matching_nodes(&successor, "venue")
        );
    }

    #[test]
    fn custom_engines_can_be_registered() {
        let graph = tiny_graph();
        let mut banks = Banks::open(&graph);
        banks.register_engine(
            "mine",
            Box::new(|| Box::new(crate::si_backward::SingleIteratorBackwardSearch::new())),
        );
        assert_eq!(
            banks.query(["gray"]).engine("mine").build_engine().name(),
            "SI-Backward"
        );
        assert!(banks.engine_names().contains(&"mine"));
    }
}
