//! A small updatable max-priority queue over nodes.
//!
//! The incoming and outgoing iterators of Bidirectional search order their
//! frontiers by node activation, and activation values change while a node
//! is queued (the `Activate` propagation of Figure 3).  Rust's
//! `BinaryHeap` has no decrease/increase-key, so this queue uses the classic
//! lazy-deletion trick: every priority change pushes a fresh entry, and
//! stale entries are skipped at pop time by comparing against the live
//! priority map.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use banks_graph::NodeId;

#[derive(PartialEq)]
struct Entry {
    priority: f64,
    node: NodeId,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on priority; ties broken on node id (lower id first) so
        // that runs are fully deterministic.
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Updatable max-priority queue keyed by [`NodeId`].
#[derive(Default)]
pub struct MaxPriorityQueue {
    heap: BinaryHeap<Entry>,
    live: HashMap<NodeId, f64>,
}

impl MaxPriorityQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (non-stale) nodes in the queue.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live nodes remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// True when the node is currently queued.
    pub fn contains(&self, node: NodeId) -> bool {
        self.live.contains_key(&node)
    }

    /// Current priority of a queued node.
    pub fn priority(&self, node: NodeId) -> Option<f64> {
        self.live.get(&node).copied()
    }

    /// Inserts a node or raises/lowers its priority.  Returns `true` if the
    /// node was not previously queued.
    pub fn push(&mut self, node: NodeId, priority: f64) -> bool {
        let fresh = self.live.insert(node, priority).is_none();
        self.heap.push(Entry { priority, node });
        fresh
    }

    /// Updates the priority only if the new value is higher.  Returns `true`
    /// if the priority changed (or the node was newly inserted).
    pub fn push_max(&mut self, node: NodeId, priority: f64) -> bool {
        match self.live.get(&node) {
            Some(current) if *current >= priority => false,
            _ => {
                self.push(node, priority);
                true
            }
        }
    }

    /// Highest live priority without removing it.
    pub fn peek(&mut self) -> Option<(NodeId, f64)> {
        self.skim();
        self.heap.peek().map(|e| (e.node, e.priority))
    }

    /// Removes and returns the node with the highest priority.
    pub fn pop(&mut self) -> Option<(NodeId, f64)> {
        self.skim();
        let entry = self.heap.pop()?;
        self.live.remove(&entry.node);
        Some((entry.node, entry.priority))
    }

    /// Removes a node from the queue without popping it (used when a node
    /// expanded by one iterator must not be re-expanded).
    pub fn remove(&mut self, node: NodeId) -> bool {
        self.live.remove(&node).is_some()
    }

    /// Drops stale heap entries from the top.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            match self.live.get(&top.node) {
                Some(p) if (*p - top.priority).abs() < f64::EPSILON => break,
                _ => {
                    self.heap.pop();
                }
            }
        }
    }
}

impl std::fmt::Debug for MaxPriorityQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaxPriorityQueue")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_priority_order() {
        let mut q = MaxPriorityQueue::new();
        q.push(NodeId(1), 0.5);
        q.push(NodeId(2), 0.9);
        q.push(NodeId(3), 0.1);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().0, NodeId(2));
        assert_eq!(q.pop().unwrap().0, NodeId(1));
        assert_eq!(q.pop().unwrap().0, NodeId(3));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn priority_updates_take_effect() {
        let mut q = MaxPriorityQueue::new();
        q.push(NodeId(1), 0.2);
        q.push(NodeId(2), 0.5);
        q.push(NodeId(1), 0.9); // raise node 1 above node 2
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap(), (NodeId(1), 0.9));
        assert_eq!(q.pop().unwrap(), (NodeId(2), 0.5));
    }

    #[test]
    fn push_max_only_raises() {
        let mut q = MaxPriorityQueue::new();
        assert!(q.push_max(NodeId(1), 0.4));
        assert!(!q.push_max(NodeId(1), 0.3));
        assert!(q.push_max(NodeId(1), 0.6));
        assert_eq!(q.priority(NodeId(1)), Some(0.6));
        assert_eq!(q.pop().unwrap(), (NodeId(1), 0.6));
    }

    #[test]
    fn ties_break_on_node_id() {
        let mut q = MaxPriorityQueue::new();
        q.push(NodeId(7), 1.0);
        q.push(NodeId(3), 1.0);
        assert_eq!(q.pop().unwrap().0, NodeId(3));
        assert_eq!(q.pop().unwrap().0, NodeId(7));
    }

    #[test]
    fn remove_and_contains() {
        let mut q = MaxPriorityQueue::new();
        q.push(NodeId(1), 0.3);
        q.push(NodeId(2), 0.8);
        assert!(q.contains(NodeId(2)));
        assert!(q.remove(NodeId(2)));
        assert!(!q.contains(NodeId(2)));
        assert!(!q.remove(NodeId(2)));
        assert_eq!(q.pop().unwrap().0, NodeId(1));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_stale_entries() {
        let mut q = MaxPriorityQueue::new();
        q.push(NodeId(1), 0.9);
        q.push(NodeId(1), 0.1); // lower the priority
        q.push(NodeId(2), 0.5);
        assert_eq!(q.peek().unwrap().0, NodeId(2));
    }
}
