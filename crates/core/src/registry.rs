//! Name → engine-factory registry.
//!
//! Benchmarks, examples and services select engines by string (a CLI flag,
//! a config entry, a request parameter) instead of hardcoding match arms
//! over engine types.  The registry also lets downstream code plug in
//! custom engines without touching this crate.

use crate::backward::BackwardExpandingSearch;
use crate::bidirectional::{BidirectionalConfig, BidirectionalSearch};
use crate::engine::SearchEngine;
use crate::scatter::ScatterGatherSearch;
use crate::si_backward::SingleIteratorBackwardSearch;

/// A factory producing a boxed engine.
pub type EngineFactory = Box<dyn Fn() -> Box<dyn SearchEngine> + Send + Sync>;

/// A name resolved to no registered engine.
///
/// Instead of a bare failure the error carries everything a caller needs to
/// recover: the canonical names the registry *does* know, and the nearest
/// name or alias by edit distance (when one is plausibly close), so a typo
/// like `"bidirectonal"` produces `did you mean "bidirectional"?`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownEngine {
    /// The name that failed to resolve.
    pub requested: String,
    /// Canonical names of every registered engine, in registration order.
    pub known: Vec<&'static str>,
    /// The closest known name or alias, if any is within a plausible
    /// typo distance.
    pub suggestion: Option<&'static str>,
}

impl std::fmt::Display for UnknownEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown engine {:?}; known engines: {}",
            self.requested,
            self.known.join(", ")
        )?;
        if let Some(suggestion) = self.suggestion {
            write!(f, " (did you mean {suggestion:?}?)")?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownEngine {}

struct Entry {
    name: &'static str,
    aliases: Vec<&'static str>,
    factory: EngineFactory,
}

/// Registry mapping engine names to factories.
///
/// Lookup is case-insensitive and treats `_` and `-` as equivalent, so
/// `"SI_Backward"` resolves the `"si-backward"` entry.
pub struct EngineRegistry {
    entries: Vec<Entry>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        EngineRegistry {
            entries: Vec::new(),
        }
    }

    /// The registry with the paper's three engines plus the ablation
    /// configurations:
    ///
    /// | name | engine |
    /// |------|--------|
    /// | `bidirectional` (alias `bidir`) | [`BidirectionalSearch`] |
    /// | `si-backward` (alias `si`) | [`SingleIteratorBackwardSearch`] |
    /// | `mi-backward` (aliases `mi`, `backward`) | [`BackwardExpandingSearch`] |
    /// | `bidirectional-no-activation` | forward iterator, distance priority |
    /// | `backward-activation` | no forward iterator, activation priority |
    /// | `scatter-gather` (alias `sg`) | [`ScatterGatherSearch`] over MI-Backward |
    /// | `sg-bidirectional` | scatter-gather delegating to Bidirectional |
    /// | `sg-si-backward` | scatter-gather delegating to SI-Backward |
    /// | `sg-mi-backward` | scatter-gather over MI-Backward |
    pub fn with_default_engines() -> Self {
        let mut registry = EngineRegistry::new();
        registry.register_with_aliases(
            "bidirectional",
            vec!["bidir"],
            Box::new(|| Box::new(BidirectionalSearch::new())),
        );
        registry.register_with_aliases(
            "si-backward",
            vec!["si"],
            Box::new(|| Box::new(SingleIteratorBackwardSearch::new())),
        );
        registry.register_with_aliases(
            "mi-backward",
            vec!["mi", "backward"],
            Box::new(|| Box::new(BackwardExpandingSearch::new())),
        );
        registry.register_with_aliases(
            "bidirectional-no-activation",
            vec![],
            Box::new(|| {
                Box::new(BidirectionalSearch::with_config(BidirectionalConfig {
                    enable_outgoing: true,
                    use_activation: false,
                }))
            }),
        );
        registry.register_with_aliases(
            "backward-activation",
            vec![],
            Box::new(|| {
                Box::new(BidirectionalSearch::with_config(BidirectionalConfig {
                    enable_outgoing: false,
                    use_activation: true,
                }))
            }),
        );
        registry.register_with_aliases(
            "scatter-gather",
            vec!["sg"],
            Box::new(|| Box::new(ScatterGatherSearch::new())),
        );
        registry.register_with_aliases(
            "sg-bidirectional",
            vec![],
            Box::new(|| Box::new(ScatterGatherSearch::over_bidirectional())),
        );
        registry.register_with_aliases(
            "sg-si-backward",
            vec![],
            Box::new(|| Box::new(ScatterGatherSearch::over_si_backward())),
        );
        registry.register_with_aliases(
            "sg-mi-backward",
            vec![],
            Box::new(|| Box::new(ScatterGatherSearch::over_mi_backward())),
        );
        registry
    }

    /// Registers a factory under a canonical name.  Re-registering a name
    /// replaces the previous entry (latest wins), so callers can override
    /// defaults.
    pub fn register(&mut self, name: &'static str, factory: EngineFactory) {
        self.register_with_aliases(name, Vec::new(), factory);
    }

    /// Registers a factory with additional lookup aliases.
    ///
    /// When this replaces an entry with the same canonical name and no new
    /// aliases are given, the replaced entry's aliases carry over to the
    /// new factory, so `register("mi-backward", ..)` keeps `"mi"` and
    /// `"backward"` resolving (now to the override).
    pub fn register_with_aliases(
        &mut self,
        name: &'static str,
        mut aliases: Vec<&'static str>,
        factory: EngineFactory,
    ) {
        if let Some(pos) = self
            .entries
            .iter()
            .position(|e| normalize(e.name) == normalize(name))
        {
            let old = self.entries.remove(pos);
            if aliases.is_empty() {
                aliases = old.aliases;
            }
        }
        self.entries.push(Entry {
            name,
            aliases,
            factory,
        });
    }

    /// Instantiates the engine registered under `name` (or one of its
    /// aliases).  Returns `None` for unknown names.
    ///
    /// Canonical names take precedence over aliases, so registering a new
    /// engine under a name that happens to be another entry's alias (e.g.
    /// `"bidir"`) makes the new entry win, preserving the latest-wins
    /// override semantics.  Among aliases, the most recently registered
    /// entry wins.
    pub fn create(&self, name: &str) -> Option<Box<dyn SearchEngine>> {
        let wanted = normalize(name);
        if let Some(entry) = self.entries.iter().find(|e| normalize(e.name) == wanted) {
            return Some((entry.factory)());
        }
        self.entries
            .iter()
            .rev()
            .find(|e| e.aliases.iter().any(|a| normalize(a) == wanted))
            .map(|e| (e.factory)())
    }

    /// Instantiates the engine registered under `name`, or returns an
    /// [`UnknownEngine`] error listing the known engine names and the
    /// nearest alias when the name resolves to nothing.
    pub fn resolve(&self, name: &str) -> Result<Box<dyn SearchEngine>, UnknownEngine> {
        self.create(name).ok_or_else(|| self.unknown(name))
    }

    /// Builds the [`UnknownEngine`] error for a name that failed to resolve
    /// (also used by callers that validate names without instantiating).
    pub fn unknown(&self, name: &str) -> UnknownEngine {
        let wanted = normalize(name);
        let mut best: Option<(&'static str, usize)> = None;
        for entry in &self.entries {
            for candidate in std::iter::once(&entry.name).chain(entry.aliases.iter()) {
                let d = edit_distance(&wanted, &normalize(candidate));
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((candidate, d));
                }
            }
        }
        // Only suggest plausible typos: within 3 edits and under half the
        // requested name's length (so "quantum" doesn't suggest "mi").
        let suggestion = best
            .filter(|(_, d)| *d <= 3 && *d * 2 <= wanted.len().max(2))
            .map(|(candidate, _)| candidate);
        UnknownEngine {
            requested: name.to_string(),
            known: self.names(),
            suggestion,
        }
    }

    /// Canonical names in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// True when `name` (or an alias) resolves to an engine.  Pure name
    /// scan — never invokes a factory.
    pub fn contains(&self, name: &str) -> bool {
        let wanted = normalize(name);
        self.entries.iter().any(|e| {
            normalize(e.name) == wanted || e.aliases.iter().any(|a| normalize(a) == wanted)
        })
    }
}

impl Default for EngineRegistry {
    fn default() -> Self {
        EngineRegistry::with_default_engines()
    }
}

/// Canonical form of an engine name: trimmed, lower-cased, underscores
/// folded to dashes.  Shared with the cost estimator
/// ([`crate::cost`]) so pricing and resolution agree on what a name means.
pub(crate) fn normalize(name: &str) -> String {
    name.trim().to_ascii_lowercase().replace('_', "-")
}

/// Levenshtein edit distance over bytes (names are ASCII), used to rank
/// "did you mean" suggestions for unknown engine names.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let substitution = previous[j] + usize::from(ca != cb);
            current[j + 1] = substitution.min(previous[j + 1] + 1).min(current[j] + 1);
        }
        std::mem::swap(&mut previous, &mut current);
    }
    previous[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_registry_creates_all_engines() {
        let registry = EngineRegistry::with_default_engines();
        assert_eq!(
            registry.names(),
            vec![
                "bidirectional",
                "si-backward",
                "mi-backward",
                "bidirectional-no-activation",
                "backward-activation",
                "scatter-gather",
                "sg-bidirectional",
                "sg-si-backward",
                "sg-mi-backward",
            ]
        );
        assert_eq!(
            registry.create("bidirectional").unwrap().name(),
            "Bidirectional"
        );
        assert_eq!(
            registry.create("si-backward").unwrap().name(),
            "SI-Backward"
        );
        assert_eq!(
            registry.create("mi-backward").unwrap().name(),
            "MI-Backward"
        );
        assert_eq!(
            registry
                .create("bidirectional-no-activation")
                .unwrap()
                .name(),
            "Bidirectional(no-activation)"
        );
        assert_eq!(
            registry.create("backward-activation").unwrap().name(),
            "Backward(activation)"
        );
        assert_eq!(
            registry.create("scatter-gather").unwrap().name(),
            "ScatterGather"
        );
        assert_eq!(registry.create("sg").unwrap().name(), "ScatterGather");
        assert_eq!(
            registry.create("sg-bidirectional").unwrap().name(),
            "ScatterGather(bidirectional)"
        );
        assert_eq!(
            registry.create("sg-si-backward").unwrap().name(),
            "ScatterGather(si-backward)"
        );
        assert_eq!(
            registry.create("sg-mi-backward").unwrap().name(),
            "ScatterGather"
        );
    }

    #[test]
    fn lookup_is_forgiving() {
        let registry = EngineRegistry::with_default_engines();
        assert!(registry.contains("SI_Backward"));
        assert!(registry.contains(" Bidirectional "));
        assert!(registry.contains("bidir"));
        assert!(registry.contains("mi"));
        assert!(!registry.contains("quantum"));
        assert!(registry.create("quantum").is_none());
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("bidirectonal", "bidirectional"), 1);
    }

    #[test]
    fn unknown_engine_error_lists_names_and_suggests_nearest() {
        let registry = EngineRegistry::with_default_engines();
        let err = registry.resolve("bidirectonal").err().expect("must fail");
        assert_eq!(err.requested, "bidirectonal");
        assert_eq!(err.known, registry.names());
        assert_eq!(err.suggestion, Some("bidirectional"));
        let rendered = err.to_string();
        assert!(rendered.contains("unknown engine \"bidirectonal\""));
        assert!(rendered.contains("bidirectional"));
        assert!(rendered.contains("si-backward"));
        assert!(rendered.contains("did you mean"));

        // Aliases are candidates too.
        let err = registry.resolve("bakward").err().expect("must fail");
        assert_eq!(err.suggestion, Some("backward"));

        // Nothing close: no misleading suggestion.
        let err = registry
            .resolve("quantum-annealer")
            .err()
            .expect("must fail");
        assert_eq!(err.suggestion, None);
        assert!(!err.to_string().contains("did you mean"));
    }

    #[test]
    fn resolve_succeeds_for_known_names() {
        let registry = EngineRegistry::with_default_engines();
        assert_eq!(registry.resolve("bidir").unwrap().name(), "Bidirectional");
        assert_eq!(
            registry.resolve("MI_Backward").unwrap().name(),
            "MI-Backward"
        );
    }

    #[test]
    fn canonical_registration_shadows_builtin_aliases() {
        let mut registry = EngineRegistry::with_default_engines();
        // "bidir" is an alias of the builtin "bidirectional" entry; a
        // canonical registration under that name must win.
        registry.register(
            "bidir",
            Box::new(|| Box::new(SingleIteratorBackwardSearch::new())),
        );
        assert_eq!(registry.create("bidir").unwrap().name(), "SI-Backward");
        // the builtin stays reachable under its canonical name
        assert_eq!(
            registry.create("bidirectional").unwrap().name(),
            "Bidirectional"
        );
    }

    #[test]
    fn registration_overrides_and_extends() {
        let mut registry = EngineRegistry::with_default_engines();
        registry.register(
            "bidirectional",
            Box::new(|| Box::new(SingleIteratorBackwardSearch::new())),
        );
        assert_eq!(
            registry.create("bidirectional").unwrap().name(),
            "SI-Backward"
        );
        // the replaced entry's aliases survive and point at the override
        assert_eq!(registry.create("bidir").unwrap().name(), "SI-Backward");
        registry.register("custom", Box::new(|| Box::new(BidirectionalSearch::new())));
        assert!(registry.contains("custom"));
        assert_eq!(registry.names().len(), 10);
    }
}
