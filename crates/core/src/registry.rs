//! Name → engine-factory registry.
//!
//! Benchmarks, examples and services select engines by string (a CLI flag,
//! a config entry, a request parameter) instead of hardcoding match arms
//! over engine types.  The registry also lets downstream code plug in
//! custom engines without touching this crate.

use crate::backward::BackwardExpandingSearch;
use crate::bidirectional::{BidirectionalConfig, BidirectionalSearch};
use crate::engine::SearchEngine;
use crate::si_backward::SingleIteratorBackwardSearch;

/// A factory producing a boxed engine.
pub type EngineFactory = Box<dyn Fn() -> Box<dyn SearchEngine> + Send + Sync>;

struct Entry {
    name: &'static str,
    aliases: Vec<&'static str>,
    factory: EngineFactory,
}

/// Registry mapping engine names to factories.
///
/// Lookup is case-insensitive and treats `_` and `-` as equivalent, so
/// `"SI_Backward"` resolves the `"si-backward"` entry.
pub struct EngineRegistry {
    entries: Vec<Entry>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        EngineRegistry {
            entries: Vec::new(),
        }
    }

    /// The registry with the paper's three engines plus the ablation
    /// configurations:
    ///
    /// | name | engine |
    /// |------|--------|
    /// | `bidirectional` (alias `bidir`) | [`BidirectionalSearch`] |
    /// | `si-backward` (alias `si`) | [`SingleIteratorBackwardSearch`] |
    /// | `mi-backward` (aliases `mi`, `backward`) | [`BackwardExpandingSearch`] |
    /// | `bidirectional-no-activation` | forward iterator, distance priority |
    /// | `backward-activation` | no forward iterator, activation priority |
    pub fn with_default_engines() -> Self {
        let mut registry = EngineRegistry::new();
        registry.register_with_aliases(
            "bidirectional",
            vec!["bidir"],
            Box::new(|| Box::new(BidirectionalSearch::new())),
        );
        registry.register_with_aliases(
            "si-backward",
            vec!["si"],
            Box::new(|| Box::new(SingleIteratorBackwardSearch::new())),
        );
        registry.register_with_aliases(
            "mi-backward",
            vec!["mi", "backward"],
            Box::new(|| Box::new(BackwardExpandingSearch::new())),
        );
        registry.register_with_aliases(
            "bidirectional-no-activation",
            vec![],
            Box::new(|| {
                Box::new(BidirectionalSearch::with_config(BidirectionalConfig {
                    enable_outgoing: true,
                    use_activation: false,
                }))
            }),
        );
        registry.register_with_aliases(
            "backward-activation",
            vec![],
            Box::new(|| {
                Box::new(BidirectionalSearch::with_config(BidirectionalConfig {
                    enable_outgoing: false,
                    use_activation: true,
                }))
            }),
        );
        registry
    }

    /// Registers a factory under a canonical name.  Re-registering a name
    /// replaces the previous entry (latest wins), so callers can override
    /// defaults.
    pub fn register(&mut self, name: &'static str, factory: EngineFactory) {
        self.register_with_aliases(name, Vec::new(), factory);
    }

    /// Registers a factory with additional lookup aliases.
    ///
    /// When this replaces an entry with the same canonical name and no new
    /// aliases are given, the replaced entry's aliases carry over to the
    /// new factory, so `register("mi-backward", ..)` keeps `"mi"` and
    /// `"backward"` resolving (now to the override).
    pub fn register_with_aliases(
        &mut self,
        name: &'static str,
        mut aliases: Vec<&'static str>,
        factory: EngineFactory,
    ) {
        if let Some(pos) = self
            .entries
            .iter()
            .position(|e| normalize(e.name) == normalize(name))
        {
            let old = self.entries.remove(pos);
            if aliases.is_empty() {
                aliases = old.aliases;
            }
        }
        self.entries.push(Entry {
            name,
            aliases,
            factory,
        });
    }

    /// Instantiates the engine registered under `name` (or one of its
    /// aliases).  Returns `None` for unknown names.
    ///
    /// Canonical names take precedence over aliases, so registering a new
    /// engine under a name that happens to be another entry's alias (e.g.
    /// `"bidir"`) makes the new entry win, preserving the latest-wins
    /// override semantics.  Among aliases, the most recently registered
    /// entry wins.
    pub fn create(&self, name: &str) -> Option<Box<dyn SearchEngine>> {
        let wanted = normalize(name);
        if let Some(entry) = self.entries.iter().find(|e| normalize(e.name) == wanted) {
            return Some((entry.factory)());
        }
        self.entries
            .iter()
            .rev()
            .find(|e| e.aliases.iter().any(|a| normalize(a) == wanted))
            .map(|e| (e.factory)())
    }

    /// Canonical names in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// True when `name` (or an alias) resolves to an engine.  Pure name
    /// scan — never invokes a factory.
    pub fn contains(&self, name: &str) -> bool {
        let wanted = normalize(name);
        self.entries.iter().any(|e| {
            normalize(e.name) == wanted || e.aliases.iter().any(|a| normalize(a) == wanted)
        })
    }
}

impl Default for EngineRegistry {
    fn default() -> Self {
        EngineRegistry::with_default_engines()
    }
}

fn normalize(name: &str) -> String {
    name.trim().to_ascii_lowercase().replace('_', "-")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_registry_creates_all_engines() {
        let registry = EngineRegistry::with_default_engines();
        assert_eq!(
            registry.names(),
            vec![
                "bidirectional",
                "si-backward",
                "mi-backward",
                "bidirectional-no-activation",
                "backward-activation",
            ]
        );
        assert_eq!(
            registry.create("bidirectional").unwrap().name(),
            "Bidirectional"
        );
        assert_eq!(
            registry.create("si-backward").unwrap().name(),
            "SI-Backward"
        );
        assert_eq!(
            registry.create("mi-backward").unwrap().name(),
            "MI-Backward"
        );
        assert_eq!(
            registry
                .create("bidirectional-no-activation")
                .unwrap()
                .name(),
            "Bidirectional(no-activation)"
        );
        assert_eq!(
            registry.create("backward-activation").unwrap().name(),
            "Backward(activation)"
        );
    }

    #[test]
    fn lookup_is_forgiving() {
        let registry = EngineRegistry::with_default_engines();
        assert!(registry.contains("SI_Backward"));
        assert!(registry.contains(" Bidirectional "));
        assert!(registry.contains("bidir"));
        assert!(registry.contains("mi"));
        assert!(!registry.contains("quantum"));
        assert!(registry.create("quantum").is_none());
    }

    #[test]
    fn canonical_registration_shadows_builtin_aliases() {
        let mut registry = EngineRegistry::with_default_engines();
        // "bidir" is an alias of the builtin "bidirectional" entry; a
        // canonical registration under that name must win.
        registry.register(
            "bidir",
            Box::new(|| Box::new(SingleIteratorBackwardSearch::new())),
        );
        assert_eq!(registry.create("bidir").unwrap().name(), "SI-Backward");
        // the builtin stays reachable under its canonical name
        assert_eq!(
            registry.create("bidirectional").unwrap().name(),
            "Bidirectional"
        );
    }

    #[test]
    fn registration_overrides_and_extends() {
        let mut registry = EngineRegistry::with_default_engines();
        registry.register(
            "bidirectional",
            Box::new(|| Box::new(SingleIteratorBackwardSearch::new())),
        );
        assert_eq!(
            registry.create("bidirectional").unwrap().name(),
            "SI-Backward"
        );
        // the replaced entry's aliases survive and point at the override
        assert_eq!(registry.create("bidir").unwrap().name(), "SI-Backward");
        registry.register("custom", Box::new(|| Box::new(BidirectionalSearch::new())));
        assert!(registry.contains("custom"));
        assert_eq!(registry.names().len(), 6);
    }
}
