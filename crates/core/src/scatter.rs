//! The scatter-gather merge engine: per-shard iterator groups advanced in
//! parallel, gathered through the global [`OutputHeap`].
//!
//! ## Why the decomposition is exact
//!
//! The MI-Backward engine runs one Dijkstra iterator per (keyword,
//! origin) pair and interleaves them through a global scheduler keyed by
//! the smallest next frontier distance.  Crucially, an iterator's state
//! only changes when *that iterator* steps — the scheduler entry pushed
//! after a step stays valid until it is popped — so the sequential
//! execution is exactly a k-way merge of per-iterator *event sequences*
//! (the finalised `(node, distance, newly_touched)` triples), ordered by
//! `(distance, iterator index)`.  Those event sequences are a pure
//! function of the graph and the origin, independent of the interleaving.
//!
//! That makes the scatter phase embarrassingly parallel: iterators are
//! grouped by the shard that owns their origin
//! ([`banks_graph::ShardSpec::owner`]), and whenever the merge needs
//! events that have not been produced yet, one worker thread per shard
//! refills its group's event buffers in a bounded batch.  The gather
//! phase replays the buffered events through the *same* control flow as
//! the sequential engine — identical statistics, caps, combination
//! enumeration, and [`OutputHeap`] release bounds — so the answer stream
//! is byte-identical to the unsharded engine by construction, for every
//! shard count.  Dijkstra's invariant guarantees the replay is safe: once
//! a node is finalised, its predecessor chain never changes, so paths can
//! be materialised at merge time even though the iterator has raced
//! ahead.
//!
//! ## Delegation contract
//!
//! Only the multi-iterator engine decomposes this way.  The bidirectional
//! and single-iterator engines run one global frontier whose best paths
//! routinely cross shard boundaries many hops deep, so a per-shard run
//! cannot be merged back byte-identically; for those bases — and whenever
//! `shards <= 1` — [`ScatterGatherSearch`] delegates to the base engine
//! on the union graph, which *is* the current code path with zero
//! overhead.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::time::Instant;

use banks_graph::{NodeId, ShardSpec};

use crate::answer::AnswerTree;
use crate::backward::{
    enumerate_combinations, BackwardExpandingSearch, OrderedF64, SsspIterator,
    MAX_COMBINATIONS_PER_VISIT,
};
use crate::bidirectional::BidirectionalSearch;
use crate::engine::{RankedAnswer, SearchEngine};
use crate::output::OutputHeap;
use crate::score::ScoreModel;
use crate::si_backward::SingleIteratorBackwardSearch;
use crate::stats::SearchStats;
use crate::stream::{next_answer, AnswerStream, ExpansionMachine, QueryContext, StreamCore};

/// Events produced per iterator per refill round once the search is in
/// steady state: enough to amortise the fork/join cost of a round, small
/// enough to bound the overshoot past caps and budgets (overshot events
/// stay buffered and are consumed later, so no work is wasted while the
/// search continues).
const REFILL_BATCH: usize = 64;

/// First refill batch per iterator.  The opening round fills *every*
/// iterator's buffer at once; a full [`REFILL_BATCH`] there would
/// front-load `iterators × 64` Dijkstra steps before the merge can emit
/// anything, wrecking time-to-first-answer on origin-heavy queries.
/// Each iterator starts small and doubles on every refill, so only the
/// iterators the merge actually drains repeatedly earn big batches and
/// the total prefetch stays proportional to consumed work.
const INITIAL_REFILL_BATCH: usize = 4;

/// The base engine a [`ScatterGatherSearch`] wraps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum BaseKind {
    /// Delegates to [`BidirectionalSearch`] (no exact shard decomposition).
    Bidirectional,
    /// Delegates to [`SingleIteratorBackwardSearch`] (no exact shard
    /// decomposition).
    SiBackward,
    /// Decomposes [`BackwardExpandingSearch`] per shard when
    /// [`QueryContext::shards`] > 1.
    #[default]
    MiBackward,
}

/// The scatter-gather engine: shards the multi-iterator backward search
/// by origin ownership and merges the per-shard event streams through the
/// global output heap, byte-identical to the unsharded run.
///
/// Construct with [`ScatterGatherSearch::new`] (multi-iterator base) or
/// the `over_*` constructors to wrap a specific base engine.  Registered
/// as `"scatter-gather"` (alias `"sg"`) plus one `sg-<base>` entry per
/// base engine in [`crate::EngineRegistry::with_default_engines`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ScatterGatherSearch {
    base: BaseKind,
}

impl ScatterGatherSearch {
    /// The canonical scatter-gather engine over the multi-iterator
    /// backward base.
    pub fn new() -> Self {
        ScatterGatherSearch::default()
    }

    /// Scatter-gather over the bidirectional base: always delegates (the
    /// engine's single global frontier has no exact shard decomposition).
    pub fn over_bidirectional() -> Self {
        ScatterGatherSearch {
            base: BaseKind::Bidirectional,
        }
    }

    /// Scatter-gather over the single-iterator backward base: always
    /// delegates (one merged frontier, no exact shard decomposition).
    pub fn over_si_backward() -> Self {
        ScatterGatherSearch {
            base: BaseKind::SiBackward,
        }
    }

    /// Scatter-gather over the multi-iterator backward base (same as
    /// [`ScatterGatherSearch::new`]).
    pub fn over_mi_backward() -> Self {
        ScatterGatherSearch {
            base: BaseKind::MiBackward,
        }
    }
}

impl SearchEngine for ScatterGatherSearch {
    fn name(&self) -> &'static str {
        match self.base {
            BaseKind::Bidirectional => "ScatterGather(bidirectional)",
            BaseKind::SiBackward => "ScatterGather(si-backward)",
            BaseKind::MiBackward => "ScatterGather",
        }
    }

    fn start<'a>(&self, ctx: QueryContext<'a>) -> Box<dyn AnswerStream + 'a> {
        match self.base {
            BaseKind::Bidirectional => BidirectionalSearch::new().start(ctx),
            BaseKind::SiBackward => SingleIteratorBackwardSearch::new().start(ctx),
            BaseKind::MiBackward => {
                if ctx.shards <= 1 {
                    // K=1 degenerates to the existing engine, not a copy
                    // of it: literally the unsharded stream type.
                    BackwardExpandingSearch::new().start(ctx)
                } else {
                    Box::new(ShardedMiExpander::new(ctx))
                }
            }
        }
    }
}

/// Drained iterators owned by one refill worker, tagged with their
/// slot index in the pool so they can be put back after the round.
type RefillGroup = Vec<(usize, BufferedIterator)>;

/// One Dijkstra iterator plus its buffered, not-yet-merged events.
struct BufferedIterator {
    it: SsspIterator,
    /// Finalised `(node, distance, newly_touched)` events the merge has
    /// not consumed yet, in finalisation order (non-decreasing distance).
    buf: VecDeque<(NodeId, f64, usize)>,
    /// Steps to take on the next refill; doubles per refill up to
    /// [`REFILL_BATCH`].
    batch: usize,
    /// The iterator's frontier is exhausted; `buf` holds its last events.
    exhausted: bool,
}

impl BufferedIterator {
    fn new(it: SsspIterator) -> Self {
        BufferedIterator {
            it,
            buf: VecDeque::new(),
            batch: INITIAL_REFILL_BATCH,
            exhausted: false,
        }
    }

    /// A throwaway slot value: drained iterators are *moved* out of the
    /// pool for a refill round (worker threads need ownership) and this
    /// takes their place until they are put back.
    fn placeholder() -> Self {
        BufferedIterator::new(SsspIterator::new(0, NodeId(0)))
    }

    /// Advances the underlying iterator up to its current batch size,
    /// buffering each finalised event, then grows the batch.
    fn refill(&mut self, graph: &banks_graph::DataGraph, dmax: usize) {
        for _ in 0..self.batch {
            match self.it.step(graph, dmax) {
                Some(event) => self.buf.push_back(event),
                None => {
                    self.exhausted = true;
                    break;
                }
            }
        }
        self.batch = (self.batch * 2).min(REFILL_BATCH);
    }
}

/// The sharded multi-iterator step machine: parallel scatter (per-shard
/// event-buffer refills), sequential gather (the exact MI-Backward merge
/// replayed over buffered events).
struct ShardedMiExpander<'a> {
    ctx: QueryContext<'a>,
    model: ScoreModel,
    num_keywords: usize,
    spec: ShardSpec,
    iterators: Vec<BufferedIterator>,
    /// Shard owning each iterator's origin (parallel to `iterators`).
    shard_of: Vec<usize>,
    /// The merge scheduler: one entry per iterator with a non-empty
    /// buffer, keyed by the front event's distance.
    scheduler: BinaryHeap<Reverse<(OrderedF64, usize)>>,
    visited_by: HashMap<NodeId, Vec<Vec<usize>>>,
    /// Iterators whose buffers drained (and are not exhausted), awaiting
    /// the next refill round.  Keeping the list explicit makes each
    /// `advance` O(drained), not O(all iterators).
    drained: Vec<usize>,
    heap: OutputHeap,
    core: StreamCore,
}

impl<'a> ShardedMiExpander<'a> {
    fn new(ctx: QueryContext<'a>) -> Self {
        let num_keywords = ctx.matches.num_keywords();
        let model = ctx.params.score_model();
        ShardedMiExpander {
            model,
            num_keywords,
            spec: ShardSpec::new(ctx.shards),
            iterators: Vec::new(),
            shard_of: Vec::new(),
            scheduler: BinaryHeap::new(),
            visited_by: HashMap::new(),
            drained: Vec::new(),
            heap: OutputHeap::new(
                model,
                ctx.params.emission,
                num_keywords,
                ctx.prestige.max(),
                ctx.params.top_k,
            ),
            core: StreamCore::new(),
            ctx,
        }
    }

    /// Refills every drained (non-exhausted) event buffer — one worker
    /// thread per shard with work — and re-enqueues the refilled
    /// iterators into the merge scheduler.
    fn fill_empty_buffers(&mut self) {
        if self.drained.is_empty() {
            return;
        }
        let graph = self.ctx.graph;
        let dmax = self.ctx.params.dmax;
        let times = self.ctx.shard_times;
        // Move the drained iterators out of the pool, grouped by owning
        // shard, so refill workers can take them by value.
        let need = std::mem::take(&mut self.drained);
        let mut groups: Vec<RefillGroup> = Vec::new();
        groups.resize_with(self.spec.shards(), Vec::new);
        for idx in need {
            let taken =
                std::mem::replace(&mut self.iterators[idx], BufferedIterator::placeholder());
            groups[self.shard_of[idx]].push((idx, taken));
        }
        let occupied = groups.iter().filter(|g| !g.is_empty()).count();
        let refilled: Vec<RefillGroup> = if occupied <= 1 {
            // One shard has work: run inline, no fork/join overhead.
            for (shard, group) in groups.iter_mut().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let round = Instant::now();
                for (_, buffered) in group.iter_mut() {
                    buffered.refill(graph, dmax);
                }
                if let Some(times) = times {
                    times.add_micros(shard, round.elapsed().as_micros() as u64);
                }
            }
            groups
        } else {
            // Parallel round.  Workers overlap in wall time, so their raw
            // busy times can sum past the round's duration; charge each
            // shard its *proportional share of the wall* instead, keeping
            // the per-query invariant Σ shard time ≤ expand wall time
            // that the trace layer asserts.
            let round = Instant::now();
            let done: Vec<(usize, RefillGroup, u64)> = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .enumerate()
                    .filter(|(_, g)| !g.is_empty())
                    .map(|(shard, mut group)| {
                        scope.spawn(move || {
                            let t0 = Instant::now();
                            for (_, buffered) in group.iter_mut() {
                                buffered.refill(graph, dmax);
                            }
                            (shard, group, t0.elapsed().as_micros() as u64)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard refill worker"))
                    .collect()
            });
            if let Some(times) = times {
                let wall = round.elapsed().as_micros() as u64;
                let total: u64 = done.iter().map(|&(_, _, b)| b).sum();
                let n = done.len() as u64;
                for &(shard, _, b) in &done {
                    let share = (wall * b).checked_div(total).unwrap_or(wall / n);
                    times.add_micros(shard, share);
                }
            }
            done.into_iter().map(|(_, group, _)| group).collect()
        };
        for group in refilled {
            for (idx, buffered) in group {
                self.iterators[idx] = buffered;
                if let Some(&(_, d, _)) = self.iterators[idx].buf.front() {
                    self.scheduler.push(Reverse((OrderedF64(d), idx)));
                }
            }
        }
    }

    /// Seeding on the first call, then one merged event per call — the
    /// exact control flow of the sequential engine, fed from buffers.
    fn advance(&mut self) {
        if !self.core.seeded {
            self.core.begin();
            if self.num_keywords == 0 || !self.ctx.matches.all_keywords_matched() {
                self.finish();
                return;
            }
            for i in 0..self.num_keywords {
                for origin in self.ctx.matches.origin_set(i) {
                    self.shard_of.push(self.spec.owner(*origin));
                    self.drained.push(self.iterators.len());
                    self.iterators
                        .push(BufferedIterator::new(SsspIterator::new(i, *origin)));
                }
            }
            self.core.stats.nodes_touched = self.iterators.len(); // every origin is labelled once
            return;
        }

        self.fill_empty_buffers();
        let Some(Reverse((OrderedF64(_), idx))) = self.scheduler.pop() else {
            self.finish();
            return;
        };
        if self.core.produced >= self.ctx.params.top_k {
            self.finish();
            return;
        }
        if let Some(cap) = self.ctx.params.max_explored {
            if self.core.stats.nodes_explored >= cap {
                self.core.stats.truncated = true;
                self.finish();
                return;
            }
        }
        if let Some(cap) = self.ctx.params.max_generated {
            if self.core.stats.answers_generated >= cap {
                self.core.stats.truncated = true;
                self.finish();
                return;
            }
        }

        let graph = self.ctx.graph;
        let (m, dist_m, newly_touched) = self.iterators[idx]
            .buf
            .pop_front()
            .expect("scheduled iterator has a buffered event");
        self.core.stats.nodes_explored += 1;
        self.core.stats.nodes_touched += newly_touched;
        self.core.stats.edges_traversed += graph.in_degree(m);
        if let Some(&(_, next, _)) = self.iterators[idx].buf.front() {
            self.scheduler.push(Reverse((OrderedF64(next), idx)));
        } else if !self.iterators[idx].exhausted {
            self.drained.push(idx);
        }

        // Record the visit and generate answers for new combinations —
        // predecessor chains of finalised nodes are frozen (Dijkstra), so
        // path_to_origin is exact even though the iterator ran ahead.
        let keyword = self.iterators[idx].it.keyword;
        let lists = self
            .visited_by
            .entry(m)
            .or_insert_with(|| vec![Vec::new(); self.num_keywords]);
        lists[keyword].push(idx);
        let all_reached = lists.iter().all(|l| !l.is_empty());
        if all_reached {
            let combos = enumerate_combinations(lists, keyword, idx, MAX_COMBINATIONS_PER_VISIT);
            for combo in combos {
                if let Some(cap) = self.ctx.params.max_generated {
                    if self.core.stats.answers_generated >= cap {
                        break;
                    }
                }
                let mut paths = Vec::with_capacity(self.num_keywords);
                let mut ok = true;
                for iter_idx in &combo {
                    match self.iterators[*iter_idx].it.path_to_origin(m) {
                        Some(p) => paths.push(p),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let tree = AnswerTree::new(m, paths, graph, self.ctx.prestige, &self.model);
                self.core.stats.answers_generated += 1;
                self.heap.insert(
                    tree,
                    self.core.started.elapsed(),
                    self.core.stats.nodes_explored,
                );
            }
        }

        // Same coarse release bound as the sequential engine: any future
        // answer pays at least `dist_m` per keyword path still to come.
        let min_future = self.num_keywords as f64 * dist_m;
        let released = self.heap.release(
            min_future,
            self.core.started.elapsed(),
            self.core.stats.nodes_explored,
        );
        self.core.push_released(self.ctx.params.top_k, released);
    }

    fn finish(&mut self) {
        if self.core.done {
            return;
        }
        let released = self
            .heap
            .flush(self.core.started.elapsed(), self.core.stats.nodes_explored);
        self.core.push_released(self.ctx.params.top_k, released);
        self.core.seal(
            self.heap.duplicates_discarded(),
            self.heap.non_minimal_discarded(),
        );
    }
}

impl<'a> ExpansionMachine for ShardedMiExpander<'a> {
    fn core(&self) -> &StreamCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut StreamCore {
        &mut self.core
    }

    fn answer_work_budget(&self) -> Option<usize> {
        self.ctx.params.answer_work_budget
    }

    fn is_cancelled(&self) -> bool {
        self.ctx.is_cancelled()
    }

    fn observer(&self) -> Option<&banks_obs::WorkCounters> {
        self.ctx.observer
    }

    fn advance(&mut self) {
        ShardedMiExpander::advance(self)
    }

    fn finish(&mut self) {
        ShardedMiExpander::finish(self)
    }
}

impl<'a> Iterator for ShardedMiExpander<'a> {
    type Item = RankedAnswer;

    fn next(&mut self) -> Option<RankedAnswer> {
        next_answer(self)
    }
}

impl<'a> AnswerStream for ShardedMiExpander<'a> {
    fn stats(&self) -> SearchStats {
        self.core.live_stats()
    }

    fn engine_name(&self) -> &'static str {
        "ScatterGather"
    }

    fn is_exhausted(&self) -> bool {
        self.core.is_exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SearchParams;
    use crate::stream::drain;
    use banks_graph::builder::graph_from_edges;
    use banks_graph::DataGraph;
    use banks_obs::ShardTimes;
    use banks_prestige::PrestigeVector;
    use banks_textindex::KeywordMatches;

    fn uniform(graph: &DataGraph) -> PrestigeVector {
        PrestigeVector::uniform_for(graph)
    }

    /// A graph with many origins per keyword so several iterators run per
    /// shard and the merge genuinely interleaves.
    fn busy_graph() -> (DataGraph, KeywordMatches) {
        let mut edges = Vec::new();
        for i in 0..30u32 {
            edges.push((31 + i, i));
            edges.push((31 + i, 61));
        }
        // a second hub reachable from half the papers
        for i in 0..15u32 {
            edges.push((62 + i, 2 * i));
            edges.push((62 + i, 77));
        }
        let g = graph_from_edges(78, &edges);
        let m = KeywordMatches::from_sets(vec![
            ("database", (0..30).map(NodeId).collect()),
            ("author", vec![NodeId(61), NodeId(77)]),
        ]);
        (g, m)
    }

    fn assert_identical(g: &DataGraph, m: &KeywordMatches, params: SearchParams, shards: usize) {
        let p = uniform(g);
        let base = drain(BackwardExpandingSearch::new().start(QueryContext::new(g, &p, m, params)));
        let sharded = drain(
            ScatterGatherSearch::new()
                .start(QueryContext::new(g, &p, m, params).with_shards(shards)),
        );
        assert_eq!(
            base.answers.len(),
            sharded.answers.len(),
            "answer counts differ at K={shards}"
        );
        for (a, b) in base.answers.iter().zip(&sharded.answers) {
            assert_eq!(a.rank, b.rank, "rank order differs at K={shards}");
            assert_eq!(
                a.tree.signature(),
                b.tree.signature(),
                "answer trees differ at K={shards}"
            );
            assert_eq!(
                a.timing.explored_at_generation,
                b.timing.explored_at_generation
            );
            assert_eq!(a.timing.explored_at_output, b.timing.explored_at_output);
        }
        assert_eq!(base.stats.nodes_explored, sharded.stats.nodes_explored);
        assert_eq!(base.stats.nodes_touched, sharded.stats.nodes_touched);
        assert_eq!(base.stats.edges_traversed, sharded.stats.edges_traversed);
        assert_eq!(
            base.stats.answers_generated,
            sharded.stats.answers_generated
        );
        assert_eq!(base.stats.truncated, sharded.stats.truncated);
    }

    #[test]
    fn every_shard_count_matches_the_sequential_engine() {
        let (g, m) = busy_graph();
        for shards in [1, 2, 4, 7] {
            assert_identical(&g, &m, SearchParams::with_top_k(50), shards);
        }
    }

    #[test]
    fn caps_and_budgets_cut_off_at_the_same_point() {
        let (g, m) = busy_graph();
        for shards in [2, 4, 7] {
            assert_identical(&g, &m, SearchParams::with_top_k(3), shards);
            assert_identical(
                &g,
                &m,
                SearchParams::with_top_k(50).max_explored(17),
                shards,
            );
            assert_identical(
                &g,
                &m,
                SearchParams::with_top_k(50).max_generated(5),
                shards,
            );
            assert_identical(
                &g,
                &m,
                SearchParams::with_top_k(50).answer_work_budget(9),
                shards,
            );
            assert_identical(&g, &m, SearchParams::with_top_k(50).dmax(2), shards);
        }
    }

    #[test]
    fn k1_returns_the_plain_mi_stream() {
        let (g, m) = busy_graph();
        let p = uniform(&g);
        let stream = ScatterGatherSearch::new().start(QueryContext::new(
            &g,
            &p,
            &m,
            SearchParams::default(),
        ));
        assert_eq!(stream.engine_name(), "MI-Backward");
    }

    #[test]
    fn non_mi_bases_delegate_to_their_engine() {
        let (g, m) = busy_graph();
        let p = uniform(&g);
        let ctx = QueryContext::new(&g, &p, &m, SearchParams::default()).with_shards(4);
        assert_eq!(
            ScatterGatherSearch::over_bidirectional()
                .start(ctx)
                .engine_name(),
            "Bidirectional"
        );
        assert_eq!(
            ScatterGatherSearch::over_si_backward()
                .start(ctx)
                .engine_name(),
            "SI-Backward"
        );
    }

    #[test]
    fn unmatched_keyword_returns_no_answers() {
        let g = graph_from_edges(3, &[(2, 0), (2, 1)]);
        let p = uniform(&g);
        let m = KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![])]);
        let outcome = drain(
            ScatterGatherSearch::new()
                .start(QueryContext::new(&g, &p, &m, SearchParams::default()).with_shards(4)),
        );
        assert!(outcome.answers.is_empty());
    }

    #[test]
    fn shard_times_accumulate_busy_time() {
        let (g, m) = busy_graph();
        let p = uniform(&g);
        let times = ShardTimes::new(4);
        let outcome = drain(
            ScatterGatherSearch::new().start(
                QueryContext::new(&g, &p, &m, SearchParams::with_top_k(50))
                    .with_shards(4)
                    .with_shard_times(&times),
            ),
        );
        assert!(!outcome.answers.is_empty());
        // the refill rounds attributed work to at least one shard slot
        // (micro-rounds can round to 0µs, so assert on participation via
        // the totals vector length instead of a strict positivity)
        assert_eq!(times.totals().len(), 4);
    }
}
