//! # banks-core
//!
//! The search algorithms of "Bidirectional Expansion For Keyword Search on
//! Graph Databases" (VLDB 2005), reimplemented in Rust around a **streaming
//! query API**: searches are lazily evaluated answer streams, and the
//! public entry point is a builder facade rather than positional arguments.
//!
//! ## The query facade
//!
//! [`Banks`] owns everything a query needs — the graph, node prestige, the
//! keyword index (built on demand from node labels when not supplied), and
//! an [`EngineRegistry`] mapping engine names to factories:
//!
//! ```
//! use banks_core::Banks;
//! use banks_graph::GraphBuilder;
//!
//! let mut builder = GraphBuilder::new();
//! let author = builder.add_node("author", "Jim Gray");
//! let paper = builder.add_node("paper", "Granularity of locks");
//! let writes = builder.add_node("writes", "w0");
//! builder.add_edge(writes, author).unwrap();
//! builder.add_edge(writes, paper).unwrap();
//! let graph = builder.build_default();
//!
//! let banks = Banks::open(&graph);
//! let session = banks.query(["gray", "locks"]).top_k(10);
//!
//! // Batch: run to completion.
//! let outcome = session.run();
//! assert_eq!(outcome.answers[0].tree.root, writes);
//!
//! // Streaming: answers arrive lazily; stop whenever you have enough.
//! let first = session.stream().next().unwrap();
//! assert_eq!(first.tree.root, writes);
//! ```
//!
//! ## The streaming execution model
//!
//! Every engine implements [`SearchEngine::start`], returning an
//! [`AnswerStream`] — an iterator over [`RankedAnswer`]s that drives the
//! expansion machinery *only* as far as the next emission:
//!
//! * `stream.next()` measures true time-to-first-answer (the paper's
//!   headline metric: Bidirectional expansion emits its first relevant
//!   answers orders of magnitude sooner than backward search),
//! * `stream.take(k)` or dropping the stream terminates the search early,
//! * [`AnswerStream::stats`] exposes live work counters,
//! * [`SearchParams::answer_work_budget`] bounds the nodes explored between
//!   emissions (a deterministic, load-independent deadline),
//! * a [`CancelToken`] attached via [`QueryContext::with_cancel`] (or
//!   [`QuerySession::cancel_token`]) aborts a running search from another
//!   thread within one expansion step.
//!
//! The batch [`SearchEngine::search`] is a default method that drains the
//! stream, so both paths share one implementation.
//!
//! ## Serving-tier building blocks
//!
//! [`ResultCache`] is a thread-safe LRU over completed [`SearchOutcome`]s,
//! keyed by `(graph epoch, normalized keywords, params/engine fingerprint)`
//! and interposed in the facade ([`Banks::with_cache`]); the concurrent
//! query service (`banks-service`) shares the same cache type, the same
//! cancellation tokens, and the same work-budget deadlines.
//!
//! ## The engines
//!
//! * [`BidirectionalSearch`] — the paper's contribution (Section 4): a
//!   single *incoming* iterator expanding backward from keyword nodes, a
//!   concurrent *outgoing* iterator expanding forward from potential answer
//!   roots, and a spreading-activation prioritisation of the combined
//!   frontier,
//! * [`BackwardExpandingSearch`] — the BANKS-I baseline (Section 3): one
//!   Dijkstra iterator per keyword node, scheduled by shortest distance
//!   ("MI-Backward" in the evaluation),
//! * [`SingleIteratorBackwardSearch`] — the intermediate "SI-Backward"
//!   variant of Section 4.6: a single merged backward iterator prioritised
//!   by distance, with no forward iterator and no activation,
//! * [`ScatterGatherSearch`] — the sharded merge engine: groups the
//!   multi-iterator engine's Dijkstra iterators by the shard owning their
//!   origin ([`banks_graph::ShardSpec`]), refills per-shard event buffers
//!   in parallel, and replays the merged events through the same output
//!   heap — byte-identical to the unsharded run for every shard count
//!   ([`QueryContext::with_shards`]).
//!
//! All three are registered in [`EngineRegistry::with_default_engines`] and
//! selectable by name (`"bidirectional"`, `"si-backward"`,
//! `"mi-backward"`, plus the ablation configurations), which is how the
//! benchmark harness and examples pick engines.
//!
//! Supporting structure: the answer-tree model and ranking of Section 2
//! ([`AnswerTree`], [`ScoreModel`]), the output buffering / top-k emission
//! logic of Section 4.5 ([`output::OutputHeap`]), a priori cost estimation
//! for admission scheduling ([`QueryCost`]), and instrumentation
//! ([`SearchStats`], [`SearchOutcome::time_to_first_answer`]) exposing the
//! paper's metrics.

#![deny(missing_docs)]

pub mod answer;
pub mod backward;
pub mod bidirectional;
pub mod cache;
pub mod cancel;
pub mod cost;
pub mod engine;
pub mod json;
pub mod output;
pub mod params;
pub mod pq;
pub mod registry;
pub mod relevance;
pub mod scatter;
pub mod score;
pub mod session;
pub mod si_backward;
pub mod stats;
pub mod stream;

pub use answer::AnswerTree;
pub use backward::BackwardExpandingSearch;
pub use bidirectional::{BidirectionalConfig, BidirectionalSearch};
pub use cache::{CacheKey, CachedStream, ResultCache};
pub use cancel::CancelToken;
pub use cost::QueryCost;
pub use engine::{RankedAnswer, SearchEngine, SearchOutcome};
pub use params::{EmissionPolicy, SearchParams};
pub use registry::{EngineRegistry, UnknownEngine};
pub use relevance::{GroundTruth, RecallPrecision};
pub use scatter::ScatterGatherSearch;
pub use score::{EdgeScoreCombiner, ScoreModel};
pub use session::{build_label_index, label_index_delta, Banks, QuerySession};
pub use si_backward::SingleIteratorBackwardSearch;
pub use stats::{AnswerTiming, SearchStats};
pub use stream::{drain, AnswerStream, QueryContext};
