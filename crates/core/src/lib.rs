//! # banks-core
//!
//! The search algorithms of "Bidirectional Expansion For Keyword Search on
//! Graph Databases" (VLDB 2005), reimplemented in Rust:
//!
//! * [`BidirectionalSearch`] — the paper's contribution (Section 4): a
//!   single *incoming* iterator expanding backward from keyword nodes, a
//!   concurrent *outgoing* iterator expanding forward from potential answer
//!   roots, and a spreading-activation prioritisation of the combined
//!   frontier,
//! * [`BackwardExpandingSearch`] — the BANKS-I baseline (Section 3): one
//!   Dijkstra iterator per keyword node, scheduled by shortest distance
//!   ("MI-Backward" in the evaluation),
//! * [`SingleIteratorBackwardSearch`] — the intermediate "SI-Backward"
//!   variant of Section 4.6: a single merged backward iterator prioritised
//!   by distance, with no forward iterator and no activation,
//! * the answer-tree model and ranking of Section 2 ([`AnswerTree`],
//!   [`ScoreModel`]), the output buffering / top-k emission logic of
//!   Section 4.5 ([`output::OutputHeap`]), and instrumentation
//!   ([`SearchStats`]) exposing the paper's metrics (nodes explored, nodes
//!   touched, generation time, output time).
//!
//! All engines implement the [`SearchEngine`] trait and consume the same
//! inputs: a [`banks_graph::DataGraph`], a
//! [`banks_prestige::PrestigeVector`], and the per-keyword origin sets
//! resolved by `banks-textindex` ([`banks_textindex::KeywordMatches`]).

pub mod answer;
pub mod backward;
pub mod bidirectional;
pub mod engine;
pub mod output;
pub mod params;
pub mod pq;
pub mod relevance;
pub mod score;
pub mod si_backward;
pub mod stats;

pub use answer::AnswerTree;
pub use backward::BackwardExpandingSearch;
pub use bidirectional::{BidirectionalConfig, BidirectionalSearch};
pub use engine::{RankedAnswer, SearchEngine, SearchOutcome};
pub use params::{EmissionPolicy, SearchParams};
pub use relevance::{GroundTruth, RecallPrecision};
pub use score::{EdgeScoreCombiner, ScoreModel};
pub use si_backward::SingleIteratorBackwardSearch;
pub use stats::{AnswerTiming, SearchStats};
