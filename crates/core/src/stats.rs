//! Search instrumentation.
//!
//! The paper's evaluation (Section 5.2) compares algorithms on three
//! metrics: the *nodes explored* (popped from `Q_in`/`Q_out` and processed),
//! the *nodes touched* (inserted into the queues), and the *time taken*.
//! It further distinguishes, per answer, the *generation time* (when the
//! answer tree was first built) from the *output time* (when the upper-bound
//! logic finally allowed it to be released).  [`SearchStats`] carries all of
//! these.

use std::time::Duration;

/// Timing/work marks recorded for a single emitted answer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnswerTiming {
    /// Wall-clock time from the start of the search until the answer tree
    /// was generated (inserted into the output heap).
    pub generated_at: Duration,
    /// Wall-clock time until the answer was output (released by the
    /// emission policy).
    pub output_at: Duration,
    /// Number of nodes explored when the answer was generated.
    pub explored_at_generation: usize,
    /// Number of nodes explored when the answer was output.
    pub explored_at_output: usize,
}

/// Aggregate counters of one search run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SearchStats {
    /// Nodes popped from a frontier queue and processed.
    pub nodes_explored: usize,
    /// Nodes inserted into a frontier queue (the paper's "nodes touched").
    pub nodes_touched: usize,
    /// Directed edges traversed while exploring.
    pub edges_traversed: usize,
    /// Answer trees generated (inserted into the output heap, after
    /// minimality filtering but before deduplication).
    pub answers_generated: usize,
    /// Duplicate answer trees that the output heap collapsed.
    pub duplicates_discarded: usize,
    /// Non-minimal answer trees discarded before reaching the output heap.
    pub non_minimal_discarded: usize,
    /// Answers actually output.
    pub answers_output: usize,
    /// Total wall-clock duration of the search.
    pub duration: Duration,
    /// Whether the search stopped because a safety cap
    /// (`max_explored` / `max_generated`) or the per-answer work budget
    /// (`answer_work_budget`) was hit.
    pub truncated: bool,
    /// Whether the search stopped because its [`crate::CancelToken`] was
    /// cancelled.  A cancelled stream is *not* exhausted: the engine simply
    /// stopped advancing.
    pub cancelled: bool,
}

impl SearchStats {
    /// Merges per-answer timing information into the summary figures the
    /// paper reports: the time and explored-count at which the *last* output
    /// answer was generated and output.
    pub fn last_answer_summary(timings: &[AnswerTiming]) -> Option<AnswerTiming> {
        timings.iter().copied().max_by_key(|t| t.output_at)
    }

    /// Ratio of another run's explored nodes to this run's (used for the
    /// paper's `SI-Bkwd / Bidir` style columns).  Returns `None` when this
    /// run explored zero nodes.
    pub fn explored_ratio_vs(&self, other: &SearchStats) -> Option<f64> {
        if self.nodes_explored == 0 {
            None
        } else {
            Some(other.nodes_explored as f64 / self.nodes_explored as f64)
        }
    }

    /// Ratio of another run's touched nodes to this run's.
    pub fn touched_ratio_vs(&self, other: &SearchStats) -> Option<f64> {
        if self.nodes_touched == 0 {
            None
        } else {
            Some(other.nodes_touched as f64 / self.nodes_touched as f64)
        }
    }

    /// Ratio of another run's duration to this run's.
    pub fn time_ratio_vs(&self, other: &SearchStats) -> Option<f64> {
        let mine = self.duration.as_secs_f64();
        if mine <= 0.0 {
            None
        } else {
            Some(other.duration.as_secs_f64() / mine)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(gen_ms: u64, out_ms: u64, gen_n: usize, out_n: usize) -> AnswerTiming {
        AnswerTiming {
            generated_at: Duration::from_millis(gen_ms),
            output_at: Duration::from_millis(out_ms),
            explored_at_generation: gen_n,
            explored_at_output: out_n,
        }
    }

    #[test]
    fn last_answer_summary_picks_latest_output() {
        let timings = vec![
            timing(1, 10, 5, 50),
            timing(3, 30, 15, 150),
            timing(2, 20, 10, 100),
        ];
        let last = SearchStats::last_answer_summary(&timings).unwrap();
        assert_eq!(last.output_at, Duration::from_millis(30));
        assert_eq!(last.explored_at_output, 150);
        assert!(SearchStats::last_answer_summary(&[]).is_none());
    }

    #[test]
    fn ratios() {
        let a = SearchStats {
            nodes_explored: 10,
            nodes_touched: 100,
            duration: Duration::from_millis(20),
            ..Default::default()
        };
        let b = SearchStats {
            nodes_explored: 40,
            nodes_touched: 300,
            duration: Duration::from_millis(60),
            ..Default::default()
        };
        assert_eq!(a.explored_ratio_vs(&b), Some(4.0));
        assert_eq!(a.touched_ratio_vs(&b), Some(3.0));
        assert!((a.time_ratio_vs(&b).unwrap() - 3.0).abs() < 1e-9);
        let zero = SearchStats::default();
        assert_eq!(zero.explored_ratio_vs(&b), None);
        assert_eq!(zero.touched_ratio_vs(&b), None);
        assert_eq!(zero.time_ratio_vs(&b), None);
    }

    #[test]
    fn default_stats_are_zeroed() {
        let s = SearchStats::default();
        assert_eq!(s.nodes_explored, 0);
        assert_eq!(s.answers_output, 0);
        assert!(!s.truncated);
        assert!(!s.cancelled);
    }
}
