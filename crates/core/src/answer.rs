//! The answer-tree model (Section 2.2 of the paper).
//!
//! An answer to a keyword query is "a minimal rooted directed tree,
//! embedded in the data graph, and containing at least one node from each
//! `S_i`".  We represent the tree as its root plus, for every keyword, the
//! root-to-leaf path that connects the root to a node matching that
//! keyword; the tree itself is the union of those paths.

use std::collections::BTreeSet;

use banks_graph::{DataGraph, NodeId};
use banks_prestige::PrestigeVector;

use crate::score::ScoreModel;

/// A scored answer tree.
#[derive(Clone, Debug, PartialEq)]
pub struct AnswerTree {
    /// The answer root (the "information node" connecting the keywords).
    pub root: NodeId,
    /// `paths[i]` is the node sequence from the root (inclusive) to the leaf
    /// matching keyword `i` (inclusive).  A keyword matched by the root
    /// itself has the single-element path `[root]`.
    pub paths: Vec<Vec<NodeId>>,
    /// Per-keyword path edge-weight sums `s(T, t_i)`.
    pub keyword_edge_scores: Vec<f64>,
    /// Aggregate edge score `E = Σ_i s(T, t_i)`.
    pub aggregate_edge_weight: f64,
    /// Tree node prestige `N` (root plus distinct keyword leaves).
    pub node_prestige: f64,
    /// Overall tree score (higher is better).
    pub score: f64,
}

impl AnswerTree {
    /// Builds and scores an answer tree from its root and per-keyword paths.
    ///
    /// Edge weights are looked up in the graph (taking the cheapest edge for
    /// every consecutive pair), so the stored scores always describe the
    /// tree that is actually reported, even if the search engine's internal
    /// distance labels were momentarily stale.
    ///
    /// # Panics
    /// Panics if a path is empty, does not start at the root, or uses an
    /// edge that does not exist in the graph.
    pub fn new(
        root: NodeId,
        paths: Vec<Vec<NodeId>>,
        graph: &DataGraph,
        prestige: &PrestigeVector,
        model: &ScoreModel,
    ) -> Self {
        assert!(
            !paths.is_empty(),
            "an answer tree needs at least one keyword path"
        );
        let mut keyword_edge_scores = Vec::with_capacity(paths.len());
        for path in &paths {
            assert!(!path.is_empty(), "keyword path must not be empty");
            assert_eq!(path[0], root, "keyword path must start at the root");
            let mut sum = 0.0;
            for pair in path.windows(2) {
                let w = graph.edge_weight(pair[0], pair[1]).unwrap_or_else(|| {
                    panic!("answer path uses missing edge {} -> {}", pair[0], pair[1])
                });
                sum += w;
            }
            keyword_edge_scores.push(sum);
        }
        let aggregate_edge_weight: f64 = keyword_edge_scores.iter().sum();

        // N = prestige of the root plus the distinct keyword leaves.
        let mut prestige_nodes: BTreeSet<NodeId> = BTreeSet::new();
        prestige_nodes.insert(root);
        for path in &paths {
            prestige_nodes.insert(*path.last().expect("path non-empty"));
        }
        let node_prestige: f64 = prestige_nodes.iter().map(|n| prestige.get(*n)).sum();

        let score = model.tree_score(aggregate_edge_weight, node_prestige);
        AnswerTree {
            root,
            paths,
            keyword_edge_scores,
            aggregate_edge_weight,
            node_prestige,
            score,
        }
    }

    /// Number of keywords the tree connects.
    pub fn num_keywords(&self) -> usize {
        self.paths.len()
    }

    /// The leaf node for keyword `i`.
    pub fn leaf(&self, i: usize) -> NodeId {
        *self.paths[i].last().expect("paths are non-empty")
    }

    /// All leaves in keyword order.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.paths.len()).map(|i| self.leaf(i)).collect()
    }

    /// The distinct nodes of the tree, sorted.
    pub fn nodes(&self) -> Vec<NodeId> {
        let set: BTreeSet<NodeId> = self.paths.iter().flatten().copied().collect();
        set.into_iter().collect()
    }

    /// The distinct directed edges of the tree, sorted.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let set: BTreeSet<(NodeId, NodeId)> = self
            .paths
            .iter()
            .flat_map(|p| p.windows(2).map(|w| (w[0], w[1])))
            .collect();
        set.into_iter().collect()
    }

    /// Number of distinct nodes (the paper's "answer size" column counts
    /// nodes of the relevant answers).
    pub fn size(&self) -> usize {
        self.nodes().len()
    }

    /// Depth of the tree: the longest keyword path, in edges.
    pub fn depth(&self) -> usize {
        self.paths.iter().map(|p| p.len() - 1).max().unwrap_or(0)
    }

    /// Canonical duplicate-detection signature: the sorted distinct node
    /// set.  Rotations of the same tree (same nodes, different root — the
    /// situation Section 4.6 describes) share a signature and are
    /// deduplicated by the output heap, which keeps the higher-scoring one.
    pub fn signature(&self) -> Vec<NodeId> {
        self.nodes()
    }

    /// Children of the root within the tree (first hop of every non-trivial
    /// keyword path, deduplicated).
    pub fn root_children(&self) -> Vec<NodeId> {
        let set: BTreeSet<NodeId> = self
            .paths
            .iter()
            .filter(|p| p.len() > 1)
            .map(|p| p[1])
            .collect();
        set.into_iter().collect()
    }

    /// The minimality test of Section 3: a tree whose root has only one
    /// child, while no keyword is matched by the root itself, is redundant
    /// (removing the root yields another, higher-scoring answer).  For a
    /// single-keyword query this means the only minimal answers are the
    /// matching nodes themselves.
    pub fn is_minimal(&self) -> bool {
        let root_matches_keyword = self.paths.iter().any(|p| p.len() == 1);
        root_matches_keyword || self.root_children().len() >= 2
    }

    /// Checks the structural invariants of the tree against the graph and
    /// the keyword origin sets: every path starts at the root, consecutive
    /// nodes are joined by graph edges, every leaf belongs to its keyword's
    /// origin set and the depth respects `dmax`.  Returns a human-readable
    /// error description on failure.  Used by integration tests and
    /// property tests.
    pub fn validate(
        &self,
        graph: &DataGraph,
        origin_sets: &[Vec<NodeId>],
        dmax: usize,
    ) -> Result<(), String> {
        if self.paths.len() != origin_sets.len() {
            return Err(format!(
                "tree has {} paths but query has {} keywords",
                self.paths.len(),
                origin_sets.len()
            ));
        }
        for (i, path) in self.paths.iter().enumerate() {
            if path.is_empty() {
                return Err(format!("path {i} is empty"));
            }
            if path[0] != self.root {
                return Err(format!("path {i} does not start at the root"));
            }
            if path.len() - 1 > dmax {
                return Err(format!(
                    "path {i} has {} edges, exceeding dmax {dmax}",
                    path.len() - 1
                ));
            }
            for pair in path.windows(2) {
                if !graph.has_edge(pair[0], pair[1]) {
                    return Err(format!(
                        "path {i} uses missing edge {} -> {}",
                        pair[0], pair[1]
                    ));
                }
            }
            let leaf = *path.last().expect("non-empty");
            if !origin_sets[i].contains(&leaf) {
                return Err(format!(
                    "leaf {leaf} of path {i} does not match keyword {i}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::builder::graph_from_weighted_edges;

    /// writes(2) -> author(0), writes(2) -> paper(1); root 2 connects both.
    fn tiny() -> (DataGraph, PrestigeVector) {
        let g = graph_from_weighted_edges(3, &[(2, 0, 1.0), (2, 1, 2.0)]);
        let p = PrestigeVector::uniform_for(&g);
        (g, p)
    }

    #[test]
    fn scores_simple_tree() {
        let (g, p) = tiny();
        let model = ScoreModel::paper_default();
        let t = AnswerTree::new(
            NodeId(2),
            vec![vec![NodeId(2), NodeId(0)], vec![NodeId(2), NodeId(1)]],
            &g,
            &p,
            &model,
        );
        assert_eq!(t.keyword_edge_scores, vec![1.0, 2.0]);
        assert_eq!(t.aggregate_edge_weight, 3.0);
        // N = prestige(root) + prestige(leaf0) + prestige(leaf1) = 3
        assert_eq!(t.node_prestige, 3.0);
        let expected = (1.0 / 4.0) * 3f64.powf(0.2);
        assert!((t.score - expected).abs() < 1e-12);
        assert_eq!(t.num_keywords(), 2);
        assert_eq!(t.leaves(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(t.nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(
            t.edges(),
            vec![(NodeId(2), NodeId(0)), (NodeId(2), NodeId(1))]
        );
        assert_eq!(t.size(), 3);
        assert_eq!(t.depth(), 1);
        assert!(t.is_minimal());
    }

    #[test]
    fn root_matching_keyword_has_trivial_path() {
        let (g, p) = tiny();
        let model = ScoreModel::paper_default();
        let t = AnswerTree::new(
            NodeId(2),
            vec![vec![NodeId(2)], vec![NodeId(2), NodeId(1)]],
            &g,
            &p,
            &model,
        );
        assert_eq!(t.keyword_edge_scores, vec![0.0, 2.0]);
        assert_eq!(t.leaf(0), NodeId(2));
        // prestige nodes: {2, 1}
        assert_eq!(t.node_prestige, 2.0);
        assert!(
            t.is_minimal(),
            "root matching a keyword keeps single-child trees minimal"
        );
    }

    #[test]
    fn shared_leaf_counted_once_in_prestige() {
        let (g, p) = tiny();
        let model = ScoreModel::paper_default();
        let t = AnswerTree::new(
            NodeId(2),
            vec![vec![NodeId(2), NodeId(0)], vec![NodeId(2), NodeId(0)]],
            &g,
            &p,
            &model,
        );
        // distinct prestige nodes: {2, 0}
        assert_eq!(t.node_prestige, 2.0);
        assert_eq!(t.aggregate_edge_weight, 2.0);
    }

    #[test]
    fn non_minimal_tree_detected() {
        // chain 0 -> 1 -> 2 with root 0 having a single child; keywords at 1 and 2.
        let g = graph_from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let p = PrestigeVector::uniform_for(&g);
        let model = ScoreModel::paper_default();
        let t = AnswerTree::new(
            NodeId(0),
            vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(0), NodeId(1), NodeId(2)],
            ],
            &g,
            &p,
            &model,
        );
        assert!(!t.is_minimal());
        assert_eq!(t.root_children(), vec![NodeId(1)]);
    }

    #[test]
    fn signature_ignores_root_rotation() {
        let g = graph_from_weighted_edges(3, &[(2, 0, 1.0), (2, 1, 1.0), (0, 2, 1.0)]);
        let p = PrestigeVector::uniform_for(&g);
        let model = ScoreModel::paper_default();
        let a = AnswerTree::new(
            NodeId(2),
            vec![vec![NodeId(2), NodeId(0)], vec![NodeId(2), NodeId(1)]],
            &g,
            &p,
            &model,
        );
        let b = AnswerTree::new(
            NodeId(0),
            vec![vec![NodeId(0)], vec![NodeId(0), NodeId(2), NodeId(1)]],
            &g,
            &p,
            &model,
        );
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn validate_catches_bad_trees() {
        let (g, _p) = tiny();
        let p = PrestigeVector::uniform_for(&g);
        let model = ScoreModel::paper_default();
        let t = AnswerTree::new(
            NodeId(2),
            vec![vec![NodeId(2), NodeId(0)], vec![NodeId(2), NodeId(1)]],
            &g,
            &p,
            &model,
        );
        let origin_ok = vec![vec![NodeId(0)], vec![NodeId(1)]];
        assert!(t.validate(&g, &origin_ok, 8).is_ok());
        // wrong leaf
        let origin_bad = vec![vec![NodeId(1)], vec![NodeId(1)]];
        assert!(t.validate(&g, &origin_bad, 8).is_err());
        // dmax too small
        assert!(t.validate(&g, &origin_ok, 0).is_err());
        // keyword count mismatch
        assert!(t.validate(&g, &origin_ok[..1], 8).is_err());
    }

    #[test]
    #[should_panic(expected = "missing edge")]
    fn construction_panics_on_missing_edge() {
        let (g, p) = tiny();
        let model = ScoreModel::paper_default();
        let _ = AnswerTree::new(NodeId(0), vec![vec![NodeId(0), NodeId(1)]], &g, &p, &model);
    }
}
