//! The output heap of Section 4.2.3 / 4.5.
//!
//! Answer trees are not generated in relevance order, so they are buffered
//! and re-ordered: "Results are output from the OutputHeap when we determine
//! that no better result can be generated".  The heap also discards
//! duplicates — "it is also possible for the same tree to appear in more
//! than one result, but with different roots; such duplicates with lower
//! score are discarded".

use std::collections::HashMap;
use std::time::Duration;

use banks_graph::NodeId;

use crate::answer::AnswerTree;
use crate::params::EmissionPolicy;
use crate::score::ScoreModel;
use crate::stats::AnswerTiming;

/// What happened to an answer handed to [`OutputHeap::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The answer was new and is now buffered.
    Buffered,
    /// The answer replaced a lower-scoring duplicate (same node set).
    ReplacedDuplicate,
    /// The answer was discarded because a duplicate with an equal or higher
    /// score is already buffered (or was already output).
    DiscardedDuplicate,
    /// The answer was discarded because it is not minimal (its root has a
    /// single child and does not itself match a keyword).
    DiscardedNonMinimal,
}

#[derive(Clone, Debug)]
struct Buffered {
    tree: AnswerTree,
    generated_at: Duration,
    explored_at_generation: usize,
}

/// Buffers generated answers until the emission policy allows their release.
#[derive(Debug)]
pub struct OutputHeap {
    model: ScoreModel,
    policy: EmissionPolicy,
    num_keywords: usize,
    max_node_prestige: f64,
    /// Remaining output budget (`top_k` minus answers already released).
    /// Guards the degenerate `top_k == 0` request: such a heap buffers and
    /// deduplicates but never releases anything.
    remaining_budget: usize,
    buffered: HashMap<Vec<NodeId>, Buffered>,
    /// Signatures already output, with the score they were output at, so
    /// later re-discoveries of the same tree are suppressed.
    emitted: HashMap<Vec<NodeId>, f64>,
    duplicates_discarded: usize,
    non_minimal_discarded: usize,
}

impl OutputHeap {
    /// Creates an output heap releasing at most `top_k` answers over its
    /// lifetime.  `top_k == 0` is valid: the heap then never releases.
    pub fn new(
        model: ScoreModel,
        policy: EmissionPolicy,
        num_keywords: usize,
        max_node_prestige: f64,
        top_k: usize,
    ) -> Self {
        OutputHeap {
            model,
            policy,
            num_keywords,
            max_node_prestige,
            remaining_budget: top_k,
            buffered: HashMap::new(),
            emitted: HashMap::new(),
            duplicates_discarded: 0,
            non_minimal_discarded: 0,
        }
    }

    /// Number of answers currently buffered.
    pub fn buffered_len(&self) -> usize {
        self.buffered.len()
    }

    /// Number of answers the heap may still release before hitting `top_k`.
    pub fn remaining_budget(&self) -> usize {
        self.remaining_budget
    }

    /// Number of duplicate answers discarded so far.
    pub fn duplicates_discarded(&self) -> usize {
        self.duplicates_discarded
    }

    /// Number of non-minimal answers discarded so far.
    pub fn non_minimal_discarded(&self) -> usize {
        self.non_minimal_discarded
    }

    /// Inserts a freshly generated answer tree.
    pub fn insert(
        &mut self,
        tree: AnswerTree,
        generated_at: Duration,
        explored_at_generation: usize,
    ) -> InsertOutcome {
        if !tree.is_minimal() {
            self.non_minimal_discarded += 1;
            return InsertOutcome::DiscardedNonMinimal;
        }
        let signature = tree.signature();
        if let Some(prev_score) = self.emitted.get(&signature) {
            if *prev_score >= tree.score {
                self.duplicates_discarded += 1;
                return InsertOutcome::DiscardedDuplicate;
            }
            // A strictly better version of an already-output tree: the paper
            // does not retract output answers, so we also discard it but do
            // not count it as a duplicate "win".
            self.duplicates_discarded += 1;
            return InsertOutcome::DiscardedDuplicate;
        }
        match self.buffered.get(&signature) {
            Some(existing) if existing.tree.score >= tree.score => {
                self.duplicates_discarded += 1;
                InsertOutcome::DiscardedDuplicate
            }
            Some(_) => {
                self.buffered.insert(
                    signature,
                    Buffered {
                        tree,
                        generated_at,
                        explored_at_generation,
                    },
                );
                self.duplicates_discarded += 1;
                InsertOutcome::ReplacedDuplicate
            }
            None => {
                self.buffered.insert(
                    signature,
                    Buffered {
                        tree,
                        generated_at,
                        explored_at_generation,
                    },
                );
                InsertOutcome::Buffered
            }
        }
    }

    /// Releases every buffered answer whose score clears the emission
    /// policy's bar, given a lower bound on the aggregate edge weight of any
    /// answer not yet generated.  Released answers are returned in
    /// descending score order.  At most [`OutputHeap::remaining_budget`]
    /// answers are released; answers that clear the bar beyond the budget
    /// stay buffered (and can never be released, since the budget only
    /// shrinks).
    pub fn release(
        &mut self,
        min_future_edge_weight: f64,
        now: Duration,
        explored_now: usize,
    ) -> Vec<(AnswerTree, AnswerTiming)> {
        if self.remaining_budget == 0 {
            return Vec::new();
        }
        let release_all = min_future_edge_weight.is_infinite();
        let ready: Vec<Vec<NodeId>> = match self.policy {
            EmissionPolicy::Immediate => self.buffered.keys().cloned().collect(),
            EmissionPolicy::ExactBound => {
                let bound = self.model.score_upper_bound(
                    min_future_edge_weight,
                    self.max_node_prestige,
                    self.num_keywords,
                );
                self.buffered
                    .iter()
                    .filter(|(_, b)| release_all || b.tree.score >= bound - 1e-12)
                    .map(|(sig, _)| sig.clone())
                    .collect()
            }
            EmissionPolicy::Heuristic => self
                .buffered
                .iter()
                .filter(|(_, b)| {
                    release_all || b.tree.aggregate_edge_weight <= min_future_edge_weight + 1e-12
                })
                .map(|(sig, _)| sig.clone())
                .collect(),
        };

        let mut released: Vec<(AnswerTree, AnswerTiming)> = ready
            .into_iter()
            .filter_map(|sig| self.buffered.remove(&sig))
            .map(|b| {
                let timing = AnswerTiming {
                    generated_at: b.generated_at,
                    output_at: now,
                    explored_at_generation: b.explored_at_generation,
                    explored_at_output: explored_now,
                };
                (b.tree, timing)
            })
            .collect();
        released.sort_by(|a, b| {
            b.0.score
                .total_cmp(&a.0.score)
                .then_with(|| a.0.signature().cmp(&b.0.signature()))
        });
        // Enforce the lifetime output budget: overflow answers return to the
        // buffer untouched.
        for (tree, timing) in released.split_off(released.len().min(self.remaining_budget)) {
            self.buffered.insert(
                tree.signature(),
                Buffered {
                    tree,
                    generated_at: timing.generated_at,
                    explored_at_generation: timing.explored_at_generation,
                },
            );
        }
        self.remaining_budget -= released.len();
        for (tree, _) in &released {
            self.emitted.insert(tree.signature(), tree.score);
        }
        released
    }

    /// Releases everything that is still buffered (used when the search
    /// frontier is exhausted: no better answer can possibly be generated).
    pub fn flush(&mut self, now: Duration, explored_now: usize) -> Vec<(AnswerTree, AnswerTiming)> {
        self.release(f64::INFINITY, now, explored_now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EmissionPolicy;
    use banks_graph::builder::graph_from_weighted_edges;
    use banks_graph::DataGraph;
    use banks_prestige::PrestigeVector;

    fn setup() -> (DataGraph, PrestigeVector, ScoreModel) {
        // root 4 with two arms of different lengths, plus a rotation edge.
        let g = graph_from_weighted_edges(
            5,
            &[
                (4, 0, 1.0),
                (4, 1, 1.0),
                (4, 2, 1.0),
                (2, 3, 1.0),
                (0, 4, 1.0),
            ],
        );
        let p = PrestigeVector::uniform_for(&g);
        (g, p, ScoreModel::paper_default())
    }

    fn tree(
        g: &DataGraph,
        p: &PrestigeVector,
        m: &ScoreModel,
        root: u32,
        paths: Vec<Vec<u32>>,
    ) -> AnswerTree {
        AnswerTree::new(
            NodeId(root),
            paths
                .into_iter()
                .map(|p| p.into_iter().map(NodeId).collect())
                .collect(),
            g,
            p,
            m,
        )
    }

    /// Budget large enough to never interfere (the legacy engine-side cap).
    const UNCAPPED: usize = usize::MAX;

    #[test]
    fn immediate_policy_releases_everything_in_score_order() {
        let (g, p, m) = setup();
        let mut heap = OutputHeap::new(m, EmissionPolicy::Immediate, 2, p.max(), UNCAPPED);
        let short = tree(&g, &p, &m, 4, vec![vec![4, 0], vec![4, 1]]);
        let long = tree(&g, &p, &m, 4, vec![vec![4, 0], vec![4, 2, 3]]);
        assert_eq!(
            heap.insert(long.clone(), Duration::ZERO, 1),
            InsertOutcome::Buffered
        );
        assert_eq!(
            heap.insert(short.clone(), Duration::ZERO, 2),
            InsertOutcome::Buffered
        );
        let out = heap.release(0.0, Duration::from_millis(5), 10);
        assert_eq!(out.len(), 2);
        assert!(out[0].0.score >= out[1].0.score);
        assert_eq!(out[0].0.signature(), short.signature());
        assert_eq!(out[0].1.output_at, Duration::from_millis(5));
        assert_eq!(out[0].1.explored_at_output, 10);
        assert_eq!(heap.buffered_len(), 0);
    }

    #[test]
    fn exact_bound_holds_answers_back() {
        let (g, p, m) = setup();
        let mut heap = OutputHeap::new(m, EmissionPolicy::ExactBound, 2, p.max(), UNCAPPED);
        let short = tree(&g, &p, &m, 4, vec![vec![4, 0], vec![4, 1]]); // E = 2
        heap.insert(short.clone(), Duration::ZERO, 1);
        // Future answers could still have aggregate weight 0 -> bound is high,
        // nothing is released.
        assert!(heap.release(0.0, Duration::ZERO, 1).is_empty());
        assert_eq!(heap.buffered_len(), 1);
        // Once any future answer must weigh at least as much as ours (and
        // could at best tie our prestige), ours is safe to release.
        let out = heap.release(2.0, Duration::from_millis(1), 2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0.signature(), short.signature());
    }

    #[test]
    fn heuristic_releases_on_edge_weight_alone() {
        let (g, p, m) = setup();
        let mut heap = OutputHeap::new(m, EmissionPolicy::Heuristic, 2, p.max(), UNCAPPED);
        let short = tree(&g, &p, &m, 4, vec![vec![4, 0], vec![4, 1]]); // E = 2
        let long = tree(&g, &p, &m, 4, vec![vec![4, 0], vec![4, 2, 3]]); // E = 3
        heap.insert(short.clone(), Duration::ZERO, 1);
        heap.insert(long, Duration::ZERO, 1);
        let out = heap.release(2.0, Duration::ZERO, 1);
        assert_eq!(out.len(), 1, "only the E<=2 answer is released");
        assert_eq!(out[0].0.signature(), short.signature());
        assert_eq!(heap.buffered_len(), 1);
    }

    #[test]
    fn duplicates_keep_best_score() {
        let (g, p, m) = setup();
        let mut heap = OutputHeap::new(m, EmissionPolicy::Immediate, 2, p.max(), UNCAPPED);
        // Same node set {0, 2, 3, 4} reached with different path splits:
        // a cheaper and a costlier version.
        let costly = tree(&g, &p, &m, 4, vec![vec![4, 2, 3], vec![4, 2, 3]]);
        let cheap = tree(&g, &p, &m, 4, vec![vec![4, 0], vec![4, 2, 3]]);
        // different node sets -> not duplicates
        assert_ne!(costly.signature(), cheap.signature());

        // true duplicates: same paths inserted twice
        assert_eq!(
            heap.insert(cheap.clone(), Duration::ZERO, 1),
            InsertOutcome::Buffered
        );
        assert_eq!(
            heap.insert(cheap.clone(), Duration::ZERO, 2),
            InsertOutcome::DiscardedDuplicate
        );
        assert_eq!(heap.duplicates_discarded(), 1);

        // a higher-scoring tree over the same node set replaces the buffered
        // one: the rotation rooted at 0 covers {0, 1, 4} with lower prestige
        // than the version rooted at 4.
        let rotation_worse = tree(&g, &p, &m, 0, vec![vec![0], vec![0, 4, 1]]);
        let rooted_better = tree(&g, &p, &m, 4, vec![vec![4, 0], vec![4, 1]]);
        assert_eq!(rotation_worse.signature(), rooted_better.signature());
        assert!(rooted_better.score > rotation_worse.score);
        let mut heap2 = OutputHeap::new(m, EmissionPolicy::Immediate, 2, p.max(), UNCAPPED);
        assert_eq!(
            heap2.insert(rotation_worse, Duration::ZERO, 1),
            InsertOutcome::Buffered
        );
        assert_eq!(
            heap2.insert(rooted_better.clone(), Duration::ZERO, 2),
            InsertOutcome::ReplacedDuplicate
        );
        let out = heap2.release(f64::INFINITY, Duration::ZERO, 3);
        assert_eq!(out.len(), 1);
        assert!((out[0].0.score - rooted_better.score).abs() < 1e-12);
    }

    #[test]
    fn already_output_trees_are_not_re_emitted() {
        let (g, p, m) = setup();
        let mut heap = OutputHeap::new(m, EmissionPolicy::Immediate, 2, p.max(), UNCAPPED);
        let t = tree(&g, &p, &m, 4, vec![vec![4, 0], vec![4, 1]]);
        heap.insert(t.clone(), Duration::ZERO, 1);
        assert_eq!(heap.release(0.0, Duration::ZERO, 1).len(), 1);
        assert_eq!(
            heap.insert(t, Duration::ZERO, 2),
            InsertOutcome::DiscardedDuplicate
        );
        assert!(heap.release(0.0, Duration::ZERO, 2).is_empty());
    }

    #[test]
    fn non_minimal_trees_are_rejected() {
        let g = graph_from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let p = PrestigeVector::uniform_for(&g);
        let m = ScoreModel::paper_default();
        let t = AnswerTree::new(
            NodeId(0),
            vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(0), NodeId(1), NodeId(2)],
            ],
            &g,
            &p,
            &m,
        );
        let mut heap = OutputHeap::new(m, EmissionPolicy::Immediate, 2, p.max(), UNCAPPED);
        assert_eq!(
            heap.insert(t, Duration::ZERO, 1),
            InsertOutcome::DiscardedNonMinimal
        );
        assert_eq!(heap.non_minimal_discarded(), 1);
        assert_eq!(heap.buffered_len(), 0);
    }

    #[test]
    fn flush_empties_the_heap() {
        let (g, p, m) = setup();
        let mut heap = OutputHeap::new(m, EmissionPolicy::ExactBound, 2, p.max(), UNCAPPED);
        heap.insert(
            tree(&g, &p, &m, 4, vec![vec![4, 0], vec![4, 1]]),
            Duration::ZERO,
            1,
        );
        heap.insert(
            tree(&g, &p, &m, 4, vec![vec![4, 0], vec![4, 2, 3]]),
            Duration::ZERO,
            1,
        );
        let out = heap.flush(Duration::from_millis(9), 99);
        assert_eq!(out.len(), 2);
        assert_eq!(heap.buffered_len(), 0);
        assert!(out[0].0.score >= out[1].0.score);
    }

    /// `top_k == 0`: the heap accepts inserts (including duplicates) but
    /// never releases, even on flush — no panics, no output.
    #[test]
    fn zero_top_k_never_releases() {
        let (g, p, m) = setup();
        let mut heap = OutputHeap::new(m, EmissionPolicy::Immediate, 2, p.max(), 0);
        assert_eq!(heap.remaining_budget(), 0);
        let t = tree(&g, &p, &m, 4, vec![vec![4, 0], vec![4, 1]]);
        assert_eq!(
            heap.insert(t.clone(), Duration::ZERO, 1),
            InsertOutcome::Buffered
        );
        assert_eq!(
            heap.insert(t, Duration::ZERO, 2),
            InsertOutcome::DiscardedDuplicate
        );
        assert!(heap.release(0.0, Duration::ZERO, 1).is_empty());
        assert!(heap.flush(Duration::ZERO, 1).is_empty());
        assert_eq!(
            heap.buffered_len(),
            1,
            "buffered answers survive, they just never leave"
        );
        assert_eq!(heap.remaining_budget(), 0);
    }

    /// A small budget truncates release in score order and parks the
    /// overflow back in the buffer; the budget never goes negative.
    #[test]
    fn budget_caps_release_and_preserves_overflow() {
        let (g, p, m) = setup();
        let mut heap = OutputHeap::new(m, EmissionPolicy::Immediate, 2, p.max(), 1);
        let short = tree(&g, &p, &m, 4, vec![vec![4, 0], vec![4, 1]]);
        let long = tree(&g, &p, &m, 4, vec![vec![4, 0], vec![4, 2, 3]]);
        heap.insert(long.clone(), Duration::ZERO, 1);
        heap.insert(short.clone(), Duration::ZERO, 1);
        let out = heap.flush(Duration::ZERO, 1);
        assert_eq!(out.len(), 1, "budget of one releases exactly one answer");
        assert_eq!(
            out[0].0.signature(),
            short.signature(),
            "the best answer wins the budget"
        );
        assert_eq!(heap.remaining_budget(), 0);
        assert_eq!(
            heap.buffered_len(),
            1,
            "the overflow answer returns to the buffer"
        );
        assert!(
            heap.flush(Duration::ZERO, 2).is_empty(),
            "an exhausted budget stays exhausted"
        );
    }

    /// Pathological duplicate pressure: many inserts of the same signature
    /// (before and after emission) are absorbed without panicking and are
    /// all counted.
    #[test]
    fn repeated_duplicate_signatures_never_panic() {
        let (g, p, m) = setup();
        let mut heap = OutputHeap::new(m, EmissionPolicy::Immediate, 2, p.max(), UNCAPPED);
        let t = tree(&g, &p, &m, 4, vec![vec![4, 0], vec![4, 1]]);
        assert_eq!(
            heap.insert(t.clone(), Duration::ZERO, 1),
            InsertOutcome::Buffered
        );
        for i in 0..50 {
            assert_eq!(
                heap.insert(t.clone(), Duration::ZERO, i),
                InsertOutcome::DiscardedDuplicate
            );
        }
        assert_eq!(heap.release(f64::INFINITY, Duration::ZERO, 50).len(), 1);
        for i in 0..50 {
            assert_eq!(
                heap.insert(t.clone(), Duration::ZERO, i),
                InsertOutcome::DiscardedDuplicate,
                "post-emission duplicates are suppressed"
            );
        }
        assert_eq!(heap.duplicates_discarded(), 100);
        assert_eq!(heap.buffered_len(), 0);
    }
}
