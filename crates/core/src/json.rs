//! JSON fragment rendering for answers and statistics.
//!
//! The network front-end (`banks-server`) streams [`RankedAnswer`]s over
//! server-sent events and reports [`SearchStats`] in its responses.  The
//! workspace carries no serialization dependency, so the JSON encoding is
//! hand-rolled here — next to the types it renders — and shared by every
//! consumer, which is what makes "the HTTP stream is byte-identical to the
//! in-process stream" a checkable property: both sides render through this
//! one module.
//!
//! Only *rendering* lives in core.  Request parsing (the other half of a
//! JSON story) is a transport concern and stays in the server crate.

use std::time::Duration;

use crate::answer::AnswerTree;
use crate::engine::RankedAnswer;
use crate::stats::{AnswerTiming, SearchStats};

/// Appends `s` to `buf` as a JSON string literal (quotes included).
///
/// Control characters, quotes and backslashes are escaped; everything else
/// passes through verbatim (the output is UTF-8, which JSON permits).
pub fn push_string(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            '\u{08}' => buf.push_str("\\b"),
            '\u{0c}' => buf.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Renders `s` as a JSON string literal.
pub fn string(s: &str) -> String {
    let mut buf = String::with_capacity(s.len() + 2);
    push_string(&mut buf, s);
    buf
}

/// Renders a float as a JSON number.  JSON has no NaN/Infinity, so
/// non-finite values render as `null`.
pub fn number(f: f64) -> String {
    if f.is_finite() {
        format!("{f}")
    } else {
        "null".to_string()
    }
}

/// A duration as integer microseconds (the unit every timing field in this
/// module uses; micros keep sub-millisecond TTFA observable without
/// floating-point noise).
pub fn duration_us(d: Duration) -> u128 {
    d.as_micros()
}

/// Renders an [`AnswerTree`] as a JSON object.
///
/// Node ids render as plain integers (ids are dense `u32`s); `paths[i]` is
/// the root-to-leaf node sequence for keyword `i`, exactly as stored.
pub fn answer_tree(tree: &AnswerTree) -> String {
    let mut buf = String::with_capacity(128);
    buf.push_str("{\"root\":");
    buf.push_str(&tree.root.0.to_string());
    buf.push_str(",\"score\":");
    buf.push_str(&number(tree.score));
    buf.push_str(",\"aggregate_edge_weight\":");
    buf.push_str(&number(tree.aggregate_edge_weight));
    buf.push_str(",\"node_prestige\":");
    buf.push_str(&number(tree.node_prestige));
    buf.push_str(",\"paths\":[");
    for (i, path) in tree.paths.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push('[');
        for (j, node) in path.iter().enumerate() {
            if j > 0 {
                buf.push(',');
            }
            buf.push_str(&node.0.to_string());
        }
        buf.push(']');
    }
    buf.push_str("],\"nodes\":[");
    for (i, node) in tree.nodes().iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&node.0.to_string());
    }
    buf.push_str("]}");
    buf
}

/// Renders an [`AnswerTiming`] as a JSON object (durations in µs).
pub fn answer_timing(timing: &AnswerTiming) -> String {
    format!(
        "{{\"generated_at_us\":{},\"output_at_us\":{},\
         \"explored_at_generation\":{},\"explored_at_output\":{}}}",
        duration_us(timing.generated_at),
        duration_us(timing.output_at),
        timing.explored_at_generation,
        timing.explored_at_output,
    )
}

/// Renders a [`RankedAnswer`] as a JSON object: rank, timing, tree.
///
/// This is the exact payload of one `answer` server-sent event, so a client
/// replaying an SSE stream and a caller holding the in-process
/// `QueryHandle` see byte-identical answer encodings.
pub fn ranked_answer(answer: &RankedAnswer) -> String {
    format!(
        "{{\"rank\":{},\"timing\":{},\"tree\":{}}}",
        answer.rank,
        answer_timing(&answer.timing),
        answer_tree(&answer.tree),
    )
}

/// Renders [`SearchStats`] as a JSON object (duration in µs).
pub fn search_stats(stats: &SearchStats) -> String {
    format!(
        "{{\"nodes_explored\":{},\"nodes_touched\":{},\"edges_traversed\":{},\
         \"answers_generated\":{},\"duplicates_discarded\":{},\
         \"non_minimal_discarded\":{},\"answers_output\":{},\
         \"duration_us\":{},\"truncated\":{},\"cancelled\":{}}}",
        stats.nodes_explored,
        stats.nodes_touched,
        stats.edges_traversed,
        stats.answers_generated,
        stats.duplicates_discarded,
        stats.non_minimal_discarded,
        stats.answers_output,
        duration_us(stats.duration),
        stats.truncated,
        stats.cancelled,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::ScoreModel;
    use banks_graph::builder::graph_from_weighted_edges;
    use banks_graph::NodeId;
    use banks_prestige::PrestigeVector;

    #[test]
    fn strings_are_escaped() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(string("\u{01}"), "\"\\u0001\"");
        assert_eq!(string("ünïcode"), "\"ünïcode\"");
    }

    #[test]
    fn numbers_render_as_json() {
        assert_eq!(number(1.0), "1");
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn answer_tree_renders_structure() {
        let g = graph_from_weighted_edges(3, &[(2, 0, 1.0), (2, 1, 2.0)]);
        let p = PrestigeVector::uniform_for(&g);
        let m = ScoreModel::paper_default();
        let tree = AnswerTree::new(
            NodeId(2),
            vec![vec![NodeId(2), NodeId(0)], vec![NodeId(2), NodeId(1)]],
            &g,
            &p,
            &m,
        );
        let json = answer_tree(&tree);
        assert!(json.starts_with("{\"root\":2,"));
        assert!(json.contains("\"paths\":[[2,0],[2,1]]"));
        assert!(json.contains("\"nodes\":[0,1,2]"));
        assert!(json.contains("\"aggregate_edge_weight\":3"));
    }

    #[test]
    fn ranked_answer_embeds_timing_and_tree() {
        let g = graph_from_weighted_edges(3, &[(2, 0, 1.0), (2, 1, 2.0)]);
        let p = PrestigeVector::uniform_for(&g);
        let m = ScoreModel::paper_default();
        let tree = AnswerTree::new(
            NodeId(2),
            vec![vec![NodeId(2), NodeId(0)], vec![NodeId(2), NodeId(1)]],
            &g,
            &p,
            &m,
        );
        let answer = RankedAnswer {
            rank: 3,
            tree,
            timing: AnswerTiming {
                generated_at: Duration::from_micros(12),
                output_at: Duration::from_micros(40),
                explored_at_generation: 5,
                explored_at_output: 9,
            },
        };
        let json = ranked_answer(&answer);
        assert!(json.starts_with("{\"rank\":3,"));
        assert!(json.contains("\"generated_at_us\":12"));
        assert!(json.contains("\"output_at_us\":40"));
        assert!(json.contains("\"tree\":{\"root\":2,"));
    }

    #[test]
    fn search_stats_render_flags_and_duration() {
        let stats = SearchStats {
            nodes_explored: 7,
            nodes_touched: 11,
            duration: Duration::from_micros(1234),
            truncated: true,
            ..SearchStats::default()
        };
        let json = search_stats(&stats);
        assert!(json.contains("\"nodes_explored\":7"));
        assert!(json.contains("\"duration_us\":1234"));
        assert!(json.contains("\"truncated\":true"));
        assert!(json.contains("\"cancelled\":false"));
    }
}
