//! JSON fragment rendering for answers and statistics.
//!
//! The network front-end (`banks-server`) streams [`RankedAnswer`]s over
//! server-sent events and reports [`SearchStats`] in its responses.  The
//! workspace carries no serialization dependency, so the JSON encoding is
//! hand-rolled here — next to the types it renders — and shared by every
//! consumer, which is what makes "the HTTP stream is byte-identical to the
//! in-process stream" a checkable property: both sides render through this
//! one module.
//!
//! Both halves of the JSON story live here: the renderers below and
//! [`parse`], a strict recursive-descent parser over the full value
//! grammar.  Sharing one module keeps the round-trip property — what any
//! crate in the workspace renders, any other crate can parse back — a
//! local invariant instead of a cross-crate convention.  The server uses
//! [`parse`] for request bodies; the service uses it for SLO config files.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::answer::AnswerTree;
use crate::engine::RankedAnswer;
use crate::stats::{AnswerTiming, SearchStats};

/// Appends `s` to `buf` as a JSON string literal (quotes included).
///
/// Control characters, quotes and backslashes are escaped; everything else
/// passes through verbatim (the output is UTF-8, which JSON permits).
pub fn push_string(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            '\u{08}' => buf.push_str("\\b"),
            '\u{0c}' => buf.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Renders `s` as a JSON string literal.
pub fn string(s: &str) -> String {
    let mut buf = String::with_capacity(s.len() + 2);
    push_string(&mut buf, s);
    buf
}

/// Renders a float as a JSON number.  JSON has no NaN/Infinity, so
/// non-finite values render as `null`.
pub fn number(f: f64) -> String {
    if f.is_finite() {
        format!("{f}")
    } else {
        "null".to_string()
    }
}

/// A duration as integer microseconds (the unit every timing field in this
/// module uses; micros keep sub-millisecond TTFA observable without
/// floating-point noise).
pub fn duration_us(d: Duration) -> u128 {
    d.as_micros()
}

/// Renders an [`AnswerTree`] as a JSON object.
///
/// Node ids render as plain integers (ids are dense `u32`s); `paths[i]` is
/// the root-to-leaf node sequence for keyword `i`, exactly as stored.
pub fn answer_tree(tree: &AnswerTree) -> String {
    let mut buf = String::with_capacity(128);
    buf.push_str("{\"root\":");
    buf.push_str(&tree.root.0.to_string());
    buf.push_str(",\"score\":");
    buf.push_str(&number(tree.score));
    buf.push_str(",\"aggregate_edge_weight\":");
    buf.push_str(&number(tree.aggregate_edge_weight));
    buf.push_str(",\"node_prestige\":");
    buf.push_str(&number(tree.node_prestige));
    buf.push_str(",\"paths\":[");
    for (i, path) in tree.paths.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push('[');
        for (j, node) in path.iter().enumerate() {
            if j > 0 {
                buf.push(',');
            }
            buf.push_str(&node.0.to_string());
        }
        buf.push(']');
    }
    buf.push_str("],\"nodes\":[");
    for (i, node) in tree.nodes().iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&node.0.to_string());
    }
    buf.push_str("]}");
    buf
}

/// Renders an [`AnswerTiming`] as a JSON object (durations in µs).
pub fn answer_timing(timing: &AnswerTiming) -> String {
    format!(
        "{{\"generated_at_us\":{},\"output_at_us\":{},\
         \"explored_at_generation\":{},\"explored_at_output\":{}}}",
        duration_us(timing.generated_at),
        duration_us(timing.output_at),
        timing.explored_at_generation,
        timing.explored_at_output,
    )
}

/// Renders a [`RankedAnswer`] as a JSON object: rank, timing, tree.
///
/// This is the exact payload of one `answer` server-sent event, so a client
/// replaying an SSE stream and a caller holding the in-process
/// `QueryHandle` see byte-identical answer encodings.
pub fn ranked_answer(answer: &RankedAnswer) -> String {
    format!(
        "{{\"rank\":{},\"timing\":{},\"tree\":{}}}",
        answer.rank,
        answer_timing(&answer.timing),
        answer_tree(&answer.tree),
    )
}

/// Renders [`SearchStats`] as a JSON object (duration in µs).
pub fn search_stats(stats: &SearchStats) -> String {
    format!(
        "{{\"nodes_explored\":{},\"nodes_touched\":{},\"edges_traversed\":{},\
         \"answers_generated\":{},\"duplicates_discarded\":{},\
         \"non_minimal_discarded\":{},\"answers_output\":{},\
         \"duration_us\":{},\"truncated\":{},\"cancelled\":{}}}",
        stats.nodes_explored,
        stats.nodes_touched,
        stats.edges_traversed,
        stats.answers_generated,
        stats.duplicates_discarded,
        stats.non_minimal_discarded,
        stats.answers_output,
        duration_us(stats.duration),
        stats.truncated,
        stats.cancelled,
    )
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.  Keys are unique (last occurrence wins), sorted by the
    /// map, which is fine for documents where member order carries no
    /// meaning.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// Member `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

/// Nesting bound: the documents this workspace parses are flat; anything
/// deeper than this is an attack or a bug, and a recursion bound beats a
/// stack overflow.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected {:?} at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // high surrogate: a \uXXXX *low* surrogate
                                // must follow; anything else is malformed
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&second) {
                                        char::from_u32(
                                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape at offset {}", self.pos)
                            })?);
                            continue;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at offset {}", self.pos))
                }
                Some(_) => {
                    // copy one UTF-8 scalar (input is &str, so boundaries are valid)
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::ScoreModel;
    use banks_graph::builder::graph_from_weighted_edges;
    use banks_graph::NodeId;
    use banks_prestige::PrestigeVector;

    #[test]
    fn strings_are_escaped() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(string("\u{01}"), "\"\\u0001\"");
        assert_eq!(string("ünïcode"), "\"ünïcode\"");
    }

    #[test]
    fn numbers_render_as_json() {
        assert_eq!(number(1.0), "1");
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn answer_tree_renders_structure() {
        let g = graph_from_weighted_edges(3, &[(2, 0, 1.0), (2, 1, 2.0)]);
        let p = PrestigeVector::uniform_for(&g);
        let m = ScoreModel::paper_default();
        let tree = AnswerTree::new(
            NodeId(2),
            vec![vec![NodeId(2), NodeId(0)], vec![NodeId(2), NodeId(1)]],
            &g,
            &p,
            &m,
        );
        let json = answer_tree(&tree);
        assert!(json.starts_with("{\"root\":2,"));
        assert!(json.contains("\"paths\":[[2,0],[2,1]]"));
        assert!(json.contains("\"nodes\":[0,1,2]"));
        assert!(json.contains("\"aggregate_edge_weight\":3"));
    }

    #[test]
    fn ranked_answer_embeds_timing_and_tree() {
        let g = graph_from_weighted_edges(3, &[(2, 0, 1.0), (2, 1, 2.0)]);
        let p = PrestigeVector::uniform_for(&g);
        let m = ScoreModel::paper_default();
        let tree = AnswerTree::new(
            NodeId(2),
            vec![vec![NodeId(2), NodeId(0)], vec![NodeId(2), NodeId(1)]],
            &g,
            &p,
            &m,
        );
        let answer = RankedAnswer {
            rank: 3,
            tree,
            timing: AnswerTiming {
                generated_at: Duration::from_micros(12),
                output_at: Duration::from_micros(40),
                explored_at_generation: 5,
                explored_at_output: 9,
            },
        };
        let json = ranked_answer(&answer);
        assert!(json.starts_with("{\"rank\":3,"));
        assert!(json.contains("\"generated_at_us\":12"));
        assert!(json.contains("\"output_at_us\":40"));
        assert!(json.contains("\"tree\":{\"root\":2,"));
    }

    #[test]
    fn search_stats_render_flags_and_duration() {
        let stats = SearchStats {
            nodes_explored: 7,
            nodes_touched: 11,
            duration: Duration::from_micros(1234),
            truncated: true,
            ..SearchStats::default()
        };
        let json = search_stats(&stats);
        assert!(json.contains("\"nodes_explored\":7"));
        assert!(json.contains("\"duration_us\":1234"));
        assert!(json.contains("\"truncated\":true"));
        assert!(json.contains("\"cancelled\":false"));
    }

    #[test]
    fn parses_flat_request_bodies() {
        let v = parse(r#"{"q":"jim gray","top_k":5,"engine":"si-backward"}"#).unwrap();
        assert_eq!(v.get("q").and_then(JsonValue::as_str), Some("jim gray"));
        assert_eq!(v.get("top_k").and_then(JsonValue::as_usize), Some(5));
        assert_eq!(
            v.get("engine").and_then(JsonValue::as_str),
            Some("si-backward")
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nested_values_and_arrays() {
        let v =
            parse(r#"{"keywords":["jim","gray"],"opts":{"deep":[1,2.5,-3]},"b":true,"n":null}"#)
                .unwrap();
        match v.get("keywords") {
            Some(JsonValue::Array(items)) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0].as_str(), Some("jim"));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(
            v.get("opts").and_then(|o| o.get("deep")),
            Some(&JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::Number(2.5),
                JsonValue::Number(-3.0)
            ]))
        );
        assert_eq!(v.get("b"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
    }

    #[test]
    fn parses_string_escapes() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        // surrogate pair for U+1F600, raw and escaped
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        let v = parse(r#""\uD83D\uDE00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_surrogates() {
        for bad in [
            r#""\uD800""#,       // lone high surrogate
            r#""\uD800A""#,      // high surrogate + non-surrogate (not U+10041!)
            r#""\uDC00""#,       // lone low surrogate
            r#""\uD800\uD800""#, // high + high
        ] {
            assert!(parse(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            r#"{"a"}"#,
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "[1 2]",
            r#""unterminated"#,
            "tru",
            "01a",
            r#"{"a":1} trailing"#,
            r#""bad \x escape""#,
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn parser_roundtrips_this_modules_encodings() {
        // what the renderers above emit, the parser accepts — the two
        // halves of the wire agree
        let stats = SearchStats {
            nodes_explored: 42,
            truncated: true,
            ..Default::default()
        };
        let v = parse(&search_stats(&stats)).unwrap();
        assert_eq!(
            v.get("nodes_explored").and_then(JsonValue::as_usize),
            Some(42)
        );
        assert_eq!(v.get("truncated"), Some(&JsonValue::Bool(true)));
    }
}
