//! LRU result cache for repeated interactive queries.
//!
//! Interactive keyword search workloads repeat themselves: the same user
//! refines the same query, different users ask for the same popular paper.
//! The cache stores completed [`SearchOutcome`]s keyed by
//!
//! * the **graph epoch** ([`banks_graph::DataGraph::epoch`]) — a bumped
//!   epoch invalidates every entry for the old graph version,
//! * the **normalized keywords** — the same normalization the facade
//!   applies before resolving origin sets, so `"Jim GRAY"` and `"jim gray"`
//!   share an entry,
//! * a **fingerprint** of the search parameters
//!   ([`crate::SearchParams::fingerprint`]) and the engine name — different
//!   `top_k`, emission policy or engine never alias.
//!
//! The cache is thread-safe (a mutex around the table, atomics for the
//! hit/miss counters) and shared by the [`crate::Banks`] facade and the
//! concurrent query service, which both consult it before starting any
//! engine: a hit performs **zero** expansion work.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use banks_textindex::KeywordMatches;

use crate::engine::{RankedAnswer, SearchOutcome};
use crate::params::{Fnv1a, SearchParams};
use crate::stats::SearchStats;
use crate::stream::AnswerStream;

/// The composite cache key: `(graph epoch, normalized keywords, params +
/// engine fingerprint)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Epoch of the graph the query ran against.
    pub epoch: u64,
    /// Normalized keywords, in query order.
    pub keywords: Vec<String>,
    /// Fingerprint of the search parameters and the engine name.
    pub fingerprint: u64,
}

impl CacheKey {
    /// Builds a key from the graph epoch, already-normalized keywords, the
    /// parameter set, the engine (registry) name and the **resolved origin
    /// sets**.
    ///
    /// The origin sets participate because the same keywords can resolve to
    /// different node sets: hand-built [`KeywordMatches`] under identical
    /// names, or two facades sharing one cache but carrying different
    /// custom indexes.  Folding the sets into the fingerprint makes such
    /// pairs distinct keys instead of silently serving each other's
    /// results.
    pub fn new(
        epoch: u64,
        keywords: Vec<String>,
        params: &SearchParams,
        engine: &str,
        matches: &KeywordMatches,
    ) -> Self {
        let mut fnv = Fnv1a::new();
        fnv.write_u64(params.fingerprint());
        fnv.write_bytes(engine.as_bytes());
        for i in 0..matches.num_keywords() {
            let set = matches.origin_set(i);
            fnv.write_u64(set.len() as u64);
            for node in set {
                fnv.write_u64(node.index() as u64);
            }
        }
        CacheKey {
            epoch,
            keywords,
            fingerprint: fnv.finish(),
        }
    }
}

struct Entry {
    outcome: Arc<SearchOutcome>,
    last_used: u64,
}

struct Table {
    entries: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// A bounded, thread-safe LRU cache of completed search outcomes.
///
/// Capacity 0 disables the cache entirely (every lookup misses, nothing is
/// stored).  Eviction is least-recently-used; lookups refresh recency.
///
/// ## Admission policy
///
/// By default every completed outcome is stored.  Under a mixed workload
/// that lets a stream of trivial queries (one origin node, answered in a
/// handful of expansion steps) evict the expensive outcomes that are the
/// whole point of caching — re-running a tiny query costs less than the
/// cache slot it occupies.  [`ResultCache::min_work`] sets a cost threshold
/// in nodes explored ([`crate::SearchStats::nodes_explored`]): outcomes
/// measured below it are *not admitted* (counted in
/// [`ResultCache::admission_rejected`]), while lookups behave exactly as
/// before.  The threshold trades recomputation of cheap queries for
/// retention of expensive ones; 0 (the default) admits everything.
pub struct ResultCache {
    capacity: usize,
    min_work: u64,
    table: Mutex<Table>,
    hits: AtomicU64,
    misses: AtomicU64,
    admission_rejected: AtomicU64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` outcomes, admitting every
    /// completed outcome (no cost threshold).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            min_work: 0,
            table: Mutex::new(Table {
                entries: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            admission_rejected: AtomicU64::new(0),
        }
    }

    /// Sets the admission threshold: only outcomes whose measured work
    /// (`stats.nodes_explored`) is at least `min_work` are stored, so tiny
    /// queries stop evicting expensive ones.  Builder-style — call before
    /// sharing the cache.
    pub fn min_work(mut self, min_work: u64) -> Self {
        self.min_work = min_work;
        self
    }

    /// The configured admission threshold (0 admits everything).
    pub fn admission_threshold(&self) -> u64 {
        self.min_work
    }

    /// Maximum number of cached outcomes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        self.table.lock().expect("cache lock").entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a key, refreshing its recency and counting a hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<SearchOutcome>> {
        let mut table = self.table.lock().expect("cache lock");
        table.tick += 1;
        let tick = table.tick;
        match table.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.outcome))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an outcome, evicting the least-recently-used entry when full.
    /// No-op when the capacity is 0 or the outcome's measured work falls
    /// below the [admission threshold](ResultCache::min_work).
    pub fn insert(&self, key: CacheKey, outcome: Arc<SearchOutcome>) {
        if self.capacity == 0 {
            return;
        }
        if (outcome.stats.nodes_explored as u64) < self.min_work {
            self.admission_rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut table = self.table.lock().expect("cache lock");
        table.tick += 1;
        let tick = table.tick;
        if !table.entries.contains_key(&key) && table.entries.len() >= self.capacity {
            // O(capacity) eviction scan: capacities are small (hundreds)
            // and insertion is off the per-answer hot path.
            if let Some(lru) = table
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                table.entries.remove(&lru);
            }
        }
        table.entries.insert(
            key,
            Entry {
                outcome,
                last_used: tick,
            },
        );
    }

    /// Drops every cached outcome (counters are kept).
    pub fn clear(&self) {
        self.table.lock().expect("cache lock").entries.clear();
    }

    /// Drops every outcome cached under the given graph epoch, returning how
    /// many entries were removed.
    ///
    /// Entries for a superseded epoch can never be hit again (keys carry the
    /// epoch), so after a graph swap they are dead weight; a service that
    /// *owns* its cache reclaims the space eagerly with this call.  A cache
    /// **shared** across services must not be purged this way — another
    /// service may still be serving that epoch.
    pub fn evict_epoch(&self, epoch: u64) -> usize {
        let mut table = self.table.lock().expect("cache lock");
        let before = table.entries.len();
        table.entries.retain(|key, _| key.epoch != epoch);
        before - table.entries.len()
    }

    /// Number of completed outcomes refused admission because their measured
    /// work fell below the [threshold](ResultCache::min_work).
    pub fn admission_rejected(&self) -> u64 {
        self.admission_rejected.load(Ordering::Relaxed)
    }

    /// Number of lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }
}

/// An [`AnswerStream`] replaying a cached outcome: the answers arrive in
/// their original order with the original stats, and no engine runs.
pub struct CachedStream {
    answers: std::collections::VecDeque<RankedAnswer>,
    stats: SearchStats,
    engine_name: &'static str,
}

impl CachedStream {
    /// Builds a replay stream over a cached outcome.
    pub fn new(outcome: &SearchOutcome) -> Self {
        CachedStream {
            answers: outcome.answers.iter().cloned().collect(),
            stats: outcome.stats.clone(),
            engine_name: "cached",
        }
    }
}

impl Iterator for CachedStream {
    type Item = RankedAnswer;

    fn next(&mut self) -> Option<RankedAnswer> {
        self.answers.pop_front()
    }
}

impl AnswerStream for CachedStream {
    fn stats(&self) -> SearchStats {
        self.stats.clone()
    }

    fn engine_name(&self) -> &'static str {
        self.engine_name
    }

    fn is_exhausted(&self) -> bool {
        self.answers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches_for(word: &str) -> KeywordMatches {
        KeywordMatches::from_sets(vec![(word, vec![banks_graph::NodeId(0)])])
    }

    fn key(epoch: u64, word: &str) -> CacheKey {
        CacheKey::new(
            epoch,
            vec![word.to_string()],
            &SearchParams::default(),
            "bidirectional",
            &matches_for(word),
        )
    }

    fn outcome(n: usize) -> Arc<SearchOutcome> {
        Arc::new(SearchOutcome {
            answers: Vec::new(),
            stats: SearchStats {
                nodes_explored: n,
                ..SearchStats::default()
            },
        })
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = ResultCache::new(4);
        let k = key(1, "gray");
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.misses(), 1);
        cache.insert(k.clone(), outcome(7));
        let hit = cache.get(&k).expect("hit");
        assert_eq!(hit.stats.nodes_explored, 7);
        assert_eq!(cache.hits(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn key_components_never_alias() {
        let cache = ResultCache::new(8);
        cache.insert(key(1, "gray"), outcome(1));
        // different epoch
        assert!(cache.get(&key(2, "gray")).is_none());
        // different keywords
        assert!(cache.get(&key(1, "locks")).is_none());
        // different params
        let other_params = CacheKey::new(
            1,
            vec!["gray".to_string()],
            &SearchParams::with_top_k(99),
            "bidirectional",
            &matches_for("gray"),
        );
        assert!(cache.get(&other_params).is_none());
        // different engine
        let other_engine = CacheKey::new(
            1,
            vec!["gray".to_string()],
            &SearchParams::default(),
            "mi-backward",
            &matches_for("gray"),
        );
        assert!(cache.get(&other_engine).is_none());
        // same name, different origin sets: hand-built matches must not
        // serve each other's results
        let other_sets = CacheKey::new(
            1,
            vec!["gray".to_string()],
            &SearchParams::default(),
            "bidirectional",
            &KeywordMatches::from_sets(vec![("gray", vec![banks_graph::NodeId(5)])]),
        );
        assert!(cache.get(&other_sets).is_none());
        // the original still resolves
        assert!(cache.get(&key(1, "gray")).is_some());
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.insert(key(1, "a"), outcome(1));
        cache.insert(key(1, "b"), outcome(2));
        // touch "a" so "b" is the LRU entry
        assert!(cache.get(&key(1, "a")).is_some());
        cache.insert(key(1, "c"), outcome(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1, "a")).is_some());
        assert!(cache.get(&key(1, "b")).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1, "c")).is_some());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = ResultCache::new(0);
        cache.insert(key(1, "a"), outcome(1));
        assert!(cache.is_empty());
        assert!(cache.get(&key(1, "a")).is_none());
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let cache = ResultCache::new(1);
        cache.insert(key(1, "a"), outcome(1));
        cache.insert(key(1, "a"), outcome(9));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(1, "a")).unwrap().stats.nodes_explored, 9);
    }

    #[test]
    fn admission_threshold_rejects_cheap_outcomes() {
        let cache = ResultCache::new(4).min_work(100);
        assert_eq!(cache.admission_threshold(), 100);
        // measured work below the threshold: refused, counted
        cache.insert(key(1, "tiny"), outcome(5));
        assert!(cache.is_empty());
        assert_eq!(cache.admission_rejected(), 1);
        // at/above the threshold: admitted as usual
        cache.insert(key(1, "big"), outcome(100));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(1, "big")).is_some());
        assert_eq!(cache.admission_rejected(), 1);
    }

    #[test]
    fn cheap_queries_cannot_evict_expensive_ones() {
        let cache = ResultCache::new(1).min_work(50);
        cache.insert(key(1, "expensive"), outcome(500));
        for i in 0..10 {
            cache.insert(key(1, &format!("tiny{i}")), outcome(1));
        }
        assert!(
            cache.get(&key(1, "expensive")).is_some(),
            "sub-threshold outcomes must not displace the expensive entry"
        );
        assert_eq!(cache.admission_rejected(), 10);
    }

    #[test]
    fn evict_epoch_drops_only_that_epoch() {
        let cache = ResultCache::new(8);
        cache.insert(key(1, "a"), outcome(1));
        cache.insert(key(1, "b"), outcome(2));
        cache.insert(key(2, "a"), outcome(3));
        assert_eq!(cache.evict_epoch(1), 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(2, "a")).is_some());
        assert_eq!(cache.evict_epoch(1), 0, "already gone");
    }

    #[test]
    fn cached_stream_replays_in_order() {
        let out = SearchOutcome {
            answers: Vec::new(),
            stats: SearchStats {
                answers_output: 0,
                ..SearchStats::default()
            },
        };
        let mut stream = CachedStream::new(&out);
        assert!(stream.is_exhausted());
        assert!(stream.next().is_none());
        assert_eq!(stream.engine_name(), "cached");
        assert_eq!(stream.stats().answers_output, 0);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        // Capacity must hold every insert (4 threads × 50 keys): with a
        // smaller cache the per-insert `get` below races against LRU
        // eviction by the other threads and the test flakes.
        let cache = Arc::new(ResultCache::new(256));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let k = key(t, &format!("w{i}"));
                    cache.insert(k.clone(), outcome(i as usize));
                    assert!(cache.get(&k).is_some());
                }
            }));
        }
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(cache.len(), 200, "every insert retained, none evicted");
        assert!(cache.hits() >= 1);
    }
}
