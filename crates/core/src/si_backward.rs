//! The single-iterator Backward search baseline ("SI-Backward",
//! Section 4.6 of the paper).
//!
//! SI-Backward is "identical to Backward search except that it uses only one
//! merged backward iterator, just like Bidirectional search.  However, it
//! does not use a forward iterator, and its backward iterator is prioritized
//! only by distance from the keyword, as in the original backward search,
//! without any spreading activation component."
//!
//! The implementation therefore simply runs the shared expansion machinery
//! of [`crate::BidirectionalSearch`] with the outgoing iterator and the
//! activation prioritisation switched off.

use crate::bidirectional::{BidirectionalConfig, BidirectionalSearch};
use crate::engine::SearchEngine;
use crate::stream::{AnswerStream, QueryContext};

/// The SI-Backward search engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct SingleIteratorBackwardSearch;

impl SingleIteratorBackwardSearch {
    /// Creates the engine.
    pub fn new() -> Self {
        SingleIteratorBackwardSearch
    }

    /// The underlying configuration of the shared expander.
    pub fn config() -> BidirectionalConfig {
        BidirectionalConfig {
            enable_outgoing: false,
            use_activation: false,
        }
    }
}

impl SearchEngine for SingleIteratorBackwardSearch {
    fn name(&self) -> &'static str {
        "SI-Backward"
    }

    fn start<'a>(&self, ctx: QueryContext<'a>) -> Box<dyn AnswerStream + 'a> {
        BidirectionalSearch::with_config(Self::config()).start(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SearchParams;
    use banks_graph::builder::graph_from_edges;
    use banks_graph::NodeId;
    use banks_prestige::PrestigeVector;
    use banks_textindex::KeywordMatches;

    #[test]
    fn name_and_config() {
        assert_eq!(SingleIteratorBackwardSearch::new().name(), "SI-Backward");
        let cfg = SingleIteratorBackwardSearch::config();
        assert!(!cfg.enable_outgoing);
        assert!(!cfg.use_activation);
    }

    #[test]
    fn finds_simple_answer() {
        let g = graph_from_edges(3, &[(2, 0), (2, 1)]);
        let p = PrestigeVector::uniform_for(&g);
        let matches =
            KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![NodeId(1)])]);
        let outcome =
            SingleIteratorBackwardSearch::new().search(&g, &p, &matches, &SearchParams::default());
        assert_eq!(outcome.answers.len(), 1);
        assert_eq!(outcome.answers[0].tree.root, NodeId(2));
    }

    #[test]
    fn matches_bidirectional_answers_on_small_graph() {
        let g = graph_from_edges(
            9,
            &[
                (4, 0),
                (4, 1),
                (5, 1),
                (5, 2),
                (6, 2),
                (6, 3),
                (7, 3),
                (7, 0),
                (8, 0),
                (8, 2),
            ],
        );
        let p = PrestigeVector::uniform_for(&g);
        let matches =
            KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![NodeId(2)])]);
        let params = SearchParams::with_top_k(100);
        let si = SingleIteratorBackwardSearch::new().search(&g, &p, &matches, &params);
        let bidir = BidirectionalSearch::new().search(&g, &p, &matches, &params);
        let mut a = si.signatures();
        let mut b = bidir.signatures();
        a.sort();
        b.sort();
        assert_eq!(
            a, b,
            "SI-Backward and Bidirectional must report the same answers"
        );
    }
}
