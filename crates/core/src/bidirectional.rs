//! The Bidirectional expanding search algorithm (Section 4 of the paper).
//!
//! Two iterators share a single pool of per-node state:
//!
//! * the **incoming** iterator (`Q_in`) expands backward from keyword nodes
//!   — when a node `v` is popped, every edge `u -> v` is explored so that
//!   `u` learns (shorter) distances to the keywords `v` can reach;
//! * the **outgoing** iterator (`Q_out`) expands forward from *potential
//!   answer roots* (every node the incoming iterator has popped) — when a
//!   node `u` is popped, every edge `u -> v` is explored so that `u` learns
//!   distances through `v` and `v` itself becomes a new forward-frontier
//!   node.
//!
//! Both frontiers are prioritised by **spreading activation** (Section 4.3):
//! keyword nodes are seeded with `prestige / |S_i|`, every node retains
//! `1 - µ` of what it receives and spreads `µ` to its neighbours in inverse
//! proportion to edge weights, per-keyword activations combine by `max` and
//! the scheduling priority of a node is the sum over keywords.
//!
//! Setting [`BidirectionalConfig::enable_outgoing`] and
//! [`BidirectionalConfig::use_activation`] to `false` turns the engine into
//! the paper's SI-Backward baseline (single backward iterator prioritised by
//! distance), which is exactly how
//! [`crate::SingleIteratorBackwardSearch`] is implemented.

use std::collections::HashMap;

use banks_graph::NodeId;

use crate::answer::AnswerTree;
use crate::engine::{RankedAnswer, SearchEngine};
use crate::output::{InsertOutcome, OutputHeap};
use crate::pq::MaxPriorityQueue;
use crate::score::ScoreModel;
use crate::stats::SearchStats;
use crate::stream::{next_answer, AnswerStream, ExpansionMachine, QueryContext, StreamCore};

/// Configuration switches that turn the full Bidirectional algorithm into
/// its ablated variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BidirectionalConfig {
    /// Run the outgoing (forward) iterator.  Disabling it restricts the
    /// search to backward expansion only.
    pub enable_outgoing: bool,
    /// Prioritise the frontier by spreading activation.  When disabled, the
    /// frontier is ordered by distance from the nearest keyword node (the
    /// SI-Backward prioritisation).
    pub use_activation: bool,
}

impl Default for BidirectionalConfig {
    fn default() -> Self {
        BidirectionalConfig {
            enable_outgoing: true,
            use_activation: true,
        }
    }
}

/// The Bidirectional expanding search engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct BidirectionalSearch {
    config: BidirectionalConfig,
}

impl BidirectionalSearch {
    /// Creates the engine with the paper's configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the engine with explicit configuration switches (used for
    /// ablations and to implement SI-Backward).
    pub fn with_config(config: BidirectionalConfig) -> Self {
        BidirectionalSearch { config }
    }

    /// The active configuration.
    pub fn config(&self) -> BidirectionalConfig {
        self.config
    }
}

/// Display name of a configuration.
fn config_name(config: BidirectionalConfig) -> &'static str {
    match (config.enable_outgoing, config.use_activation) {
        (true, true) => "Bidirectional",
        (true, false) => "Bidirectional(no-activation)",
        (false, true) => "Backward(activation)",
        (false, false) => "SI-Backward",
    }
}

impl SearchEngine for BidirectionalSearch {
    fn name(&self) -> &'static str {
        config_name(self.config)
    }

    fn start<'a>(&self, ctx: QueryContext<'a>) -> Box<dyn AnswerStream + 'a> {
        Box::new(Expander::new(self.config, ctx))
    }
}

/// Per-node search state (Figure 2 of the paper).
struct NodeState {
    /// `dist_{u,i}`: best known path length from this node to a node in
    /// `S_i`.
    dist: Vec<f64>,
    /// `sp_{u,i}`: the child to follow for the best known path to `t_i`.
    sp: Vec<Option<NodeId>>,
    /// `a_{u,i}`: activation received from keyword `i`.
    act: Vec<f64>,
    /// Depth (in edges) from the nearest keyword node, assigned on first
    /// insertion into a queue.
    depth: u32,
    /// Explored parents `P_u`: nodes `w` for which the edge `w -> u` has
    /// been explored, along with that edge's weight.
    parents: Vec<(NodeId, f64)>,
    /// Already expanded by the incoming iterator (`X_in`).
    in_xin: bool,
    /// Already expanded by the outgoing iterator (`X_out`).
    in_xout: bool,
    /// Ever inserted into `Q_in` (for the touched-nodes metric).
    touched_in: bool,
    /// Ever inserted into `Q_out`.
    touched_out: bool,
    /// Aggregate edge weight of the best answer already emitted with this
    /// node as root (avoids re-emitting unchanged trees).
    best_emitted_weight: f64,
}

impl NodeState {
    fn new(num_keywords: usize) -> Self {
        NodeState {
            dist: vec![f64::INFINITY; num_keywords],
            sp: vec![None; num_keywords],
            act: vec![0.0; num_keywords],
            depth: u32::MAX,
            parents: Vec::new(),
            in_xin: false,
            in_xout: false,
            touched_in: false,
            touched_out: false,
            best_emitted_weight: f64::INFINITY,
        }
    }

    fn is_complete(&self) -> bool {
        self.dist.iter().all(|d| d.is_finite())
    }

    fn total_activation(&self) -> f64 {
        self.act.iter().sum()
    }

    fn min_dist(&self) -> f64 {
        self.dist.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Which queue an expansion step came from.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    Incoming,
    Outgoing,
}

/// Lazy per-keyword minimum of the frontier distances, used for the output
/// bound of Section 4.5.
struct FrontierBounds {
    /// One lazy min-heap per keyword holding `(dist, node)` snapshots.
    heaps: Vec<std::collections::BinaryHeap<std::cmp::Reverse<(OrderedF64, NodeId)>>>,
}

#[derive(PartialEq, PartialOrd)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl FrontierBounds {
    fn new(num_keywords: usize) -> Self {
        FrontierBounds {
            heaps: (0..num_keywords).map(|_| Default::default()).collect(),
        }
    }

    fn record(&mut self, keyword: usize, node: NodeId, dist: f64) {
        if dist.is_finite() {
            self.heaps[keyword].push(std::cmp::Reverse((OrderedF64(dist), node)));
        }
    }

    /// Estimate of the aggregate edge weight of any answer not yet
    /// generated, derived from the frontier distance labels (Section 4.5):
    /// the paper's `h(m_1, ..., m_k) = Σ_i m_i`, where `m_i` is the
    /// smallest distance label to keyword `i` among nodes still waiting in
    /// `Q_in` (keywords with an empty frontier fall back to the global
    /// minimum label).  Both emission policies consume this estimate; like
    /// the paper's own bound it is an approximation — nodes that already
    /// left the frontier may still complete into slightly better answers.
    fn min_future_edge_weight(
        &mut self,
        states: &HashMap<NodeId, NodeState>,
        q_in: &MaxPriorityQueue,
    ) -> f64 {
        let mut per_keyword: Vec<Option<f64>> = Vec::with_capacity(self.heaps.len());
        for (i, heap) in self.heaps.iter_mut().enumerate() {
            loop {
                match heap.peek() {
                    None => {
                        per_keyword.push(None);
                        break;
                    }
                    Some(std::cmp::Reverse((OrderedF64(d), node))) => {
                        let stale = match states.get(node) {
                            Some(state) => {
                                !q_in.contains(*node) || (state.dist[i] - *d).abs() > 1e-12
                            }
                            None => true,
                        };
                        if stale {
                            heap.pop();
                        } else {
                            per_keyword.push(Some(*d));
                            break;
                        }
                    }
                }
            }
        }
        let global_min = per_keyword
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min);
        if global_min.is_infinite() {
            return 0.0;
        }
        per_keyword.iter().map(|m| m.unwrap_or(global_min)).sum()
    }
}

/// The shared expansion machinery for Bidirectional and SI-Backward search,
/// structured as a resumable step machine: [`Expander::advance`] performs
/// one unit of work, and the [`Iterator`] implementation calls it until the
/// next answer is released.
struct Expander<'a> {
    config: BidirectionalConfig,
    ctx: QueryContext<'a>,
    model: ScoreModel,
    num_keywords: usize,
    states: HashMap<NodeId, NodeState>,
    q_in: MaxPriorityQueue,
    q_out: MaxPriorityQueue,
    heap: OutputHeap,
    bounds: FrontierBounds,
    /// Shared stream-driver state (ready queue, counters, lifecycle).
    core: StreamCore,
}

impl<'a> Expander<'a> {
    fn new(config: BidirectionalConfig, ctx: QueryContext<'a>) -> Self {
        let num_keywords = ctx.matches.num_keywords();
        let model = ctx.params.score_model();
        Expander {
            config,
            model,
            num_keywords,
            states: HashMap::new(),
            q_in: MaxPriorityQueue::new(),
            q_out: MaxPriorityQueue::new(),
            heap: OutputHeap::new(
                model,
                ctx.params.emission,
                num_keywords,
                ctx.prestige.max(),
                ctx.params.top_k,
            ),
            bounds: FrontierBounds::new(num_keywords),
            core: StreamCore::new(),
            ctx,
        }
    }

    fn state(&mut self, node: NodeId) -> &mut NodeState {
        let n = self.num_keywords;
        self.states.entry(node).or_insert_with(|| NodeState::new(n))
    }

    fn priority(&self, state: &NodeState) -> f64 {
        if self.config.use_activation {
            state.total_activation()
        } else {
            // Distance prioritisation: smaller distance = higher priority.
            -state.min_dist()
        }
    }

    /// Performs one unit of work: seeding on the first call, then exactly
    /// one frontier expansion (plus the release check) per call, finishing
    /// the search when the frontier is exhausted, `top_k` is produced, or a
    /// safety cap trips.  The control flow replicates the pre-streaming
    /// batch loop exactly, so draining the stream reproduces the batch
    /// results answer for answer.
    fn advance(&mut self) {
        if !self.core.seeded {
            self.core.begin();
            if self.num_keywords == 0 || !self.ctx.matches.all_keywords_matched() {
                self.finish();
                return;
            }
            self.seed();
            return;
        }

        if self.q_in.is_empty() && self.q_out.is_empty() {
            self.finish();
            return;
        }
        if self.core.produced >= self.ctx.params.top_k {
            self.finish();
            return;
        }
        if let Some(cap) = self.ctx.params.max_explored {
            if self.core.stats.nodes_explored >= cap {
                self.core.stats.truncated = true;
                self.finish();
                return;
            }
        }
        if let Some(cap) = self.ctx.params.max_generated {
            if self.core.stats.answers_generated >= cap {
                self.core.stats.truncated = true;
                self.finish();
                return;
            }
        }

        match self.pick_side() {
            Some(Side::Incoming) => self.expand_incoming(),
            Some(Side::Outgoing) => self.expand_outgoing(),
            None => {
                self.finish();
                return;
            }
        }
        self.release();
    }

    /// Ends the search: whatever is still buffered can safely be flushed
    /// (if we stopped early the remaining answers are still the best known
    /// ones), and the final statistics are sealed.
    fn finish(&mut self) {
        if self.core.done {
            return;
        }
        self.flush_remaining();
        self.core.seal(
            self.heap.duplicates_discarded(),
            self.heap.non_minimal_discarded(),
        );
    }

    /// Inserts all keyword nodes into `Q_in` with their seed activation
    /// (Equation 1 of the paper).
    fn seed(&mut self) {
        for i in 0..self.num_keywords {
            let origin: Vec<NodeId> = self.ctx.matches.origin_set(i).to_vec();
            let origin_size = origin.len().max(1) as f64;
            for u in origin {
                let prestige = self.ctx.prestige.get(u);
                let state = self.state(u);
                state.dist[i] = 0.0;
                state.sp[i] = None;
                state.act[i] = state.act[i].max(prestige / origin_size);
                state.depth = 0;
            }
        }
        let seeds: Vec<NodeId> = self.ctx.matches.all_origin_nodes();
        for u in seeds {
            self.state(u).touched_in = true;
            let prio = self.priority(&self.states[&u]);
            self.q_in.push(u, prio);
            self.core.stats.nodes_touched += 1;
            for i in 0..self.num_keywords {
                let d = self.states[&u].dist[i];
                self.bounds.record(i, u, d);
            }
            // Keyword nodes that already match every keyword are answers on
            // their own (single-keyword queries, or one node containing all
            // terms).
            if self.states[&u].is_complete() {
                self.emit(u);
            }
        }
    }

    /// Chooses the iterator whose best frontier node has the highest
    /// priority (Figure 3, the `switch` at line 5).
    fn pick_side(&mut self) -> Option<Side> {
        let best_in = self.q_in.peek();
        let best_out = if self.config.enable_outgoing {
            self.q_out.peek()
        } else {
            None
        };
        match (best_in, best_out) {
            (None, None) => None,
            (Some(_), None) => Some(Side::Incoming),
            (None, Some(_)) => Some(Side::Outgoing),
            (Some((_, p_in)), Some((_, p_out))) => {
                if p_in >= p_out {
                    Some(Side::Incoming)
                } else {
                    Some(Side::Outgoing)
                }
            }
        }
    }

    /// One expansion step of the incoming iterator (Figure 3, lines 6–14).
    fn expand_incoming(&mut self) {
        let Some((v, _)) = self.q_in.pop() else {
            return;
        };
        self.state(v).in_xin = true;
        self.core.stats.nodes_explored += 1;

        if self.state(v).is_complete() {
            self.emit(v);
        }

        let depth_v = self.states[&v].depth;
        if (depth_v as usize) < self.ctx.params.dmax {
            // Normalisation constant for backward activation spreading: the
            // received activation of v is split over its in-neighbours in
            // inverse proportion to the edge weights u -> v.
            let in_edges: Vec<(NodeId, f64)> = self
                .ctx
                .graph
                .in_edges(v)
                .map(|e| (e.from, e.weight))
                .collect();
            let z: f64 = in_edges.iter().map(|(_, w)| 1.0 / w).sum();
            for (u, w) in in_edges {
                self.core.stats.edges_traversed += 1;
                self.explore_edge(u, v, w, Side::Incoming, z);
                {
                    let state_u = self.state(u);
                    if !state_u.in_xin && state_u.depth == u32::MAX {
                        state_u.depth = depth_v + 1;
                    }
                }
                if !self.states[&u].in_xin && !self.q_in.contains(u) {
                    let newly_touched = !self.states[&u].touched_in;
                    self.state(u).touched_in = true;
                    let prio = self.priority(&self.states[&u]);
                    self.q_in.push(u, prio);
                    if newly_touched {
                        self.core.stats.nodes_touched += 1;
                    }
                    for i in 0..self.num_keywords {
                        let d = self.states[&u].dist[i];
                        self.bounds.record(i, u, d);
                    }
                }
            }
        }

        // Every node explored by the incoming iterator is a potential answer
        // root: hand it to the outgoing iterator (Figure 3, line 14).
        if self.config.enable_outgoing && !self.states[&v].in_xout && !self.states[&v].touched_out {
            self.state(v).touched_out = true;
            let prio = self.priority(&self.states[&v]);
            self.q_out.push(v, prio);
            self.core.stats.nodes_touched += 1;
        }
    }

    /// One expansion step of the outgoing iterator (Figure 3, lines 15–23).
    fn expand_outgoing(&mut self) {
        let Some((u, _)) = self.q_out.pop() else {
            return;
        };
        self.state(u).in_xout = true;
        self.core.stats.nodes_explored += 1;

        if self.state(u).is_complete() {
            self.emit(u);
        }

        let depth_u = self.states[&u].depth;
        if (depth_u as usize) < self.ctx.params.dmax {
            let out_edges: Vec<(NodeId, f64)> = self
                .ctx
                .graph
                .out_edges(u)
                .map(|e| (e.to, e.weight))
                .collect();
            let z: f64 = out_edges.iter().map(|(_, w)| 1.0 / w).sum();
            for (v, w) in out_edges {
                self.core.stats.edges_traversed += 1;
                self.explore_edge(u, v, w, Side::Outgoing, z);
                {
                    let state_v = self.state(v);
                    if !state_v.in_xout && state_v.depth == u32::MAX {
                        state_v.depth = depth_u + 1;
                    }
                }
                if !self.states[&v].in_xout && !self.q_out.contains(v) {
                    let newly_touched = !self.states[&v].touched_out;
                    self.state(v).touched_out = true;
                    let prio = self.priority(&self.states[&v]);
                    self.q_out.push(v, prio);
                    if newly_touched {
                        self.core.stats.nodes_touched += 1;
                    }
                }
            }
        }
    }

    /// `ExploreEdge(u, v)` of Figure 3: the edge `u -> v` propagates keyword
    /// distances from `v` to `u` and spreads activation.
    ///
    /// `normalisation` is the sum of inverse edge weights over which the
    /// spreading node divides the spread fraction `µ` of its activation
    /// (in-edges of `v` for the incoming side, out-edges of `u` for the
    /// outgoing side).
    fn explore_edge(&mut self, u: NodeId, v: NodeId, weight: f64, side: Side, normalisation: f64) {
        // Register u as an explored parent of v so later improvements of
        // dist_v can be propagated to u (the Attach procedure).
        {
            let state_v = self.state(v);
            if !state_v.parents.iter().any(|(p, _)| *p == u) {
                state_v.parents.push((u, weight));
            }
        }

        // Distance updates: u reaches keyword i through v.
        let dist_v = self
            .states
            .get(&v)
            .map(|s| s.dist.clone())
            .unwrap_or_default();
        let mut improved = false;
        {
            let state_u = self.state(u);
            for (i, d) in dist_v.iter().enumerate() {
                let candidate = d + weight;
                if candidate < state_u.dist[i] - 1e-12 {
                    state_u.dist[i] = candidate;
                    state_u.sp[i] = Some(v);
                    improved = true;
                }
            }
        }
        if improved {
            self.attach(u);
        }

        // Activation spreading (Section 4.3): backward along in-edges for
        // the incoming iterator, forward along out-edges for the outgoing
        // iterator.  Per-keyword activations combine by max.
        if self.config.use_activation && normalisation > 0.0 {
            let (spreader, receiver) = match side {
                Side::Incoming => (v, u),
                Side::Outgoing => (u, v),
            };
            let share = (1.0 / weight) / normalisation;
            let spread: Vec<f64> = self
                .states
                .get(&spreader)
                .map(|s| {
                    s.act
                        .iter()
                        .map(|a| a * self.ctx.params.mu * share)
                        .collect()
                })
                .unwrap_or_default();
            let mut changed = false;
            {
                let state_r = self.state(receiver);
                for (i, candidate) in spread.iter().enumerate() {
                    if *candidate > state_r.act[i] {
                        state_r.act[i] = *candidate;
                        changed = true;
                    }
                }
            }
            if changed {
                self.activate(receiver);
            }
        }
    }

    /// `Attach`: re-prioritise `u` and propagate its improved distances to
    /// all explored parents, best-first; emit any node that becomes (or
    /// remains) complete with a strictly better tree.
    fn attach(&mut self, start: NodeId) {
        let mut work = vec![start];
        let mut guard = 0usize;
        while let Some(node) = work.pop() {
            guard += 1;
            if guard > 100_000 {
                break; // safety valve; propagation is strictly improving so this should not trigger
            }
            self.reprioritise(node);
            if self.states[&node].is_complete() {
                self.emit(node);
            }
            // record frontier distances for the output bound
            if self.q_in.contains(node) {
                for i in 0..self.num_keywords {
                    let d = self.states[&node].dist[i];
                    self.bounds.record(i, node, d);
                }
            }
            let parents = self.states[&node].parents.clone();
            let dist_node = self.states[&node].dist.clone();
            for (parent, weight) in parents {
                let mut improved = false;
                {
                    let state_p = self.state(parent);
                    for (i, d) in dist_node.iter().enumerate() {
                        let candidate = d + weight;
                        if candidate < state_p.dist[i] - 1e-12 {
                            state_p.dist[i] = candidate;
                            state_p.sp[i] = Some(node);
                            improved = true;
                        }
                    }
                }
                if improved {
                    work.push(parent);
                }
            }
        }
    }

    /// `Activate`: re-prioritise the receiver and propagate increased
    /// activation backward to explored parents (attenuated by `µ` at every
    /// hop, so the propagation dies out geometrically).
    fn activate(&mut self, start: NodeId) {
        let mut work = vec![start];
        let mut guard = 0usize;
        while let Some(node) = work.pop() {
            guard += 1;
            if guard > 100_000 {
                break;
            }
            self.reprioritise(node);
            let parents = self.states[&node].parents.clone();
            if parents.is_empty() {
                continue;
            }
            let z: f64 = parents.iter().map(|(_, w)| 1.0 / w).sum();
            if z <= 0.0 {
                continue;
            }
            let act_node = self.states[&node].act.clone();
            let mu = self.ctx.params.mu;
            for (parent, weight) in parents {
                let share = (1.0 / weight) / z;
                let mut changed = false;
                {
                    let state_p = self.state(parent);
                    for (i, a) in act_node.iter().enumerate() {
                        let candidate = a * mu * share;
                        if candidate > state_p.act[i] {
                            state_p.act[i] = candidate;
                            changed = true;
                        }
                    }
                }
                if changed {
                    work.push(parent);
                }
            }
        }
    }

    /// Updates a node's queue priorities after its state changed.
    fn reprioritise(&mut self, node: NodeId) {
        let prio = self.priority(&self.states[&node]);
        if self.q_in.contains(node) {
            self.q_in.push(node, prio);
        }
        if self.q_out.contains(node) {
            self.q_out.push(node, prio);
        }
    }

    /// `Emit`: build the answer tree rooted at `node` from the `sp`
    /// pointers and insert it into the output heap.
    fn emit(&mut self, node: NodeId) {
        if let Some(cap) = self.ctx.params.max_generated {
            if self.core.stats.answers_generated >= cap {
                return;
            }
        }
        let state = &self.states[&node];
        let aggregate: f64 = state.dist.iter().sum();
        if aggregate >= state.best_emitted_weight - 1e-12 {
            return; // nothing better than what this root already produced
        }

        let mut paths = Vec::with_capacity(self.num_keywords);
        for i in 0..self.num_keywords {
            match self.trace_path(node, i) {
                Some(path) => paths.push(path),
                None => return, // inconsistent sp chain (should not happen)
            }
        }

        let tree = AnswerTree::new(node, paths, self.ctx.graph, self.ctx.prestige, &self.model);
        self.state(node).best_emitted_weight = aggregate;
        self.core.stats.answers_generated += 1;
        let elapsed = self.core.started.elapsed();
        let explored = self.core.stats.nodes_explored;
        let _: InsertOutcome = self.heap.insert(tree, elapsed, explored);
    }

    /// Follows the `sp` pointers from `root` to a node matching keyword `i`.
    fn trace_path(&self, root: NodeId, keyword: usize) -> Option<Vec<NodeId>> {
        let mut path = vec![root];
        let mut cur = root;
        let mut hops = 0usize;
        loop {
            let state = self.states.get(&cur)?;
            if state.dist[keyword] <= 0.0 {
                return Some(path);
            }
            let next = state.sp[keyword]?;
            if !self.ctx.graph.has_edge(cur, next) {
                return None;
            }
            path.push(next);
            cur = next;
            hops += 1;
            if hops > self.ctx.params.dmax + 2 {
                return None; // cycle guard
            }
        }
    }

    /// Releases buffered answers allowed by the emission policy.
    fn release(&mut self) {
        // Both emission policies use the paper's h(m_1..m_k) = Σ_i m_i
        // estimate; the ExactBound policy additionally folds in the maximum
        // node prestige (Section 4.5).  Output order is best-effort (the
        // recall/precision experiment quantifies this).
        let bound = self.bounds.min_future_edge_weight(&self.states, &self.q_in);
        let elapsed = self.core.started.elapsed();
        let explored = self.core.stats.nodes_explored;
        let released = self.heap.release(bound, elapsed, explored);
        self.core.push_released(self.ctx.params.top_k, released);
    }

    /// Flushes the heap at the end of the search.
    fn flush_remaining(&mut self) {
        let elapsed = self.core.started.elapsed();
        let explored = self.core.stats.nodes_explored;
        let released = self.heap.flush(elapsed, explored);
        self.core.push_released(self.ctx.params.top_k, released);
    }
}

impl<'a> ExpansionMachine for Expander<'a> {
    fn core(&self) -> &StreamCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut StreamCore {
        &mut self.core
    }

    fn answer_work_budget(&self) -> Option<usize> {
        self.ctx.params.answer_work_budget
    }

    fn is_cancelled(&self) -> bool {
        self.ctx.is_cancelled()
    }

    fn observer(&self) -> Option<&banks_obs::WorkCounters> {
        self.ctx.observer
    }

    fn advance(&mut self) {
        Expander::advance(self)
    }

    fn finish(&mut self) {
        Expander::finish(self)
    }
}

impl<'a> Iterator for Expander<'a> {
    type Item = RankedAnswer;

    fn next(&mut self) -> Option<RankedAnswer> {
        next_answer(self)
    }
}

impl<'a> AnswerStream for Expander<'a> {
    fn stats(&self) -> SearchStats {
        self.core.live_stats()
    }

    fn engine_name(&self) -> &'static str {
        config_name(self.config)
    }

    fn is_exhausted(&self) -> bool {
        self.core.is_exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{EmissionPolicy, SearchParams};
    use banks_graph::builder::graph_from_edges;
    use banks_graph::{DataGraph, GraphBuilder};
    use banks_prestige::PrestigeVector;
    use banks_textindex::KeywordMatches;

    fn uniform(graph: &DataGraph) -> PrestigeVector {
        PrestigeVector::uniform_for(graph)
    }

    /// writes -> {author, paper}: querying the two leaf labels must find the
    /// tree rooted at the `writes` node.
    #[test]
    fn finds_simple_join_tree() {
        let g = graph_from_edges(3, &[(2, 0), (2, 1)]);
        let p = uniform(&g);
        let matches = KeywordMatches::from_sets(vec![
            ("gray", vec![NodeId(0)]),
            ("transaction", vec![NodeId(1)]),
        ]);
        let outcome = BidirectionalSearch::new().search(&g, &p, &matches, &SearchParams::default());
        assert_eq!(outcome.answers.len(), 1, "expected exactly one answer");
        let tree = &outcome.answers[0].tree;
        assert_eq!(tree.root, NodeId(2));
        assert_eq!(tree.leaves(), vec![NodeId(0), NodeId(1)]);
        assert!(tree
            .validate(&g, &[vec![NodeId(0)], vec![NodeId(1)]], 8)
            .is_ok());
        assert!(outcome.stats.nodes_explored > 0);
        assert!(outcome.stats.nodes_touched >= 2);
    }

    /// A single keyword query returns the matching nodes themselves.
    #[test]
    fn single_keyword_returns_matching_nodes() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = uniform(&g);
        let matches = KeywordMatches::from_sets(vec![("x", vec![NodeId(1), NodeId(3)])]);
        let outcome = BidirectionalSearch::new().search(&g, &p, &matches, &SearchParams::default());
        assert_eq!(outcome.answers.len(), 2);
        for a in &outcome.answers {
            assert_eq!(a.tree.paths.len(), 1);
            assert_eq!(a.tree.paths[0].len(), 1);
            assert!(matches.origin_set(0).contains(&a.tree.root));
        }
    }

    /// Queries with an unmatched keyword return no answers.
    #[test]
    fn unmatched_keyword_yields_nothing() {
        let g = graph_from_edges(3, &[(2, 0), (2, 1)]);
        let p = uniform(&g);
        let matches =
            KeywordMatches::from_sets(vec![("gray", vec![NodeId(0)]), ("missing", vec![])]);
        let outcome = BidirectionalSearch::new().search(&g, &p, &matches, &SearchParams::default());
        assert!(outcome.answers.is_empty());
        assert_eq!(outcome.stats.nodes_explored, 0);
    }

    /// Keywords on two co-cited papers: the answer must route through the
    /// citing paper via backward edges.
    #[test]
    fn co_citation_answer_uses_backward_edges() {
        // paper 0 cites paper 1 and paper 2
        let g = graph_from_edges(3, &[(0, 1), (0, 2)]);
        let p = uniform(&g);
        let matches =
            KeywordMatches::from_sets(vec![("left", vec![NodeId(1)]), ("right", vec![NodeId(2)])]);
        let outcome = BidirectionalSearch::new().search(&g, &p, &matches, &SearchParams::default());
        assert!(!outcome.answers.is_empty());
        assert_eq!(outcome.answers[0].tree.root, NodeId(0));
    }

    /// dmax cuts off answers that would need longer paths.
    #[test]
    fn dmax_limits_answer_depth() {
        // chain: k1 - a - b - c - k2  (undirected thanks to backward edges)
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = uniform(&g);
        let matches =
            KeywordMatches::from_sets(vec![("k1", vec![NodeId(0)]), ("k2", vec![NodeId(4)])]);
        let found = BidirectionalSearch::new().search(&g, &p, &matches, &SearchParams::default());
        assert!(
            !found.answers.is_empty(),
            "dmax=8 must allow the 4-edge connection"
        );

        let none =
            BidirectionalSearch::new().search(&g, &p, &matches, &SearchParams::default().dmax(1));
        assert!(
            none.answers.is_empty(),
            "dmax=1 must forbid the 4-edge connection"
        );
    }

    /// The same answer set is produced with and without the forward
    /// iterator / activation (SI-Backward equivalence on a small graph).
    #[test]
    fn ablated_configurations_agree_on_answers() {
        let g = graph_from_edges(7, &[(3, 0), (3, 1), (4, 1), (4, 2), (5, 2), (5, 0), (6, 0)]);
        let p = uniform(&g);
        let matches =
            KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![NodeId(1)])]);
        // top_k larger than the number of possible answers so both engines
        // exhaust the graph and report their complete answer sets.
        let params = SearchParams::with_top_k(64);
        let full = BidirectionalSearch::new().search(&g, &p, &matches, &params);
        let ablated = BidirectionalSearch::with_config(BidirectionalConfig {
            enable_outgoing: false,
            use_activation: false,
        })
        .search(&g, &p, &matches, &params);
        let mut sig_full = full.signatures();
        let mut sig_ablated = ablated.signatures();
        sig_full.sort();
        sig_ablated.sort();
        assert_eq!(sig_full, sig_ablated);
    }

    /// Figure-4 style scenario: a frequent keyword with a large origin set
    /// and two rare keywords.  Bidirectional must explore far fewer nodes
    /// than the distance-prioritised backward-only variant.
    #[test]
    fn frequent_keyword_scenario_explores_fewer_nodes() {
        // Build: 100 "database" papers (0..100) each written-by John (node 101)
        // via writes nodes, plus one paper co-authored by James (node 100).
        let mut b = GraphBuilder::new();
        let mut paper_ids = Vec::new();
        for i in 0..100 {
            paper_ids.push(b.add_node("paper", format!("database paper {i}")));
        }
        let james = b.add_node("author", "james");
        let john = b.add_node("author", "john");
        let mut writes = Vec::new();
        for (i, paper) in paper_ids.iter().enumerate() {
            let w = b.add_node("writes", format!("w{i}"));
            b.add_edge(w, *paper).unwrap();
            b.add_edge(w, john).unwrap();
            writes.push(w);
        }
        // paper 0 is also written by James
        let w_james = b.add_node("writes", "wj");
        b.add_edge(w_james, paper_ids[0]).unwrap();
        b.add_edge(w_james, james).unwrap();
        let g = b.build_default();
        let p = uniform(&g);

        let database_set: Vec<NodeId> = paper_ids.clone();
        let matches = KeywordMatches::from_sets(vec![
            ("database", database_set),
            ("james", vec![james]),
            ("john", vec![john]),
        ]);
        let params = SearchParams::with_top_k(1);
        let bidir = BidirectionalSearch::new().search(&g, &p, &matches, &params);
        let backward = BidirectionalSearch::with_config(BidirectionalConfig {
            enable_outgoing: false,
            use_activation: false,
        })
        .search(&g, &p, &matches, &params);

        assert!(!bidir.answers.is_empty());
        assert!(!backward.answers.is_empty());
        // Both find an answer containing paper 0, James and John.
        let best = &bidir.answers[0].tree;
        let nodes = best.nodes();
        assert!(nodes.contains(&james));
        assert!(nodes.contains(&john));
        assert!(
            bidir.stats.nodes_explored < backward.stats.nodes_explored,
            "bidirectional explored {} nodes, backward {}",
            bidir.stats.nodes_explored,
            backward.stats.nodes_explored
        );
    }

    /// Emission policies only change output timing, not the answer set.
    #[test]
    fn emission_policy_does_not_change_answer_set() {
        let g = graph_from_edges(
            8,
            &[
                (4, 0),
                (4, 1),
                (5, 1),
                (5, 2),
                (6, 2),
                (6, 3),
                (7, 3),
                (7, 0),
            ],
        );
        let p = uniform(&g);
        let matches = KeywordMatches::from_sets(vec![
            ("a", vec![NodeId(0), NodeId(2)]),
            ("b", vec![NodeId(1), NodeId(3)]),
        ]);
        let exact = BidirectionalSearch::new().search(
            &g,
            &p,
            &matches,
            &SearchParams::default().emission(EmissionPolicy::ExactBound),
        );
        let heuristic = BidirectionalSearch::new().search(
            &g,
            &p,
            &matches,
            &SearchParams::default().emission(EmissionPolicy::Heuristic),
        );
        let immediate = BidirectionalSearch::new().search(
            &g,
            &p,
            &matches,
            &SearchParams::default().emission(EmissionPolicy::Immediate),
        );
        let mut a = exact.signatures();
        let mut b = heuristic.signatures();
        let mut c = immediate.signatures();
        a.sort();
        b.sort();
        c.sort();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    /// The explored-nodes safety cap truncates the search.
    #[test]
    fn explored_cap_truncates() {
        let g = graph_from_edges(50, &(0..49).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let p = uniform(&g);
        let matches =
            KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![NodeId(49)])]);
        let outcome = BidirectionalSearch::new().search(
            &g,
            &p,
            &matches,
            &SearchParams::default().max_explored(3),
        );
        assert!(outcome.stats.truncated);
        assert!(outcome.stats.nodes_explored <= 4);
    }

    /// One `next()` call on a multi-keyword stream explores strictly fewer
    /// nodes than draining the search to completion.
    #[test]
    fn single_next_explores_fewer_nodes_than_full_drain() {
        let g = graph_from_edges(
            12,
            &[
                (6, 0),
                (6, 1),
                (7, 1),
                (7, 2),
                (8, 2),
                (8, 3),
                (9, 3),
                (9, 4),
                (10, 4),
                (10, 5),
                (11, 5),
                (11, 0),
            ],
        );
        let p = uniform(&g);
        let matches = KeywordMatches::from_sets(vec![
            ("a", vec![NodeId(0), NodeId(2), NodeId(4)]),
            ("b", vec![NodeId(1), NodeId(3), NodeId(5)]),
        ]);
        let params = SearchParams::with_top_k(64).emission(EmissionPolicy::Immediate);
        let engine = BidirectionalSearch::new();

        let mut stream = engine.start(crate::stream::QueryContext::new(&g, &p, &matches, params));
        assert!(stream.next().is_some(), "expected at least one answer");
        let after_first = stream.stats().nodes_explored;
        assert!(!stream.is_exhausted());

        let full = engine.search(&g, &p, &matches, &params);
        assert!(
            after_first < full.stats.nodes_explored,
            "one next() explored {} nodes, full drain {}",
            after_first,
            full.stats.nodes_explored
        );
    }

    /// `top_k == 0` streams end immediately without panicking.
    #[test]
    fn zero_top_k_yields_no_answers() {
        let g = graph_from_edges(3, &[(2, 0), (2, 1)]);
        let p = uniform(&g);
        let matches =
            KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![NodeId(1)])]);
        let params = SearchParams::with_top_k(0);
        let outcome = BidirectionalSearch::new().search(&g, &p, &matches, &params);
        assert!(outcome.answers.is_empty());
        assert_eq!(outcome.stats.answers_output, 0);

        let mut stream = BidirectionalSearch::new()
            .start(crate::stream::QueryContext::new(&g, &p, &matches, params));
        assert!(stream.next().is_none());
        assert!(stream.is_exhausted());
    }

    /// An exhausted work budget flushes generated answers and ends the
    /// stream with the truncation flag set — deterministically, at the same
    /// node count on every run.
    #[test]
    fn exhausted_work_budget_truncates_the_stream() {
        let g = graph_from_edges(50, &(0..49).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let p = uniform(&g);
        let matches =
            KeywordMatches::from_sets(vec![("a", vec![NodeId(0)]), ("b", vec![NodeId(49)])]);
        let params = SearchParams::default().answer_work_budget(0);
        let mut stream = BidirectionalSearch::new()
            .start(crate::stream::QueryContext::new(&g, &p, &matches, params));
        // Drain whatever the budget lets through; the stream must end.
        while stream.next().is_some() {}
        assert!(stream.is_exhausted());
        assert!(
            stream.stats().truncated,
            "exhausted work budget must set the truncation flag"
        );
        assert!(
            stream.stats().nodes_explored <= 2,
            "a zero budget must stop expansion almost immediately, explored {}",
            stream.stats().nodes_explored
        );

        // Determinism: a second run truncates at exactly the same point.
        let rerun = BidirectionalSearch::new().search(&g, &p, &matches, &params);
        assert_eq!(rerun.stats.nodes_explored, stream.stats().nodes_explored);
    }

    /// Live statistics grow monotonically while the stream runs.
    #[test]
    fn stream_stats_are_live() {
        let g = graph_from_edges(
            8,
            &[
                (4, 0),
                (4, 1),
                (5, 1),
                (5, 2),
                (6, 2),
                (6, 3),
                (7, 3),
                (7, 0),
            ],
        );
        let p = uniform(&g);
        let matches = KeywordMatches::from_sets(vec![
            ("a", vec![NodeId(0), NodeId(2)]),
            ("b", vec![NodeId(1), NodeId(3)]),
        ]);
        let params = SearchParams::with_top_k(64).emission(EmissionPolicy::Immediate);
        let mut stream = BidirectionalSearch::new()
            .start(crate::stream::QueryContext::new(&g, &p, &matches, params));
        assert_eq!(
            stream.stats().nodes_explored,
            0,
            "nothing explored before the first poll"
        );
        let mut previous = 0usize;
        while stream.next().is_some() {
            let now = stream.stats().nodes_explored;
            assert!(now >= previous);
            previous = now;
        }
        assert_eq!(stream.engine_name(), "Bidirectional");
        let sealed = stream.stats();
        assert_eq!(sealed.answers_output, sealed.answers_output.max(1));
    }

    /// Generated timings never exceed output timings.
    #[test]
    fn generation_never_after_output() {
        let g = graph_from_edges(6, &[(3, 0), (3, 1), (4, 1), (4, 2), (5, 0), (5, 2)]);
        let p = uniform(&g);
        let matches = KeywordMatches::from_sets(vec![
            ("a", vec![NodeId(0)]),
            ("b", vec![NodeId(1)]),
            ("c", vec![NodeId(2)]),
        ]);
        let outcome = BidirectionalSearch::new().search(&g, &p, &matches, &SearchParams::default());
        for a in &outcome.answers {
            assert!(a.timing.generated_at <= a.timing.output_at);
            assert!(a.timing.explored_at_generation <= a.timing.explored_at_output);
        }
    }
}
