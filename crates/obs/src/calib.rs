//! Online calibration of the a priori query-cost model.
//!
//! The scheduler charges admission cost from a static estimate
//! (`origin × (1 + top_k × work-per-answer) × engine-factor`).  That model
//! is deliberately crude; this module closes the loop by recording the
//! *measured* `nodes_explored` of every completed query into a per
//! (engine, origin-size bucket) cell and maintaining an exponential
//! moving average of the measured/estimated ratio.  The resulting
//! correction factor is blended back into future estimates, clamped to
//! a sane band so one outlier can never swing admission by more than 8×.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of log₂ origin-size buckets (bucket 15 is open-ended).
pub const ORIGIN_BUCKETS: usize = 16;

/// Correction factors are clamped to `[1/CORRECTION_CLAMP, CORRECTION_CLAMP]`.
const CORRECTION_CLAMP: f64 = 8.0;

/// The log₂ bucket an origin-set size falls in: 1 node → bucket 0,
/// 2–3 → 1, 4–7 → 2, …, ≥ 2¹⁵ → bucket 15.
pub fn origin_bucket(origin_nodes: usize) -> usize {
    let n = origin_nodes.max(1) as u64;
    ((63 - n.leading_zeros()) as usize).min(ORIGIN_BUCKETS - 1)
}

#[derive(Clone, Copy, Debug, Default)]
struct Cell {
    samples: u64,
    nodes_sum: u64,
    /// EMA of measured/estimated; 0.0 means "no samples yet".
    ratio_ema: f64,
}

/// One row of the exported calibration table.
#[derive(Clone, Debug, PartialEq)]
pub struct CalibrationRow {
    /// Engine the row calibrates.
    pub engine: String,
    /// Origin-size bucket index (log₂ of the origin node count).
    pub origin_bucket: usize,
    /// Smallest origin size in the bucket.
    pub origin_lo: u64,
    /// Largest origin size in the bucket (`u64::MAX` for the last).
    pub origin_hi: u64,
    /// Completed queries recorded into this cell.
    pub samples: u64,
    /// Mean measured `nodes_explored` across those queries.
    pub mean_nodes_explored: u64,
    /// Current correction factor applied to estimates in this cell.
    pub correction: f64,
}

/// Online EMA calibration of cost estimates, keyed by
/// (engine, origin-size bucket).
///
/// The first sample seeds the EMA directly; later samples decay into it
/// with weight `alpha`, so the table tracks drift (graph growth, engine
/// changes) without a reset.
#[derive(Debug)]
pub struct CostCalibration {
    alpha: f64,
    cells: Mutex<BTreeMap<String, [Cell; ORIGIN_BUCKETS]>>,
}

impl Default for CostCalibration {
    fn default() -> Self {
        CostCalibration::new(0.25)
    }
}

impl CostCalibration {
    /// A calibration table with EMA decay `alpha` (clamped to (0, 1]).
    pub fn new(alpha: f64) -> Self {
        CostCalibration {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            cells: Mutex::new(BTreeMap::new()),
        }
    }

    /// Records one completed query: the estimate the scheduler charged
    /// and the `nodes_explored` the engine actually reported.
    pub fn record(&self, engine: &str, origin_nodes: usize, estimated: u64, measured: u64) {
        let ratio = measured.max(1) as f64 / estimated.max(1) as f64;
        let bucket = origin_bucket(origin_nodes);
        let mut cells = self.cells.lock().unwrap();
        let row = cells
            .entry(engine.to_string())
            .or_insert_with(|| [Cell::default(); ORIGIN_BUCKETS]);
        let cell = &mut row[bucket];
        cell.ratio_ema = if cell.samples == 0 {
            ratio
        } else {
            self.alpha * ratio + (1.0 - self.alpha) * cell.ratio_ema
        };
        cell.samples += 1;
        cell.nodes_sum += measured;
    }

    /// The correction factor for an (engine, origin-size) cell: the
    /// clamped EMA of measured/estimated, or 1.0 before any samples.
    pub fn correction(&self, engine: &str, origin_nodes: usize) -> f64 {
        let cells = self.cells.lock().unwrap();
        match cells.get(engine) {
            Some(row) => {
                let cell = &row[origin_bucket(origin_nodes)];
                if cell.samples == 0 {
                    1.0
                } else {
                    cell.ratio_ema
                        .clamp(1.0 / CORRECTION_CLAMP, CORRECTION_CLAMP)
                }
            }
            None => 1.0,
        }
    }

    /// An estimate blended with the learned correction: rounded
    /// `estimated × correction`, floored at 1.
    pub fn corrected(&self, engine: &str, origin_nodes: usize, estimated: u64) -> u64 {
        let corrected = (estimated as f64 * self.correction(engine, origin_nodes)).round();
        (corrected as u64).max(1)
    }

    /// The populated calibration rows, sorted by engine then bucket.
    pub fn rows(&self) -> Vec<CalibrationRow> {
        let cells = self.cells.lock().unwrap();
        let mut out = Vec::new();
        for (engine, row) in cells.iter() {
            for (bucket, cell) in row.iter().enumerate() {
                if cell.samples == 0 {
                    continue;
                }
                out.push(CalibrationRow {
                    engine: engine.clone(),
                    origin_bucket: bucket,
                    origin_lo: 1u64 << bucket,
                    origin_hi: if bucket == ORIGIN_BUCKETS - 1 {
                        u64::MAX
                    } else {
                        (1u64 << (bucket + 1)) - 1
                    },
                    samples: cell.samples,
                    mean_nodes_explored: cell.nodes_sum / cell.samples,
                    correction: cell
                        .ratio_ema
                        .clamp(1.0 / CORRECTION_CLAMP, CORRECTION_CLAMP),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_buckets_are_log2() {
        assert_eq!(origin_bucket(0), 0);
        assert_eq!(origin_bucket(1), 0);
        assert_eq!(origin_bucket(2), 1);
        assert_eq!(origin_bucket(3), 1);
        assert_eq!(origin_bucket(4), 2);
        assert_eq!(origin_bucket(1 << 14), 14);
        assert_eq!(origin_bucket(1 << 20), ORIGIN_BUCKETS - 1);
    }

    #[test]
    fn first_sample_seeds_then_ema_decays() {
        let c = CostCalibration::new(0.25);
        assert_eq!(c.correction("bidirectional", 4), 1.0);

        // First sample seeds the EMA: measured 200 on an estimate of 100.
        c.record("bidirectional", 4, 100, 200);
        assert!((c.correction("bidirectional", 4) - 2.0).abs() < 1e-9);

        // Second sample (ratio 1.0) decays with alpha 0.25:
        // 0.25·1.0 + 0.75·2.0 = 1.75.
        c.record("bidirectional", 4, 100, 100);
        assert!((c.correction("bidirectional", 4) - 1.75).abs() < 1e-9);

        // Repeated agreement converges toward 1.0.
        for _ in 0..64 {
            c.record("bidirectional", 4, 100, 100);
        }
        assert!((c.correction("bidirectional", 4) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn correction_is_clamped_and_cells_are_isolated() {
        let c = CostCalibration::new(0.5);
        c.record("mi", 2, 1, 1_000_000);
        assert_eq!(c.correction("mi", 2), 8.0);
        c.record("mi", 1 << 8, 1_000_000, 1);
        assert_eq!(c.correction("mi", 1 << 8), 0.125);
        // Other engines and buckets stay untouched.
        assert_eq!(c.correction("mi", 1 << 4), 1.0);
        assert_eq!(c.correction("bidirectional", 2), 1.0);
    }

    #[test]
    fn corrected_scales_and_floors_estimates() {
        let c = CostCalibration::new(0.25);
        assert_eq!(c.corrected("si", 4, 100), 100);
        c.record("si", 4, 100, 50);
        assert_eq!(c.corrected("si", 4, 100), 50);
        c.record("si", 1, 1_000_000, 1);
        assert_eq!(c.corrected("si", 1, 2), 1);
    }

    #[test]
    fn rows_export_populated_cells_sorted() {
        let c = CostCalibration::new(0.25);
        c.record("mi", 5, 100, 300);
        c.record("bidirectional", 1, 10, 20);
        c.record("bidirectional", 1, 10, 40);
        let rows = c.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].engine, "bidirectional");
        assert_eq!(rows[0].origin_bucket, 0);
        assert_eq!(rows[0].samples, 2);
        assert_eq!(rows[0].mean_nodes_explored, 30);
        assert_eq!(rows[1].engine, "mi");
        assert_eq!(rows[1].origin_bucket, 2);
        assert_eq!((rows[1].origin_lo, rows[1].origin_hi), (4, 7));
    }
}
