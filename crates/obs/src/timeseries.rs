//! Bounded in-process time-series retention.
//!
//! `/metrics` answers "what is the state *now*"; the [`TimeSeriesRing`]
//! answers "what changed over the last five minutes".  A collector thread
//! snapshots a fixed schema of scalar series (cumulative counters, gauges,
//! windowed latency percentiles) on a fixed cadence — default 10 s buckets
//! retained in a 360-slot window, i.e. one hour — and the ring exposes
//! windowed deltas, per-second rates, and the raw sample trajectory.
//!
//! The ring is lock-free: each slot is a seqlock (a version word that goes
//! odd while the single writer is mid-update), so the collector's write is
//! wait-free and HTTP readers never block it.  A reader that catches a
//! slot mid-write simply retries that slot.  Values are `f64`; `NaN` means
//! "no observation this tick" (e.g. a windowed percentile over an idle
//! interval) and is skipped by the delta/rate helpers.

use std::sync::atomic::{AtomicU64, Ordering};

/// One materialized tick of every series in the schema.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSample {
    /// 1-based tick number (total `record` calls when this was written).
    pub seq: u64,
    /// Collector-supplied timestamp in milliseconds.  Any monotone base
    /// works; the service uses wall-clock Unix ms.
    pub at_ms: u64,
    /// Values aligned with [`TimeSeriesRing::schema`]; `NaN` = no data.
    pub values: Vec<f64>,
}

#[derive(Debug)]
struct Slot {
    /// Seqlock version: odd while the writer is mid-update.
    version: AtomicU64,
    seq: AtomicU64,
    at_ms: AtomicU64,
    /// `f64` bit patterns.
    values: Vec<AtomicU64>,
}

/// A fixed-schema, bounded, lock-free ring of metric snapshots.
///
/// Single-writer: exactly one thread (the service's collector) calls
/// [`TimeSeriesRing::record`]; any number of threads may read.  Racing
/// writers would never be unsound (every field is atomic) but could tear
/// each other's samples.
#[derive(Debug)]
pub struct TimeSeriesRing {
    schema: Vec<&'static str>,
    slots: Vec<Slot>,
    ticks: AtomicU64,
}

impl TimeSeriesRing {
    /// A ring retaining `capacity` ticks (minimum 2) of the given series.
    pub fn new(schema: Vec<&'static str>, capacity: usize) -> Self {
        let width = schema.len();
        let capacity = capacity.max(2);
        TimeSeriesRing {
            schema,
            slots: (0..capacity)
                .map(|_| Slot {
                    version: AtomicU64::new(0),
                    seq: AtomicU64::new(0),
                    at_ms: AtomicU64::new(0),
                    values: (0..width).map(|_| AtomicU64::new(0)).collect(),
                })
                .collect(),
            ticks: AtomicU64::new(0),
        }
    }

    /// The series names, in value order.
    pub fn schema(&self) -> &[&'static str] {
        &self.schema
    }

    /// The slot index of a series name, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.schema.iter().position(|s| *s == name)
    }

    /// Number of ticks currently retained.
    pub fn len(&self) -> usize {
        (self.ticks.load(Ordering::Acquire) as usize).min(self.slots.len())
    }

    /// Whether no tick has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ticks.load(Ordering::Acquire) == 0
    }

    /// Maximum ticks retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total ticks ever recorded (wraparound does not reset this).
    pub fn total_ticks(&self) -> u64 {
        self.ticks.load(Ordering::Acquire)
    }

    /// Records one tick (single-writer).  `values` must match the schema
    /// width; the oldest tick is overwritten once the ring is full.
    /// Returns the 1-based tick number.
    pub fn record(&self, at_ms: u64, values: &[f64]) -> u64 {
        assert_eq!(values.len(), self.schema.len(), "schema width mismatch");
        let tick = self.ticks.load(Ordering::Relaxed);
        let slot = &self.slots[(tick as usize) % self.slots.len()];
        slot.version.fetch_add(1, Ordering::Release); // odd: in progress
        slot.seq.store(tick + 1, Ordering::Release);
        slot.at_ms.store(at_ms, Ordering::Release);
        for (cell, v) in slot.values.iter().zip(values) {
            cell.store(v.to_bits(), Ordering::Release);
        }
        slot.version.fetch_add(1, Ordering::Release); // even: stable
        self.ticks.store(tick + 1, Ordering::Release);
        tick + 1
    }

    fn read_slot(&self, index: usize) -> Option<TimeSample> {
        let slot = &self.slots[index];
        loop {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 {
                return None; // never written
            }
            if v1 % 2 == 1 {
                std::hint::spin_loop();
                continue; // writer mid-update; retry
            }
            let sample = TimeSample {
                seq: slot.seq.load(Ordering::Acquire),
                at_ms: slot.at_ms.load(Ordering::Acquire),
                values: slot
                    .values
                    .iter()
                    .map(|c| f64::from_bits(c.load(Ordering::Acquire)))
                    .collect(),
            };
            if slot.version.load(Ordering::Acquire) == v1 {
                return Some(sample);
            }
        }
    }

    /// The most recent `n` ticks, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TimeSample> {
        let ticks = self.ticks.load(Ordering::Acquire);
        let have = (ticks as usize).min(self.slots.len());
        let take = n.min(have);
        let mut out = Vec::with_capacity(take);
        for back in (0..take).rev() {
            let tick = ticks - 1 - back as u64;
            if let Some(s) = self.read_slot((tick as usize) % self.slots.len()) {
                // A slot lapped by the writer mid-read carries a newer seq;
                // keep it only if it is the tick we asked for.
                if s.seq == tick + 1 {
                    out.push(s);
                }
            }
        }
        out
    }

    /// The latest tick, if any.
    pub fn latest(&self) -> Option<TimeSample> {
        self.recent(1).pop()
    }

    /// Retained ticks with `at_ms >= now_ms - window_ms`, oldest first.
    pub fn window(&self, window_ms: u64, now_ms: u64) -> Vec<TimeSample> {
        let cutoff = now_ms.saturating_sub(window_ms);
        let mut samples = self.recent(self.slots.len());
        samples.retain(|s| s.at_ms >= cutoff);
        samples
    }

    /// Last-minus-first finite value of `name` over the window — the
    /// growth of a cumulative counter.  `None` when the series is unknown
    /// or fewer than two finite samples fall in the window.
    pub fn delta(&self, name: &str, window_ms: u64, now_ms: u64) -> Option<f64> {
        let idx = self.index_of(name)?;
        let finite: Vec<(u64, f64)> = self
            .window(window_ms, now_ms)
            .into_iter()
            .filter(|s| s.values[idx].is_finite())
            .map(|s| (s.at_ms, s.values[idx]))
            .collect();
        let (first, last) = (finite.first()?, finite.last()?);
        if first.0 == last.0 {
            return None;
        }
        Some(last.1 - first.1)
    }

    /// Windowed delta divided by the elapsed seconds between the first and
    /// last finite samples: the per-second rate of a cumulative counter.
    pub fn rate_per_sec(&self, name: &str, window_ms: u64, now_ms: u64) -> Option<f64> {
        let idx = self.index_of(name)?;
        let finite: Vec<(u64, f64)> = self
            .window(window_ms, now_ms)
            .into_iter()
            .filter(|s| s.values[idx].is_finite())
            .map(|s| (s.at_ms, s.values[idx]))
            .collect();
        let (first, last) = (finite.first()?, finite.last()?);
        if last.0 <= first.0 {
            return None;
        }
        Some((last.1 - first.1) / ((last.0 - first.0) as f64 / 1000.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> TimeSeriesRing {
        TimeSeriesRing::new(vec!["submitted", "queued", "ttfa_p99_us"], 4)
    }

    #[test]
    fn records_and_reads_back_in_order() {
        let r = ring();
        assert!(r.is_empty());
        r.record(1000, &[1.0, 0.0, 50.0]);
        r.record(2000, &[3.0, 1.0, 60.0]);
        let samples = r.recent(10);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].seq, 1);
        assert_eq!(samples[1].at_ms, 2000);
        assert_eq!(samples[1].values, vec![3.0, 1.0, 60.0]);
        assert_eq!(r.latest().unwrap().seq, 2);
    }

    #[test]
    fn wraparound_keeps_the_newest_capacity_ticks() {
        let r = ring();
        for i in 0..10u64 {
            r.record(i * 1000, &[i as f64, 0.0, 0.0]);
        }
        assert_eq!(r.total_ticks(), 10);
        assert_eq!(r.len(), 4);
        let seqs: Vec<u64> = r.recent(10).iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10], "oldest first, post-wrap");
    }

    #[test]
    fn windowed_delta_and_rate() {
        let r = TimeSeriesRing::new(vec!["executed"], 16);
        for i in 0..6u64 {
            r.record(i * 1000, &[(i * 10) as f64]);
        }
        // full window: 0 → 50 over 5 s
        assert_eq!(r.delta("executed", 10_000, 5_000), Some(50.0));
        assert_eq!(r.rate_per_sec("executed", 10_000, 5_000), Some(10.0));
        // 2 s window ending at t=5s covers ticks at 3,4,5 s: 30 → 50
        assert_eq!(r.delta("executed", 2_000, 5_000), Some(20.0));
        assert_eq!(r.delta("nope", 10_000, 5_000), None);
        assert_eq!(
            r.delta("executed", 0, 5_000),
            None,
            "single-sample window has no delta"
        );
    }

    #[test]
    fn nan_samples_are_skipped_by_delta_and_rate() {
        let r = TimeSeriesRing::new(vec!["p99"], 8);
        r.record(0, &[10.0]);
        r.record(1000, &[f64::NAN]);
        r.record(2000, &[30.0]);
        assert_eq!(r.delta("p99", 10_000, 2_000), Some(20.0));
        assert_eq!(r.rate_per_sec("p99", 10_000, 2_000), Some(10.0));
        let latest = r.latest().unwrap();
        assert!(latest.values[0].is_finite());
    }

    #[test]
    fn window_filters_by_timestamp() {
        let r = TimeSeriesRing::new(vec!["v"], 16);
        for i in 0..5u64 {
            r.record(i * 1000, &[i as f64]);
        }
        let w = r.window(1_500, 4_000);
        assert_eq!(w.len(), 2, "ticks at 3000 and 4000 ms");
        assert_eq!(w[0].at_ms, 3000);
    }

    #[test]
    fn concurrent_readers_never_see_torn_samples() {
        use std::sync::Arc;
        let r = Arc::new(TimeSeriesRing::new(vec!["a", "b"], 8));
        let writer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    // a and b always move together; a torn read breaks that.
                    r.record(i, &[i as f64, (i * 2) as f64]);
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        for s in r.recent(8) {
                            assert_eq!(
                                s.values[1],
                                s.values[0] * 2.0,
                                "torn sample at seq {}",
                                s.seq
                            );
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for h in readers {
            h.join().unwrap();
        }
    }
}
