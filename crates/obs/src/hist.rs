//! The lock-free log₂-microsecond latency histogram.
//!
//! Extracted (and generalized) from the service's original queue-wait
//! histogram: same bucket layout, same percentile semantics, but the
//! buckets are relaxed atomics, so one `Histogram` can be shared across
//! worker threads without a mutex and recorded into from the hot path at
//! the cost of four uncontended atomic operations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ microsecond buckets.  Bucket 0 holds exactly-zero
/// durations and bucket `i > 0` holds durations in `[2^(i-1), 2^i)` µs; the
/// last bucket (i = 36, lower bound 2^35 µs ≈ 9.5 h) is open-ended and
/// absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 37;

/// A concurrent latency histogram at log₂-µs resolution.
///
/// ```
/// use std::time::Duration;
/// use banks_obs::Histogram;
///
/// let h = Histogram::new();
/// for us in [10, 20, 30, 10_000] {
///     h.record(Duration::from_micros(us));
/// }
/// let s = h.summary();
/// assert_eq!(s.count, 4);
/// assert_eq!(s.max, Duration::from_micros(10_000));
/// assert!(s.p50 >= Duration::from_micros(20));
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// The bucket index a microsecond value falls in.
    pub fn bucket_index(us: u64) -> usize {
        (64 - us.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one duration given in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time raw bucket counts.  The metrics collector differences
    /// two of these to compute *windowed* percentiles (latency of the last
    /// tick only), which — unlike the cumulative [`Histogram::summary`] —
    /// decay back down when a latency regression ends.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The bucketed percentile of an arbitrary bucket-count array (e.g. the
    /// difference of two [`Histogram::bucket_counts`] snapshots).  Returns
    /// `None` when the array holds no observations.  Like
    /// [`Histogram::summary`], the value is the upper bound of the bucket
    /// the true percentile falls in — but with no cumulative maximum to cap
    /// against.
    pub fn percentile_of(buckets: &[u64; HISTOGRAM_BUCKETS], p: f64) -> Option<Duration> {
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return None;
        }
        let rank = ((count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return Some(Duration::from_micros(upper));
            }
        }
        None
    }

    /// A point-in-time summary (count, mean, bucketed p50/p90/p99, exact
    /// max).  Concurrent recorders may land between the individual loads;
    /// the summary is statistically consistent, not a linearizable
    /// snapshot — the right trade for an instrument.
    pub fn summary(&self) -> LatencySummary {
        let buckets: [u64; HISTOGRAM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count: u64 = buckets.iter().sum();
        let sum_us = self.sum_us.load(Ordering::Relaxed);
        let max_us = self.max_us.load(Ordering::Relaxed);
        let percentile = |p: f64| -> Duration {
            if count == 0 {
                return Duration::ZERO;
            }
            let rank = ((count as f64) * p).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // bucket i spans [2^(i-1), 2^i) µs (bucket 0 is exactly
                    // 0); report the upper bound, capped by the observed
                    // maximum.
                    let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                    return Duration::from_micros(upper.min(max_us));
                }
            }
            Duration::from_micros(max_us)
        };
        LatencySummary {
            count,
            mean: Duration::from_micros(sum_us.checked_div(count).unwrap_or(0)),
            p50: percentile(0.50),
            p90: percentile(0.90),
            p99: percentile(0.99),
            max: Duration::from_micros(max_us),
        }
    }
}

/// Summary of a latency distribution.  Percentiles are bucketed (log₂-µs
/// resolution): each is the upper bound of the bucket the true percentile
/// falls in, capped at the exact observed maximum.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Observations recorded.
    pub count: u64,
    /// Mean latency.
    pub mean: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 90th-percentile latency.
    pub p90: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Largest observed latency (exact).
    pub max: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_matches_the_original_queue_wait_histogram() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn percentiles_bracket_the_observations() {
        let h = Histogram::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 10_000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.summary();
        assert_eq!(s.count, 10);
        assert_eq!(s.max, Duration::from_micros(10_000));
        assert_eq!(s.mean, Duration::from_micros(1045));
        assert!(s.p50 >= Duration::from_micros(50) && s.p50 < Duration::from_micros(128));
        assert!(s.p90 >= Duration::from_micros(90) && s.p90 <= s.p99);
        assert!(s.p99 <= s.max);
    }

    #[test]
    fn zero_duration_lands_in_the_zero_bucket() {
        let h = Histogram::new();
        h.record(Duration::ZERO);
        let s = h.summary();
        assert_eq!(s.p50, Duration::ZERO);
        assert_eq!(s.max, Duration::ZERO);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        assert_eq!(Histogram::new().summary(), LatencySummary::default());
    }

    #[test]
    fn windowed_percentiles_come_from_bucket_deltas() {
        let h = Histogram::new();
        for us in [10u64, 10, 10, 10] {
            h.record_us(us);
        }
        let before = h.bucket_counts();
        for us in [5_000u64, 6_000, 7_000, 8_000] {
            h.record_us(us);
        }
        let after = h.bucket_counts();
        let delta: [u64; HISTOGRAM_BUCKETS] = std::array::from_fn(|i| after[i] - before[i]);
        // The window saw only the slow samples: its p50 reflects them even
        // though the cumulative p50 is still dominated by the fast ones.
        let windowed = Histogram::percentile_of(&delta, 0.5).unwrap();
        assert!(windowed >= Duration::from_micros(4096));
        assert!(h.summary().p50 < Duration::from_micros(128));
        assert_eq!(Histogram::percentile_of(&[0; HISTOGRAM_BUCKETS], 0.5), None);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_us(t * 1000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.summary().count, 4000);
        assert_eq!(h.summary().max, Duration::from_micros(3999));
    }
}
