//! Per-query phase traces.
//!
//! A [`QueryTrace`] is one query's post-mortem timeline: a handful of
//! named [`TraceSpan`]s whose endpoints are microsecond offsets from the
//! moment the service first saw the query, plus a small table of engine
//! work counters sampled at completion.  Offsets (rather than absolute
//! timestamps) make traces cheap to record, trivially serializable, and
//! self-consistent: every span is bounded by `[0, total_us]`.

/// One named phase of a query's lifecycle.
///
/// `start_us`/`end_us` are offsets in microseconds from the query's
/// admission instant (the top of `Service::submit`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// Phase name (`admit`, `queue`, `resolve`, `expand`, `first-answer`,
    /// `finish`).
    pub name: &'static str,
    /// Offset of the phase start, µs since admission.
    pub start_us: u64,
    /// Offset of the phase end, µs since admission.
    pub end_us: u64,
}

impl TraceSpan {
    /// Duration of the span in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// The full trace of one query, assembled by the service as the query
/// moves through admission, queueing and execution.
#[derive(Clone, Debug, Default)]
pub struct QueryTrace {
    /// Service-assigned query id (the numeric part of `q<N>`).
    pub id: u64,
    /// Client-supplied trace reference (the `X-Banks-Trace` header value),
    /// echoed back verbatim.
    pub client_ref: Option<String>,
    /// Tenant the query was accounted to, if any.
    pub tenant: Option<String>,
    /// Engine that executed the query.
    pub engine: String,
    /// Whether the result was served from the answer cache.
    pub cache_hit: bool,
    /// Whether the query crossed the configured slow-query threshold.
    pub slow: bool,
    /// Snapshot epoch the query ran against.
    pub epoch: u64,
    /// End-to-end wall time in microseconds (admission to finish).
    pub total_us: u64,
    /// Phase spans, in the order they were recorded.
    pub spans: Vec<TraceSpan>,
    /// Engine work counters sampled at completion
    /// (`heap_pops`, `rows_expanded`, …).
    pub counters: Vec<(&'static str, u64)>,
}

impl QueryTrace {
    /// Appends a span.
    pub fn push_span(&mut self, name: &'static str, start_us: u64, end_us: u64) {
        self.spans.push(TraceSpan {
            name,
            start_us,
            end_us,
        });
    }

    /// Appends a work counter sample.
    pub fn push_counter(&mut self, name: &'static str, value: u64) {
        self.counters.push((name, value));
    }

    /// Looks up a span by name.
    pub fn span(&self, name: &str) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_counters_are_retrievable_by_name() {
        let mut t = QueryTrace {
            id: 7,
            engine: "bidirectional".to_string(),
            total_us: 1500,
            ..QueryTrace::default()
        };
        t.push_span("queue", 100, 400);
        t.push_span("expand", 400, 1500);
        t.push_counter("heap_pops", 42);

        assert_eq!(t.span("queue").unwrap().duration_us(), 300);
        assert_eq!(t.span("expand").unwrap().end_us, 1500);
        assert!(t.span("missing").is_none());
        assert_eq!(t.counter("heap_pops"), Some(42));
        assert_eq!(t.counter("missing"), None);
    }

    #[test]
    fn span_duration_saturates_rather_than_underflows() {
        let s = TraceSpan {
            name: "odd",
            start_us: 10,
            end_us: 5,
        };
        assert_eq!(s.duration_us(), 0);
    }
}
