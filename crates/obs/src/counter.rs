//! Relaxed-atomic scalars: the cheapest possible instruments.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter, updated with relaxed atomics.
///
/// Relaxed ordering is deliberate: metrics are *statistical* reads, never
/// synchronization points, so the instrument costs one uncontended atomic
/// add and imposes no ordering on the code it measures.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (used when sampling an absolute progress
    /// counter, e.g. an engine's `nodes_explored`, into a shared cell).
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, in-flight work).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Live per-query work counters, published by an engine's step driver with
/// relaxed stores on every expansion step and read by whoever holds the
/// other end (the tracing layer, a live-stats poller).
///
/// The names follow the expansion machinery: a *heap pop* is one node
/// leaving a frontier priority queue (the unit `nodes_explored` counts and
/// work budgets are denominated in), a *row expanded* is one adjacency row
/// entry traversed.
#[derive(Debug, Default)]
pub struct WorkCounters {
    /// Nodes popped from expansion frontiers (`nodes_explored`).
    pub heap_pops: Counter,
    /// Distinct nodes ever inserted into a frontier.
    pub nodes_touched: Counter,
    /// Adjacency entries traversed (`edges_traversed`).
    pub rows_expanded: Counter,
    /// Answers released by the emission policy so far.
    pub answers_emitted: Counter,
}

impl WorkCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        WorkCounters::default()
    }

    /// Publishes one progress sample (absolute values, relaxed stores).
    pub fn store(&self, heap_pops: u64, nodes_touched: u64, rows_expanded: u64, answers: u64) {
        self.heap_pops.store(heap_pops);
        self.nodes_touched.store(nodes_touched);
        self.rows_expanded.store(rows_expanded);
        self.answers_emitted.store(answers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.store(2);
        assert_eq!(c.get(), 2);

        let g = Gauge::new();
        g.add(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn work_counters_publish_absolute_samples() {
        let w = WorkCounters::new();
        w.store(10, 20, 30, 2);
        w.store(15, 25, 40, 3);
        assert_eq!(w.heap_pops.get(), 15);
        assert_eq!(w.nodes_touched.get(), 25);
        assert_eq!(w.rows_expanded.get(), 40);
        assert_eq!(w.answers_emitted.get(), 3);
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
