//! Per-shard busy-time accounting for scatter-gather execution.
//!
//! The sharded engine advances its per-shard iterator groups in parallel
//! refill rounds; each round's worker adds its wall time to the slot of
//! the shard it served.  The service reads the totals after the stream
//! drains and attaches one `shard-<i>-expand` span per shard to the query
//! trace, so a skewed partition shows up directly in `/debug/trace`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Relaxed-atomic per-shard busy-time accumulators (microseconds).
///
/// One slot per shard; workers [`add_micros`](ShardTimes::add_micros)
/// into their slot from any thread, and a reader snapshots the totals
/// with [`busy_micros`](ShardTimes::busy_micros) or
/// [`totals`](ShardTimes::totals).  Because every refill round runs its
/// shards concurrently, the per-shard *busy* totals can each approach —
/// but never meaningfully exceed — the query's total expand wall time.
#[derive(Debug, Default)]
pub struct ShardTimes {
    busy_us: Vec<AtomicU64>,
}

impl ShardTimes {
    /// Creates accumulators for `shards` slots (zeroed).
    pub fn new(shards: usize) -> Self {
        ShardTimes {
            busy_us: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of shard slots.
    pub fn shards(&self) -> usize {
        self.busy_us.len()
    }

    /// Adds `us` microseconds of busy time to `shard`.  Out-of-range
    /// shards are ignored rather than panicking off the hot path.
    pub fn add_micros(&self, shard: usize, us: u64) {
        if let Some(slot) = self.busy_us.get(shard) {
            slot.fetch_add(us, Ordering::Relaxed);
        }
    }

    /// Busy microseconds accumulated for `shard` so far (0 when out of
    /// range).
    pub fn busy_micros(&self, shard: usize) -> u64 {
        self.busy_us
            .get(shard)
            .map_or(0, |slot| slot.load(Ordering::Relaxed))
    }

    /// Snapshot of every shard's busy microseconds.
    pub fn totals(&self) -> Vec<u64> {
        self.busy_us
            .iter()
            .map(|slot| slot.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_shard() {
        let t = ShardTimes::new(3);
        assert_eq!(t.shards(), 3);
        t.add_micros(0, 5);
        t.add_micros(2, 7);
        t.add_micros(2, 3);
        assert_eq!(t.busy_micros(0), 5);
        assert_eq!(t.busy_micros(1), 0);
        assert_eq!(t.busy_micros(2), 10);
        assert_eq!(t.totals(), vec![5, 0, 10]);
    }

    #[test]
    fn out_of_range_is_ignored() {
        let t = ShardTimes::new(1);
        t.add_micros(9, 100);
        assert_eq!(t.busy_micros(9), 0);
        assert_eq!(t.totals(), vec![0]);
    }

    #[test]
    fn is_shareable_across_threads() {
        let t = ShardTimes::new(4);
        std::thread::scope(|s| {
            for shard in 0..4 {
                let t = &t;
                s.spawn(move || {
                    for _ in 0..100 {
                        t.add_micros(shard, 1);
                    }
                });
            }
        });
        assert_eq!(t.totals(), vec![100; 4]);
    }
}
