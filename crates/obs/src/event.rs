//! The structured event log: a bounded ring of leveled operational events.
//!
//! Counters say *how often*, traces say *how long* — the event log says
//! *what happened*: admission rejects, quota 429s, mutation batches,
//! checkpoints, snapshot swaps, crash recovery, shard fan-out, SLO alert
//! fire/resolve, and watchdog trips, each stamped with a monotonically
//! increasing id so HTTP clients can page (`GET /debug/events?since=<id>`)
//! or tail live over SSE and resume after a disconnect with
//! `Last-Event-ID`.  The ring is bounded; evictions are counted, never
//! silent.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Severity of an [`Event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventLevel {
    /// Routine lifecycle: swaps, checkpoints, mutation batches, recovery.
    Info,
    /// Something degraded: rejects, quota 429s, watchdog trips, alerts.
    Warn,
    /// Something failed outright.
    Error,
}

impl EventLevel {
    /// The lowercase wire name (`"info"` / `"warn"` / `"error"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            EventLevel::Info => "info",
            EventLevel::Warn => "warn",
            EventLevel::Error => "error",
        }
    }
}

/// One structured operational event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonically increasing id, 1-based; ids are never reused, so a
    /// client holding id `n` can ask for everything after it even if the
    /// ring has wrapped in between.
    pub id: u64,
    /// Wall-clock milliseconds since the Unix epoch at emission.
    pub at_unix_ms: u64,
    /// Severity.
    pub level: EventLevel,
    /// Machine-readable kind from the fixed taxonomy (e.g.
    /// `"quota-reject"`, `"checkpoint"`, `"alert-fire"`).
    pub kind: &'static str,
    /// Human-readable detail line.
    pub message: String,
}

/// A bounded, shareable ring of [`Event`]s with monotone ids.
///
/// `emit` is cheap (one mutex push); overflow evicts the oldest event and
/// bumps [`EventLog::dropped`] so the loss is visible on `/metrics`.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    next_id: AtomicU64,
    dropped: AtomicU64,
    events: Mutex<VecDeque<Arc<Event>>>,
}

impl EventLog {
    /// A log retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends an event, assigning it the next id (returned).  Evicts the
    /// oldest retained event when full.
    pub fn emit(&self, level: EventLevel, kind: &'static str, message: String) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let event = Arc::new(Event {
            id,
            at_unix_ms: unix_ms(),
            level,
            kind,
            message,
        });
        let mut events = self.events.lock().unwrap();
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
        id
    }

    /// Retained events with id strictly greater than `since`, oldest first,
    /// capped at `limit`.  `since = 0` pages from the beginning of the ring.
    pub fn since(&self, since: u64, limit: usize) -> Vec<Arc<Event>> {
        let events = self.events.lock().unwrap();
        events
            .iter()
            .filter(|e| e.id > since)
            .take(limit)
            .cloned()
            .collect()
    }

    /// The id of the most recently emitted event (0 before the first one).
    pub fn last_id(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed) - 1
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotone_and_survive_eviction() {
        let log = EventLog::new(3);
        for i in 0..5 {
            let id = log.emit(EventLevel::Info, "swap", format!("epoch {i}"));
            assert_eq!(id, i + 1);
        }
        assert_eq!(log.last_id(), 5);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.len(), 3);
        let ids: Vec<u64> = log.since(0, 10).iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn since_pages_strictly_after_the_cursor() {
        let log = EventLog::new(16);
        for _ in 0..6 {
            log.emit(EventLevel::Warn, "quota-reject", "tenant scraper".into());
        }
        let page = log.since(4, 10);
        assert_eq!(
            page.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![5, 6],
            "only events after the cursor"
        );
        assert_eq!(log.since(6, 10).len(), 0);
        assert_eq!(log.since(0, 2).len(), 2, "limit caps the page");
    }

    #[test]
    fn events_carry_level_kind_and_message() {
        let log = EventLog::new(4);
        log.emit(EventLevel::Error, "recovery", "replayed 3 records".into());
        let e = log.since(0, 1).pop().unwrap();
        assert_eq!(e.level, EventLevel::Error);
        assert_eq!(e.level.as_str(), "error");
        assert_eq!(e.kind, "recovery");
        assert!(e.message.contains("3 records"));
        assert!(e.at_unix_ms > 0);
    }

    #[test]
    fn empty_log_reports_cleanly() {
        let log = EventLog::new(4);
        assert!(log.is_empty());
        assert_eq!(log.last_id(), 0);
        assert_eq!(log.dropped(), 0);
    }
}
