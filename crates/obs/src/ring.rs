//! The bounded trace retention ring.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::trace::QueryTrace;

/// A bounded ring of recently retained [`QueryTrace`]s.
///
/// The service pushes every explicitly traced query plus every query that
/// crossed the slow threshold; the oldest trace is dropped when the ring
/// is full — and counted in [`TraceRing::dropped`], so retention loss is
/// visible on `/metrics` instead of silent.  Lookups by query id serve
/// `GET /debug/trace/<id>`; the recent-slow view serves `GET /debug/slow`.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    dropped: AtomicU64,
    traces: Mutex<VecDeque<Arc<QueryTrace>>>,
}

impl TraceRing {
    /// A ring retaining at most `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            traces: Mutex::new(VecDeque::new()),
        }
    }

    /// Retains a trace, evicting the oldest if the ring is full.
    pub fn push(&self, trace: Arc<QueryTrace>) {
        let mut traces = self.traces.lock().unwrap();
        if traces.len() == self.capacity {
            traces.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        traces.push_back(trace);
    }

    /// Traces evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The trace for query `id`, if still retained.
    pub fn get(&self, id: u64) -> Option<Arc<QueryTrace>> {
        let traces = self.traces.lock().unwrap();
        traces.iter().rev().find(|t| t.id == id).cloned()
    }

    /// The most recent retained traces, newest first, capped at `limit`.
    /// When `slow_only` is set, only traces that crossed the slow
    /// threshold are returned.
    pub fn recent(&self, limit: usize, slow_only: bool) -> Vec<Arc<QueryTrace>> {
        let traces = self.traces.lock().unwrap();
        traces
            .iter()
            .rev()
            .filter(|t| !slow_only || t.slow)
            .take(limit)
            .cloned()
            .collect()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.traces.lock().unwrap().len()
    }

    /// Whether the ring holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, slow: bool) -> Arc<QueryTrace> {
        Arc::new(QueryTrace {
            id,
            slow,
            ..QueryTrace::default()
        })
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let ring = TraceRing::new(3);
        for id in 1..=5 {
            ring.push(trace(id, false));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2, "evictions are counted");
        assert!(ring.get(1).is_none());
        assert!(ring.get(2).is_none());
        assert!(ring.get(3).is_some());
        assert!(ring.get(5).is_some());
    }

    #[test]
    fn recent_is_newest_first_and_filters_slow() {
        let ring = TraceRing::new(10);
        ring.push(trace(1, true));
        ring.push(trace(2, false));
        ring.push(trace(3, true));

        let all: Vec<u64> = ring.recent(10, false).iter().map(|t| t.id).collect();
        assert_eq!(all, vec![3, 2, 1]);

        let slow: Vec<u64> = ring.recent(10, true).iter().map(|t| t.id).collect();
        assert_eq!(slow, vec![3, 1]);

        assert_eq!(ring.recent(1, false).len(), 1);
    }

    #[test]
    fn duplicate_ids_resolve_to_the_newest() {
        let ring = TraceRing::new(4);
        ring.push(Arc::new(QueryTrace {
            id: 9,
            total_us: 100,
            ..QueryTrace::default()
        }));
        ring.push(Arc::new(QueryTrace {
            id: 9,
            total_us: 200,
            ..QueryTrace::default()
        }));
        assert_eq!(ring.get(9).unwrap().total_us, 200);
    }
}
