//! Prometheus text-format (version 0.0.4) rendering.
//!
//! A tiny writer for the exposition format: `# HELP`/`# TYPE` emitted once
//! per metric family, label values escaped per the spec, and a
//! duplicate-series guard so a renderer bug can never produce output a
//! scraper would reject.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Duration;

/// A Prometheus text-format (0.0.4) document under construction.
///
/// ```
/// use banks_obs::PromText;
///
/// let mut p = PromText::new();
/// p.counter("banks_queries_submitted_total", "Queries accepted.", 42);
/// p.gauge_labeled(
///     "banks_tenant_executed_total",
///     "Per-tenant executed queries.",
///     &[("tenant", "acme")],
///     7.0,
/// );
/// let text = p.render();
/// assert!(text.contains("# TYPE banks_queries_submitted_total counter"));
/// assert!(text.contains("banks_tenant_executed_total{tenant=\"acme\"} 7"));
/// ```
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    families: BTreeSet<String>,
    series: BTreeSet<String>,
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        PromText::default()
    }

    /// Emits `# HELP`/`# TYPE` for a family the first time it is seen.
    fn family(&mut self, name: &str, kind: &str, help: &str) {
        if self.families.insert(name.to_string()) {
            let _ = writeln!(self.out, "# HELP {name} {help}");
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    /// Appends one `name{labels} value` sample line.  Duplicate series
    /// (same name + label set) are dropped rather than emitted twice —
    /// Prometheus rejects expositions containing them.
    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let mut series = name.to_string();
        if !labels.is_empty() {
            series.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    series.push(',');
                }
                let _ = write!(series, "{k}=\"{}\"", escape_label(v));
            }
            series.push('}');
        }
        if !self.series.insert(series.clone()) {
            return;
        }
        let _ = writeln!(self.out, "{series} {}", format_value(value));
    }

    /// A label-free counter family with one sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.family(name, "counter", help);
        self.sample(name, &[], value as f64);
    }

    /// A label-free gauge family with one sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.family(name, "gauge", help);
        self.sample(name, &[], value);
    }

    /// A labeled counter sample (`# HELP`/`# TYPE` emitted once per family).
    pub fn counter_labeled(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.family(name, "counter", help);
        self.sample(name, labels, value as f64);
    }

    /// A labeled gauge sample (`# HELP`/`# TYPE` emitted once per family).
    pub fn gauge_labeled(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.family(name, "gauge", help);
        self.sample(name, labels, value);
    }

    /// A latency distribution as a Prometheus `summary` in seconds:
    /// quantile samples for p50/p90/p99, plus `_sum` and `_count`.
    /// `name` should end in `_seconds` by convention.
    pub fn summary_seconds(
        &mut self,
        name: &str,
        help: &str,
        count: u64,
        mean: Duration,
        quantiles: &[(&str, Duration)],
    ) {
        self.family(name, "summary", help);
        for (q, d) in quantiles {
            self.sample(name, &[("quantile", q)], d.as_secs_f64());
        }
        self.sample(
            &format!("{name}_sum"),
            &[],
            mean.as_secs_f64() * count as f64,
        );
        self.sample(&format!("{name}_count"), &[], count as f64);
    }

    /// The finished exposition text.  Prometheus requires the body to end
    /// with a newline (or be empty).
    pub fn render(self) -> String {
        self.out
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_type_emitted_once_per_family() {
        let mut p = PromText::new();
        p.counter_labeled("banks_x_total", "X.", &[("tenant", "a")], 1);
        p.counter_labeled("banks_x_total", "X.", &[("tenant", "b")], 2);
        let text = p.render();
        assert_eq!(text.matches("# HELP banks_x_total").count(), 1);
        assert_eq!(text.matches("# TYPE banks_x_total counter").count(), 1);
        assert!(text.contains("banks_x_total{tenant=\"a\"} 1"));
        assert!(text.contains("banks_x_total{tenant=\"b\"} 2"));
    }

    #[test]
    fn duplicate_series_are_dropped() {
        let mut p = PromText::new();
        p.counter("banks_dup_total", "D.", 1);
        p.counter("banks_dup_total", "D.", 99);
        let text = p.render();
        assert_eq!(text.matches("banks_dup_total 1").count(), 1);
        assert!(!text.contains("banks_dup_total 99"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.gauge_labeled("banks_g", "G.", &[("tenant", "a\"b\\c\nd")], 1.0);
        assert!(p.render().contains("{tenant=\"a\\\"b\\\\c\\nd\"}"));
    }

    #[test]
    fn summary_emits_quantiles_sum_and_count() {
        let mut p = PromText::new();
        p.summary_seconds(
            "banks_wait_seconds",
            "Wait.",
            4,
            Duration::from_millis(250),
            &[
                ("0.5", Duration::from_millis(200)),
                ("0.99", Duration::from_millis(900)),
            ],
        );
        let text = p.render();
        assert!(text.contains("# TYPE banks_wait_seconds summary"));
        assert!(text.contains("banks_wait_seconds{quantile=\"0.5\"} 0.2"));
        assert!(text.contains("banks_wait_seconds{quantile=\"0.99\"} 0.9"));
        assert!(text.contains("banks_wait_seconds_sum 1"));
        assert!(text.contains("banks_wait_seconds_count 4"));
    }

    #[test]
    fn values_format_cleanly() {
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(0.25), "0.25");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NAN), "NaN");
    }

    #[test]
    fn document_ends_with_newline() {
        let mut p = PromText::new();
        p.counter("banks_t_total", "T.", 1);
        assert!(p.render().ends_with('\n'));
    }
}
