//! Declarative SLOs judged by multi-window burn rate.
//!
//! An [`SloSpec`] names a retained time series (see
//! [`TimeSeriesRing`](crate::TimeSeriesRing)), an upper bound, and an
//! error budget: the fraction of ticks allowed to violate the bound.  The
//! [`SloEngine`] evaluates every spec over a *fast* and a *slow* window
//! (default 5 min / 1 h, the classic multi-window pair): the **burn rate**
//! of a window is its bad-tick ratio divided by the budget, so burn 1.0
//! means "spending the budget exactly as fast as allowed" and burn 10
//! means the budget disappears in a tenth of the period.
//!
//! Health is three-state: the fast window burning hot marks the SLO
//! `degraded`; both windows burning marks it `breached` (sustained, not a
//! blip); the worst spec is the service's overall health on `/healthz`.
//! Resolution is hysteretic — a degraded SLO only returns to `ok` once the
//! fast burn drops *below* the resolve threshold, not merely below the
//! fire threshold — so health does not flap at the boundary.
//!
//! Evaluation is a pure function of the ring contents and a
//! caller-supplied `now_ms`, which makes the engine fully deterministic
//! under test: feed synthetic ticks with synthetic timestamps, no sleeps.

use std::sync::Mutex;

use crate::timeseries::TimeSeriesRing;

/// Three-state health verdict.  `Ord` ranks by severity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// Within objective.
    #[default]
    Ok,
    /// The fast window is burning budget past the fire threshold.
    Degraded,
    /// Both windows are burning: the violation is sustained.
    Breached,
}

impl Health {
    /// The lowercase wire name (`"ok"` / `"degraded"` / `"breached"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Health::Ok => "ok",
            Health::Degraded => "degraded",
            Health::Breached => "breached",
        }
    }
}

/// One declarative objective over a retained series.
///
/// Names and metrics are owned strings so specs can come from operator
/// configuration (a JSON file, `POST /admin/slo`) as well as from the
/// built-in [`SloSpec::defaults`].
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Short stable name (`"ttfa_p99"`), used in events and metric labels.
    pub name: String,
    /// The time-series schema entry the objective constrains.
    pub metric: String,
    /// Upper bound: a tick violates when `value > threshold`.
    pub threshold: f64,
    /// Error budget: allowed fraction of violating ticks (default 1%).
    pub budget: f64,
    /// Fast evaluation window in ms (default 5 min).
    pub fast_window_ms: u64,
    /// Slow evaluation window in ms (default 1 h).
    pub slow_window_ms: u64,
    /// Burn rate at or above which the SLO fires (default 10).
    pub fire_burn: f64,
    /// Fast burn rate at or below which a fired SLO resolves (default 1).
    pub resolve_burn: f64,
}

impl SloSpec {
    /// An upper-bound objective with the default windows and burn
    /// thresholds: 1% budget, 5 m / 1 h windows, fire ≥ 10, resolve ≤ 1.
    pub fn upper_bound(name: impl Into<String>, metric: impl Into<String>, threshold: f64) -> Self {
        SloSpec {
            name: name.into(),
            metric: metric.into(),
            threshold,
            budget: 0.01,
            fast_window_ms: 5 * 60 * 1000,
            slow_window_ms: 60 * 60 * 1000,
            fire_burn: 10.0,
            resolve_burn: 1.0,
        }
    }

    /// Overrides both evaluation windows (test cadences shrink these).
    pub fn with_windows(mut self, fast_ms: u64, slow_ms: u64) -> Self {
        self.fast_window_ms = fast_ms;
        self.slow_window_ms = slow_ms;
        self
    }

    /// Overrides the fire/resolve burn thresholds.
    pub fn with_burns(mut self, fire: f64, resolve: f64) -> Self {
        self.fire_burn = fire;
        self.resolve_burn = resolve;
        self
    }

    /// The stock objectives the service ships with: `ttfa_p99 < 250 ms`,
    /// `error_ratio < 1%`, `queue_wait_p90 < 50 ms`, and per-shard load
    /// imbalance below 2× the mean.
    pub fn defaults() -> Vec<SloSpec> {
        vec![
            SloSpec::upper_bound("ttfa_p99", "ttfa_p99_us", 250_000.0),
            SloSpec::upper_bound("error_ratio", "error_ratio", 0.01),
            SloSpec::upper_bound("queue_wait_p90", "queue_wait_p90_us", 50_000.0),
            SloSpec::upper_bound("shard_imbalance", "shard_imbalance", 2.0),
        ]
    }

    /// The replication objective a follower adds on top of the defaults:
    /// applied-epoch lag behind the leader stays under 5 s.  The metric is
    /// the `replication_lag_ms` series the follower's collector feeds.
    pub fn replication_lag() -> Self {
        SloSpec::upper_bound("replication_lag", "replication_lag_ms", 5_000.0)
    }
}

/// The evaluated state of one spec, as served on `GET /debug/slo` and
/// exported as `banks_slo_*` gauges.
#[derive(Clone, Debug, PartialEq)]
pub struct SloRow {
    /// Spec name.
    pub name: String,
    /// Constrained series.
    pub metric: String,
    /// Upper bound.
    pub threshold: f64,
    /// Latest finite sample of the series (`NaN` when the window is idle).
    pub value: f64,
    /// Burn rate over the fast window.
    pub burn_fast: f64,
    /// Burn rate over the slow window.
    pub burn_slow: f64,
    /// Current (hysteretic) verdict for this spec.
    pub state: Health,
}

/// A state change produced by one evaluation, for the event log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloTransition {
    /// Spec name.
    pub slo: String,
    /// Verdict before this evaluation.
    pub from: Health,
    /// Verdict after.
    pub to: Health,
}

/// The full verdict of one evaluation pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SloReport {
    /// Worst spec state — the service's overall health.
    pub health: Health,
    /// Per-spec rows, in spec order.
    pub rows: Vec<SloRow>,
}

/// Evaluates a set of [`SloSpec`]s against a [`TimeSeriesRing`], keeping
/// per-spec hysteretic state between passes.
///
/// The spec set itself is behind the same lock as the states so operators
/// can swap objectives at runtime ([`SloEngine::replace_specs`]) without
/// an evaluation pass observing half an update.
#[derive(Debug)]
pub struct SloEngine {
    inner: Mutex<EngineState>,
}

#[derive(Debug)]
struct EngineState {
    specs: Vec<SloSpec>,
    states: Vec<Health>,
}

impl SloEngine {
    /// An engine over `specs`, all starting `ok`.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let states = vec![Health::Ok; specs.len()];
        SloEngine {
            inner: Mutex::new(EngineState { specs, states }),
        }
    }

    /// A copy of the configured specs.
    pub fn specs(&self) -> Vec<SloSpec> {
        self.inner.lock().unwrap().specs.clone()
    }

    /// Replaces the whole spec set.  All hysteretic states restart at
    /// `ok` — the old burn history does not carry meaning for objectives
    /// with different thresholds or windows.
    pub fn replace_specs(&self, specs: Vec<SloSpec>) {
        let mut inner = self.inner.lock().unwrap();
        inner.states = vec![Health::Ok; specs.len()];
        inner.specs = specs;
    }

    /// Appends one spec (dropping any existing spec with the same name
    /// first); its state starts at `ok`, others keep their history.
    pub fn upsert_spec(&self, spec: SloSpec) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(i) = inner.specs.iter().position(|s| s.name == spec.name) {
            inner.specs.remove(i);
            inner.states.remove(i);
        }
        inner.specs.push(spec);
        inner.states.push(Health::Ok);
    }

    /// The current health without re-evaluating.
    pub fn health(&self) -> Health {
        self.inner
            .lock()
            .unwrap()
            .states
            .iter()
            .copied()
            .max()
            .unwrap_or(Health::Ok)
    }

    /// One evaluation pass at `now_ms`.  Updates the per-spec states and
    /// returns the report plus every state transition this pass caused.
    pub fn evaluate(&self, ring: &TimeSeriesRing, now_ms: u64) -> (SloReport, Vec<SloTransition>) {
        let inner = &mut *self.inner.lock().unwrap();
        let mut rows = Vec::with_capacity(inner.specs.len());
        let mut transitions = Vec::new();
        for (spec, state) in inner.specs.iter().zip(inner.states.iter_mut()) {
            let (burn_fast, value) = burn_over(ring, spec, spec.fast_window_ms, now_ms);
            let (burn_slow, _) = burn_over(ring, spec, spec.slow_window_ms, now_ms);
            let candidate = if burn_fast >= spec.fire_burn && burn_slow >= spec.fire_burn {
                Health::Breached
            } else if burn_fast >= spec.fire_burn {
                Health::Degraded
            } else {
                Health::Ok
            };
            // Hysteresis: improvement requires the fast burn to actually
            // cool past the resolve threshold, not just dip under fire.
            let next = if candidate < *state && burn_fast > spec.resolve_burn {
                *state
            } else {
                candidate
            };
            if next != *state {
                transitions.push(SloTransition {
                    slo: spec.name.clone(),
                    from: *state,
                    to: next,
                });
                *state = next;
            }
            rows.push(SloRow {
                name: spec.name.clone(),
                metric: spec.metric.clone(),
                threshold: spec.threshold,
                value,
                burn_fast,
                burn_slow,
                state: next,
            });
        }
        let health = inner.states.iter().copied().max().unwrap_or(Health::Ok);
        (SloReport { health, rows }, transitions)
    }
}

/// Burn rate of `spec` over one window, plus the latest finite value seen
/// (NaN when the window holds no finite samples).  Idle windows burn 0.
fn burn_over(ring: &TimeSeriesRing, spec: &SloSpec, window_ms: u64, now_ms: u64) -> (f64, f64) {
    let idx = match ring.index_of(&spec.metric) {
        Some(i) => i,
        None => return (0.0, f64::NAN),
    };
    let mut total = 0u64;
    let mut bad = 0u64;
    let mut latest = f64::NAN;
    for sample in ring.window(window_ms, now_ms) {
        let v = sample.values[idx];
        if !v.is_finite() {
            continue;
        }
        total += 1;
        if v > spec.threshold {
            bad += 1;
        }
        latest = v;
    }
    if total == 0 {
        return (0.0, latest);
    }
    let bad_ratio = bad as f64 / total as f64;
    (bad_ratio / spec.budget.max(1e-9), latest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        // 1 s fast / 10 s slow windows, fire at burn 10 (≥10% bad ticks
        // with the 1% budget), resolve at burn ≤ 1.
        SloSpec::upper_bound("ttfa_p99", "ttfa_p99_us", 100.0).with_windows(1_000, 10_000)
    }

    fn ring() -> TimeSeriesRing {
        TimeSeriesRing::new(vec!["ttfa_p99_us"], 256)
    }

    #[test]
    fn quiet_series_stays_ok() {
        let engine = SloEngine::new(vec![spec()]);
        let r = ring();
        for i in 0..20u64 {
            r.record(i * 100, &[50.0]);
        }
        let (report, transitions) = engine.evaluate(&r, 2_000);
        assert_eq!(report.health, Health::Ok);
        assert_eq!(report.rows[0].state, Health::Ok);
        assert_eq!(report.rows[0].value, 50.0);
        assert!(transitions.is_empty());
    }

    #[test]
    fn empty_ring_is_ok_not_breached() {
        let engine = SloEngine::new(vec![spec()]);
        let (report, transitions) = engine.evaluate(&ring(), 1_000_000);
        assert_eq!(report.health, Health::Ok);
        assert_eq!(report.rows[0].burn_fast, 0.0);
        assert!(report.rows[0].value.is_nan());
        assert!(transitions.is_empty());
    }

    #[test]
    fn fast_only_burn_degrades_sustained_burn_breaches() {
        let engine = SloEngine::new(vec![spec()]);
        let r = ring();
        // 9 s of good history, then 1 s of violations: the fast window is
        // 100% bad but the slow window is ~10% bad — burn_fast 100 fires,
        // burn_slow 10 also fires... use a longer good history so the slow
        // window stays under fire: 95 good ticks, 5 bad = 5% bad, burn 5.
        for i in 0..95u64 {
            r.record(i * 100, &[50.0]);
        }
        for i in 95..100u64 {
            r.record(i * 100, &[500.0]);
        }
        let now = 100 * 100;
        let (report, transitions) = engine.evaluate(&r, now);
        assert_eq!(report.health, Health::Degraded);
        assert!(report.rows[0].burn_fast >= 10.0);
        assert!(report.rows[0].burn_slow < 10.0);
        assert_eq!(
            transitions,
            vec![SloTransition {
                slo: "ttfa_p99".to_string(),
                from: Health::Ok,
                to: Health::Degraded
            }]
        );

        // Keep violating long enough for the slow window to burn too.
        for i in 100..200u64 {
            r.record(i * 100, &[500.0]);
        }
        let (report, transitions) = engine.evaluate(&r, 200 * 100);
        assert_eq!(report.health, Health::Breached);
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].to, Health::Breached);
    }

    #[test]
    fn resolution_is_hysteretic() {
        let engine = SloEngine::new(vec![spec()]);
        let r = ring();
        for i in 0..20u64 {
            r.record(i * 100, &[500.0]);
        }
        let (report, _) = engine.evaluate(&r, 2_000);
        assert_eq!(report.health, Health::Breached);

        // Mixed ticks: fast burn drops under fire (10) but stays over
        // resolve (1) — 1 bad of 10 fast ticks = burn 10... make it 0 bad
        // in fast but 2 bad lingering in slow: still must resolve only via
        // fast. First: fast window half bad → burn 50, holds.
        for i in 20..30u64 {
            r.record(i * 100, &[if i % 2 == 0 { 500.0 } else { 50.0 }]);
        }
        let (report, transitions) = engine.evaluate(&r, 3_000);
        assert_eq!(report.rows[0].state, Health::Breached, "burn still hot");
        assert!(transitions.is_empty());

        // Fully clean fast window: burn_fast 0 ≤ resolve → back to ok.
        for i in 30..45u64 {
            r.record(i * 100, &[50.0]);
        }
        let (report, transitions) = engine.evaluate(&r, 4_400);
        assert_eq!(report.health, Health::Ok);
        assert_eq!(
            transitions,
            vec![SloTransition {
                slo: "ttfa_p99".to_string(),
                from: Health::Breached,
                to: Health::Ok
            }]
        );
    }

    #[test]
    fn idle_ticks_do_not_count_against_the_budget() {
        let engine = SloEngine::new(vec![spec()]);
        let r = ring();
        for i in 0..5u64 {
            r.record(i * 100, &[500.0]);
        }
        // Load stops: the collector keeps ticking NaN (no observations).
        for i in 5..60u64 {
            r.record(i * 100, &[f64::NAN]);
        }
        // Fast window (1 s) holds only NaN ticks → burn 0 → never fires.
        let (report, _) = engine.evaluate(&r, 6_000);
        assert_eq!(report.health, Health::Ok);
        assert!(report.rows[0].value.is_nan());
    }

    #[test]
    fn overall_health_is_the_worst_spec() {
        let good = SloSpec::upper_bound("errs", "error_ratio", 0.5).with_windows(1_000, 10_000);
        let engine = SloEngine::new(vec![spec(), good]);
        let r = TimeSeriesRing::new(vec!["ttfa_p99_us", "error_ratio"], 256);
        for i in 0..20u64 {
            r.record(i * 100, &[500.0, 0.0]);
        }
        let (report, transitions) = engine.evaluate(&r, 2_000);
        assert_eq!(report.health, Health::Breached);
        assert_eq!(report.rows[1].state, Health::Ok);
        assert_eq!(transitions.len(), 1);
        assert_eq!(engine.health(), Health::Breached);
    }

    #[test]
    fn replace_and_upsert_swap_specs_and_reset_state() {
        let engine = SloEngine::new(vec![spec()]);
        let r = ring();
        for i in 0..20u64 {
            r.record(i * 100, &[500.0]);
        }
        let (report, _) = engine.evaluate(&r, 2_000);
        assert_eq!(report.health, Health::Breached);

        // Same metric, looser bound: states restart ok and stay there.
        engine.replace_specs(vec![SloSpec::upper_bound(
            "ttfa_p99",
            "ttfa_p99_us",
            1_000.0,
        )
        .with_windows(1_000, 10_000)]);
        assert_eq!(engine.health(), Health::Ok);
        let (report, transitions) = engine.evaluate(&r, 2_000);
        assert_eq!(report.health, Health::Ok);
        assert!(transitions.is_empty());

        // Upsert replaces by name without disturbing other specs.
        engine.upsert_spec(SloSpec::replication_lag());
        engine.upsert_spec(SloSpec::upper_bound("ttfa_p99", "ttfa_p99_us", 2_000.0));
        let specs = engine.specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "replication_lag");
        assert_eq!(specs[1].threshold, 2_000.0);
    }

    #[test]
    fn default_specs_cover_the_stock_objectives() {
        let specs = SloSpec::defaults();
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "ttfa_p99",
                "error_ratio",
                "queue_wait_p90",
                "shard_imbalance"
            ]
        );
        for s in &specs {
            assert_eq!(s.fast_window_ms, 300_000);
            assert_eq!(s.slow_window_ms, 3_600_000);
            assert!(s.fire_burn > s.resolve_burn);
        }
    }
}
