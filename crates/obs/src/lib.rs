//! # banks-obs
//!
//! The observability kit underneath every BANKS tier: the measurement
//! substrate the paper's whole evaluation (time-to-first-answer, nodes
//! explored per engine) needs in a *running service*, not a benchmark
//! harness.  `std`-only, dependency-free, and designed so the instruments
//! themselves stay off the hot path:
//!
//! * [`Counter`] / [`Gauge`] — relaxed-atomic scalars, safe to bump from
//!   any thread without a lock;
//! * [`Histogram`] — a lock-free log₂-microsecond latency histogram with
//!   [`LatencySummary`] percentiles (p50/p90/p99), generalized from the
//!   service's original queue-wait histogram so one implementation serves
//!   queue wait, TTFA, mutation apply, checkpoint and WAL-fsync latencies;
//! * [`WorkCounters`] — the per-query live counters (heap pops, rows
//!   expanded) an engine's step driver publishes with relaxed stores;
//! * [`ShardTimes`] — per-shard busy-time accumulators the scatter-gather
//!   engine's parallel refill rounds add into, read back by the service as
//!   per-shard `expand` spans;
//! * [`QueryTrace`] / [`TraceSpan`] — one query's phase timeline
//!   (admit → queue → resolve → expand → first-answer → finish);
//! * [`TraceRing`] — the bounded ring retaining traced and slow queries
//!   for `GET /debug/slow` and `GET /debug/trace/<id>`;
//! * [`CostCalibration`] — an online EMA correction of the a priori cost
//!   model from measured `nodes_explored`, per (engine, origin-size
//!   bucket);
//! * [`PromText`] — a Prometheus text-format (version 0.0.4) writer with
//!   `# HELP`/`# TYPE` bookkeeping and a duplicate-series guard.
//!
//! PR 9 grew the kit from pure measurement into retention and judgment:
//!
//! * [`TimeSeriesRing`] — lock-free bounded retention of a fixed schema of
//!   series, snapshotted by a collector thread on a fixed cadence, with
//!   windowed deltas, rates, and percentile trajectories;
//! * [`SloEngine`] / [`SloSpec`] — declarative objectives judged by
//!   multi-window (5 m / 1 h) burn rate with hysteresis, yielding the
//!   three-state [`Health`] surfaced on `/healthz` and `GET /debug/slo`;
//! * [`EventLog`] / [`Event`] — a bounded leveled event ring with
//!   monotone ids, served as JSON pages and a live SSE tail that honors
//!   `Last-Event-ID`.

#![deny(missing_docs)]

mod calib;
mod counter;
mod event;
mod hist;
mod prom;
mod ring;
mod shard;
mod slo;
mod timeseries;
mod trace;

pub use calib::{origin_bucket, CalibrationRow, CostCalibration, ORIGIN_BUCKETS};
pub use counter::{Counter, Gauge, WorkCounters};
pub use event::{Event, EventLevel, EventLog};
pub use hist::{Histogram, LatencySummary, HISTOGRAM_BUCKETS};
pub use prom::PromText;
pub use ring::TraceRing;
pub use shard::ShardTimes;
pub use slo::{Health, SloEngine, SloReport, SloRow, SloSpec, SloTransition};
pub use timeseries::{TimeSample, TimeSeriesRing};
pub use trace::{QueryTrace, TraceSpan};
