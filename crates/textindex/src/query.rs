//! Keyword query parsing.

use crate::tokenizer::Tokenizer;

/// A keyword query: an ordered list of keywords, each of which is either a
/// single term or a quoted phrase.
///
/// The paper's queries are plain keyword lists (`Krishnamurthy parametric
/// query optimization`) with occasional quoted phrases (`"David Fernandez"
/// parametric`, `"C. Mohan" Rothermel`).  AND semantics apply: an answer
/// tree must contain at least one node matching *each* keyword.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    keywords: Vec<String>,
}

impl Query {
    /// Builds a query from pre-split keywords.
    pub fn from_keywords<I, S>(keywords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Query {
            keywords: keywords.into_iter().map(Into::into).collect(),
        }
    }

    /// Parses a raw query string, honouring double-quoted phrases.
    ///
    /// ```
    /// use banks_textindex::Query;
    /// let q = Query::parse("\"David Fernandez\" parametric");
    /// assert_eq!(q.keywords(), &["David Fernandez".to_string(), "parametric".to_string()]);
    /// ```
    pub fn parse(raw: &str) -> Self {
        let mut keywords = Vec::new();
        let mut rest = raw.trim();
        while !rest.is_empty() {
            if let Some(after_quote) = rest.strip_prefix('"') {
                match after_quote.find('"') {
                    Some(end) => {
                        let phrase = after_quote[..end].trim();
                        if !phrase.is_empty() {
                            keywords.push(phrase.to_string());
                        }
                        rest = after_quote[end + 1..].trim_start();
                    }
                    None => {
                        // Unterminated quote: treat the remainder as a phrase.
                        let phrase = after_quote.trim();
                        if !phrase.is_empty() {
                            keywords.push(phrase.to_string());
                        }
                        rest = "";
                    }
                }
            } else {
                let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
                let word = &rest[..end];
                if !word.is_empty() {
                    keywords.push(word.to_string());
                }
                rest = rest[end..].trim_start();
            }
        }
        Query { keywords }
    }

    /// The keywords, in query order.
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    /// Number of keywords `n` (the paper's `t_1 .. t_n`).
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// True when the query has no keywords.
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// Returns a normalised copy where every keyword has been run through
    /// the given tokenizer (lower-cased, punctuation stripped).  Keywords
    /// that normalise to nothing (pure punctuation) are dropped.
    pub fn normalized(&self, tokenizer: &Tokenizer) -> Query {
        Query {
            keywords: self
                .keywords
                .iter()
                .map(|k| tokenizer.normalize_keyword(k))
                .filter(|k| !k.is_empty())
                .collect(),
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rendered: Vec<String> = self
            .keywords
            .iter()
            .map(|k| {
                if k.contains(' ') {
                    format!("\"{k}\"")
                } else {
                    k.clone()
                }
            })
            .collect();
        write!(f, "{}", rendered.join(" "))
    }
}

impl std::str::FromStr for Query {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(Query::parse(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_keywords() {
        let q = Query::parse("Gray transaction");
        assert_eq!(
            q.keywords(),
            &["Gray".to_string(), "transaction".to_string()]
        );
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn parses_quoted_phrases() {
        let q = Query::parse("\"David Fernandez\" parametric");
        assert_eq!(
            q.keywords(),
            &["David Fernandez".to_string(), "parametric".to_string()]
        );

        let q = Query::parse("\"C. Mohan\" Rothermel");
        assert_eq!(
            q.keywords(),
            &["C. Mohan".to_string(), "Rothermel".to_string()]
        );
    }

    #[test]
    fn handles_unterminated_quote() {
        let q = Query::parse("recovery \"Jim Gray");
        assert_eq!(
            q.keywords(),
            &["recovery".to_string(), "Jim Gray".to_string()]
        );
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(Query::parse("").is_empty());
        assert!(Query::parse("   ").is_empty());
        assert!(Query::parse("\"\"").is_empty());
    }

    #[test]
    fn display_roundtrip() {
        let q = Query::parse("\"David Fernandez\" parametric");
        assert_eq!(q.to_string(), "\"David Fernandez\" parametric");
        let q2: Query = q.to_string().parse().unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn normalization_lowercases_and_drops_empty() {
        let t = Tokenizer::new();
        let q = Query::parse("\"C. Mohan\" ROTHERMEL ...");
        let n = q.normalized(&t);
        assert_eq!(
            n.keywords(),
            &["c mohan".to_string(), "rothermel".to_string()]
        );
    }

    #[test]
    fn from_keywords_constructor() {
        let q = Query::from_keywords(["keanu", "matrix", "thomas"]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.to_string(), "keanu matrix thomas");
    }
}
